"""Response objects of the unified discovery API.

:class:`SessionResult` pairs the engine's
:class:`~repro.core.results.DiscoveryResult` with the originating
:class:`~repro.api.request.DiscoveryRequest`, so a response is always
attributable and serialisable on its own.  :class:`SessionBatch` is the
batch counterpart: per-request results in submission order plus the
aggregate :class:`~repro.service.service.BatchStats`.

Both serialise through the shared envelope of :mod:`repro.api.schema`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from ..core.results import DiscoveryResult
from .schema import KIND_BATCH_RESULT, KIND_DISCOVERY_RESULT, json_envelope

if TYPE_CHECKING:  # pragma: no cover - imported for annotations only
    from ..service.service import BatchStats
    from .request import DiscoveryRequest


@dataclass
class SessionResult:
    """One answered discovery request."""

    #: The request that produced this result.
    request: "DiscoveryRequest"
    #: The registered engine name the session dispatched to.
    engine: str
    #: The engine's raw result (tables, counters, system label).
    response: DiscoveryResult

    # ------------------------------------------------------------------
    # Convenience passthroughs
    # ------------------------------------------------------------------
    @property
    def tables(self):
        """The ranked :class:`~repro.core.results.TableResult` entries."""
        return self.response.tables

    @property
    def counters(self):
        """The run's :class:`~repro.metrics.counters.DiscoveryCounters`."""
        return self.response.counters

    @property
    def k(self) -> int:
        """The ``k`` the run was answered with."""
        return self.response.k

    @property
    def complete(self) -> bool:
        """Whether the run saw its full search space (no limit fired)."""
        return self.response.complete

    def result_tuples(self) -> list[tuple[int, int]]:
        """``(table_id, joinability)`` pairs, best first."""
        return self.response.result_tuples()

    def table_ids(self) -> list[int]:
        """The discovered table ids, best first."""
        return self.response.table_ids()

    def plan_explain(self) -> dict | None:
        """The executed query plan (seed column, estimates, re-plans).

        ``None`` when the engine ran outside the planner/executor pipeline
        (baselines) or for streaming snapshots.
        """
        return self.response.plan_explain()

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Return the stable JSON-serialisable response document.

        The field names and the ``schema_version`` handling are shared with
        every other machine-readable output of the repository (see
        :mod:`repro.api.schema`).
        """
        return json_envelope(
            KIND_DISCOVERY_RESULT,
            {
                "request": {
                    "id": self.request.request_id,
                    "label": self.request.label,
                    "engine": self.request.engine,
                    "query_table": self.request.query.table.name,
                    "key_columns": list(self.request.query.key_columns),
                    "k": self.request.k,
                    "deadline_seconds": self.request.deadline_seconds,
                    "max_pl_fetches": self.request.max_pl_fetches,
                    "planner_mode": self.request.planner.mode,
                    "sketch_threshold": self.request.sketch.threshold,
                    "sketch_max_candidates": self.request.sketch.max_candidates,
                },
                "engine": self.engine,
                "system": self.response.system,
                "k": self.response.k,
                "complete": self.response.complete,
                "tables": [entry.as_dict() for entry in self.response.tables],
                "counters": self.response.counters.as_dict(),
                # Schema v2 additions: the per-stage breakdown of the
                # pipeline and the executed query plan (both empty/None for
                # engines outside the planner pipeline).
                "stages": self.response.counters.stages_dict(),
                "plan": self.plan_explain(),
            },
        )


@dataclass
class SessionBatch:
    """Per-request results plus aggregate statistics of one batch.

    ``results`` is in submission order.  When the batch ran with
    ``on_error="collect"``, slots whose request failed hold ``None`` and the
    corresponding exception is kept (in order of occurrence) in
    :attr:`failures`; the aggregate :attr:`stats` then carries one
    attribution line per failure.
    """

    results: list["SessionResult | None"]
    stats: "BatchStats"
    failures: list[Exception] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator["SessionResult | None"]:
        return iter(self.results)

    def __getitem__(self, position: int) -> "SessionResult | None":
        return self.results[position]

    @property
    def ok(self) -> bool:
        """Whether every request of the batch succeeded."""
        return not self.failures

    def successful(self) -> list[SessionResult]:
        """The successful results, in submission order."""
        return [result for result in self.results if result is not None]

    def to_dict(self) -> dict:
        """Return the stable JSON-serialisable batch document."""
        return json_envelope(
            KIND_BATCH_RESULT,
            {
                "results": [
                    None if result is None else result.to_dict()
                    for result in self.results
                ],
                "stats": self.stats.as_dict(),
                "failures": [str(error) for error in self.failures],
            },
        )
