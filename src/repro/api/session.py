"""The :class:`DiscoverySession` facade: one front door for Algorithm 1.

A session owns the serving state — corpus, (optionally sharded) index, LRU
posting-list cache, engine instances, and a thread-pool scheduler — and
answers :class:`~repro.api.request.DiscoveryRequest` objects through four
entry points:

* :meth:`DiscoverySession.discover` — one request, one
  :class:`~repro.api.results.SessionResult`;
* :meth:`DiscoverySession.discover_batch` — a batch with probe-value
  deduplication, cache warm-up, worker-pool scheduling, and attributable
  failures (the machinery the legacy
  :class:`~repro.service.service.DiscoveryService` exposed, generalised to
  mixed-engine batches);
* :meth:`DiscoverySession.discover_stream` — an iterator of incremental
  top-k snapshots while the run progresses, ending with the final result;
* :meth:`DiscoverySession.submit` / :meth:`DiscoverySession.asubmit` —
  future-based and ``async`` wrappers over the session's thread pool.

Engines are resolved by name through an
:class:`~repro.api.registry.EngineRegistry` and cached per configuration
signature, so repeated requests share memoised hash state exactly like the
legacy single-engine service did.

Usage::

    from repro import DiscoveryRequest, DiscoverySession

    with DiscoverySession(corpus, index, config=config) as session:
        result = session.discover(DiscoveryRequest(query=query, k=10))
        for snapshot in session.discover_stream(DiscoveryRequest(query=query)):
            print(snapshot.result_tuples(), snapshot.complete)
"""

from __future__ import annotations

import asyncio
import contextvars
import logging
import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING, Iterable, Iterator

from ..config import MateConfig, ServiceConfig
from ..core.results import DiscoveryResult, TableResult
from ..datamodel import Table, TableCorpus
from ..exceptions import ConfigurationError, DiscoveryError, MateError
from ..index import InvertedIndex, ShardedInvertedIndex, build_index
from ..metrics import CacheCounters, DiscoveryCounters
from ..service.cache import CachingIndex
from ..telemetry import SlowQueryEntry, Telemetry
from .registry import DEFAULT_REGISTRY, EngineRegistry, EngineSpec
from .request import DiscoveryRequest, RequestBudget
from .results import SessionBatch, SessionResult

if TYPE_CHECKING:  # pragma: no cover - imported for annotations only
    from ..service.service import BatchStats

#: Structured logger of the session layer (JSON-formatted when the caller
#: installs :func:`repro.telemetry.configure_json_logging`).
_LOGGER = logging.getLogger("repro.session")


def _attach_trace(error: MateError, span) -> MateError:
    """Stamp the current trace id onto an error for log correlation."""
    if span.trace_id:
        error.trace_id = span.trace_id  # type: ignore[attr-defined]
        span.set_attribute("error", str(error))
    return error


class DiscoverySession:
    """Owns corpus + index + cache lifecycle and serves discovery requests.

    Parameters
    ----------
    corpus:
        The table corpus the index was (or will be) built from.
    index:
        A monolithic :class:`~repro.index.inverted.InvertedIndex` or a
        :class:`~repro.index.sharded.ShardedInvertedIndex`.  ``None`` builds
        a fresh index from ``corpus`` (the zero-setup path of the examples).
        A monolithic index is partitioned per ``service_config.num_shards``
        (> 1); unless caching is disabled the result is wrapped in a
        :class:`~repro.service.cache.CachingIndex`.
    config:
        The :class:`~repro.config.MateConfig` shared by index and engines.
    service_config:
        The serving knobs (shard count, cache capacity, batch and fetch
        workers); see :class:`~repro.config.ServiceConfig`.
    registry:
        The engine registry to resolve request engine names against;
        defaults to the process-wide registry of :mod:`repro.api.registry`.
    execution:
        How the ``"sharded"`` engine runs its shards: ``"thread"`` (default,
        in-process thread pool) or ``"process"`` — one worker process per
        shard over mmap'd ``.seg`` segments
        (:class:`~repro.serve.pool.ProcessShardPool`), byte-identical top-k,
        true parallelism, and per-request budget support.
    serve_config:
        Process-pool knobs (:class:`~repro.serve.pool.ServeConfig`) for
        ``execution="process"``; ``None`` derives the shard count from
        ``service_config.num_shards``.
    telemetry:
        The session's :class:`~repro.telemetry.Telemetry` bundle (tracer +
        metrics registry + slow-query log).  ``None`` builds a default with
        tracing *disabled* — metrics and the slow log stay live (they are
        nearly free), spans cost one global-int check per request.
    storage:
        An optional :class:`~repro.storage.sqlite.SQLiteBackend` the
        session's storage-aware engines may use.  The ``"sql"`` pushdown
        engine keeps (and persists) its accelerator schema there; without a
        backend it builds a private in-memory accelerator instead.  The
        backend's lifetime belongs to the caller — the session does not
        close it.
    """

    def __init__(
        self,
        corpus: TableCorpus,
        index=None,
        config: MateConfig | None = None,
        service_config: ServiceConfig | None = None,
        registry: EngineRegistry | None = None,
        execution: str = "thread",
        serve_config=None,
        telemetry: Telemetry | None = None,
        storage=None,
    ):
        if execution not in ("thread", "process"):
            raise ConfigurationError(
                f'execution must be "thread" or "process", got {execution!r}'
            )
        self.corpus = corpus
        self.config = config or MateConfig()
        self.service_config = service_config or ServiceConfig()
        self.registry = registry or DEFAULT_REGISTRY
        self.execution = execution
        self.serve_config = serve_config
        self.storage = storage
        self._owns_telemetry = telemetry is None
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        if index is None:
            index = build_index(corpus, config=self.config)
        # Only a monolithic InvertedIndex can be partitioned here; sharded,
        # live, and pre-wrapped indexes keep their own topology.
        if self.service_config.num_shards > 1 and isinstance(
            index, InvertedIndex
        ):
            index = ShardedInvertedIndex.from_index(
                index, self.service_config.num_shards
            )
        if (
            isinstance(index, ShardedInvertedIndex)
            and self.service_config.fetch_workers > 1
        ):
            index.max_workers = self.service_config.fetch_workers
        if isinstance(index, CachingIndex):
            # An already-cached index (e.g. handed over from another session
            # or the deprecated service shim) is used as-is: stacking a
            # second LRU on top would double the memory and hide the inner
            # counters.
            self.base_index = index.wrapped
            self.index = index
        else:
            #: The index before cache wrapping (what persistence layers see).
            self.base_index = index
            if self.service_config.cache_capacity > 0:
                self.index = CachingIndex(
                    index, capacity=self.service_config.cache_capacity
                )
            else:
                self.index = index
        # Engines are cached per request configuration signature so repeated
        # requests share one instance (and its memoised value hashes); the
        # per-run state of every engine is local to each discover() call.
        self._engines: dict[tuple, tuple[EngineSpec, object]] = {}
        self._engines_lock = threading.Lock()
        # One MinHash-LSH sketch store shared by every cached engine: built
        # lazily on the first sketch-mode request (or adopted from a live
        # index, which keeps its own store incrementally fresh).
        self._sketch_index = None
        self._sketch_lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Register session-level instruments into the telemetry registry.

        This is where the formerly siloed aggregates join one scrapeable
        surface: request counts and latency live in real instruments, the
        LRU cache and the per-run discovery counters flow in through
        scrape-time callbacks (their owners keep their own types).
        """
        metrics = self.telemetry.metrics
        self._requests_total = metrics.counter(
            "repro_session_requests_total", "Discovery requests accepted"
        )
        self._failures_total = metrics.counter(
            "repro_session_failures_total", "Discovery requests that raised"
        )
        self._request_latency = metrics.histogram(
            "repro_request_latency_seconds",
            "End-to-end session.discover latency",
        )
        self._pl_fetched_total = metrics.counter(
            "repro_discovery_pl_items_fetched_total",
            "Posting-list items fetched across all requests",
        )
        self._tables_evaluated_total = metrics.counter(
            "repro_discovery_tables_evaluated_total",
            "Candidate tables fully evaluated across all requests",
        )
        self._sketch_candidates_total = metrics.counter(
            "repro_sketch_candidates_total",
            "Candidate tables admitted by the sketch tier across all requests",
        )
        counters = self.cache_counters if isinstance(
            self.index, CachingIndex
        ) else None
        if counters is not None:
            metrics.counter_callback(
                "repro_cache_hits_total",
                lambda: counters.hits,
                "Posting-list cache hits",
            )
            metrics.counter_callback(
                "repro_cache_misses_total",
                lambda: counters.misses,
                "Posting-list cache misses",
            )
            metrics.counter_callback(
                "repro_cache_evictions_total",
                lambda: counters.evictions,
                "Posting-list cache evictions",
            )
        metrics.counter_callback(
            "repro_slowlog_recorded_total",
            lambda: self.telemetry.slow_log.recorded_total,
            "Queries recorded by the slow-query log",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the session's scheduler and cached engines (idempotent)."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        # Engines owning external resources (the process pool's workers and
        # segment files) expose close(); in-process engines do not.
        with self._engines_lock:
            engines = list(self._engines.values())
            self._engines.clear()
        for _spec, engine in engines:
            closer = getattr(engine, "close", None)
            if callable(closer):
                closer()
        if self._owns_telemetry:
            # A caller-provided bundle (the CLI's, a server's) outlives the
            # session; only the private default is retired here.
            self.telemetry.close()

    def __enter__(self) -> "DiscoverySession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _executor(self) -> ThreadPoolExecutor:
        if self._closed:
            raise DiscoveryError("the session is closed")
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=max(self.service_config.max_workers, 1),
                thread_name_prefix="discovery-session",
            )
        return self._pool

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cache_counters(self) -> CacheCounters:
        """Lifetime cache counters (zeros when caching is disabled)."""
        if isinstance(self.index, CachingIndex):
            return self.index.counters
        return CacheCounters()

    def engines(self) -> list[str]:
        """Names of the engines requests can address in this session."""
        return self.registry.names()

    def cached_engines(self) -> list[object]:
        """The engine instances built so far (one per request signature).

        Introspection for serving layers: a stats endpoint walks these for
        engines exposing ``statistics()`` (the process pool's scatter/gather
        and hedge counters) without forcing any engine to be built.
        """
        with self._engines_lock:
            return [engine for _spec, engine in self._engines.values()]

    def sketch_index(self):
        """The session's shared MinHash-LSH sketch store (lazy, cached).

        Built on the first sketch-mode request and reused by every cached
        engine afterwards, so one bulk pass over the corpus serves all
        thresholds (the threshold travels per run, not per store).  A
        session owning a :class:`~repro.ingest.live.LiveIndex` adopts the
        index's own store instead — that one stays incrementally fresh
        across :meth:`ingest` / :meth:`remove` and segment compaction.
        """
        with self._sketch_lock:
            if self._sketch_index is None:
                provider = getattr(self.base_index, "sketch_index", None)
                store = provider() if callable(provider) else None
                if store is None:
                    # No index-owned store (static index, or a recovered
                    # live directory predating sketch persistence): bulk
                    # build from the corpus.
                    from ..sketch import build_sketch_index

                    store = build_sketch_index(self.corpus)
                self._sketch_index = store
            return self._sketch_index

    # ------------------------------------------------------------------
    # Online ingestion (engine="live" sessions)
    # ------------------------------------------------------------------
    def _invalidate_cache(self) -> None:
        if isinstance(self.index, CachingIndex):
            self.index.cache.clear()

    def _invalidate_sketch_cache(self) -> None:
        """Drop a corpus-built sketch store after a write (rebuilt lazily).

        A live index keeps its own store fresh inline, so when the cached
        store *is* the index's own nothing needs to happen; only the
        corpus-built fallback goes stale and is discarded.
        """
        provider = getattr(self.base_index, "sketch_index", None)
        live_store = provider() if callable(provider) else None
        with self._sketch_lock:
            if (
                self._sketch_index is not None
                and self._sketch_index is not live_store
            ):
                self._sketch_index = None

    def ingest(self, table: Table) -> int:
        """Add ``table`` to the session's corpus and live index; returns rows.

        Requires the session to own an online-mutable index (a
        :class:`~repro.ingest.live.LiveIndex`): the write is made durable
        through its WAL, lands in the delta buffer, and is immediately
        discoverable by every subsequent request.  The posting-list cache is
        invalidated so cached blocks never serve stale postings.

        Re-ingesting an id that was :meth:`remove`-d replaces the corpus
        entry; re-ingesting a *live* id raises (remove it first).
        """
        add_table = getattr(self.base_index, "add_table", None)
        if add_table is None:
            raise DiscoveryError(
                "this session's index does not accept online ingestion; "
                "construct the session with a repro.ingest.LiveIndex"
            )
        # Corpus first, index second: the instant postings become fetchable a
        # concurrent query may verify rows via corpus.get_row, so the table
        # must already be there.  A stale entry of an earlier remove() is
        # replaced (and restored if the index rejects the write).
        stale = None
        if table.table_id in self.corpus:
            stale = self.corpus.remove_table(table.table_id)
        self.corpus.add_table(table)
        try:
            rows = add_table(table)
        except MateError:
            self.corpus.remove_table(table.table_id)
            if stale is not None:
                self.corpus.add_table(stale)
            raise
        self._invalidate_cache()
        self._invalidate_sketch_cache()
        return rows

    def remove(self, table_id: int) -> int:
        """Remove a table from the session's live view.

        The index masks the table (tombstone + buffer purge on a live
        index); the corpus keeps the :class:`~repro.datamodel.table.Table`
        object so discovery runs pinned to an older snapshot can still
        verify its rows.  Returns the number of physically dropped PL items
        (0 when the table lives only in sealed segments).
        """
        # Gate on the same ingestion capability as ingest(): every index has
        # a (destructive, maintenance-layer) remove_table, but only an
        # online-mutable one may be edited through the serving session.
        if not hasattr(self.base_index, "add_table"):
            raise DiscoveryError(
                "this session's index does not support online removal; "
                "construct the session with a repro.ingest.LiveIndex"
            )
        removed = self.base_index.remove_table(table_id)
        self._invalidate_cache()
        self._invalidate_sketch_cache()
        return removed

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _engine_for(self, request: DiscoveryRequest) -> tuple[EngineSpec, object]:
        spec = self.registry.get(request.engine)
        signature = request.engine_signature()
        with self._engines_lock:
            cached = self._engines.get(signature)
        if cached is not None:
            return cached
        # Build outside the lock: factories can be expensive (the josie and
        # prefix_tree engines build whole indexes) and must not serialise
        # concurrent dispatch to other engines.  First insert wins.
        built = (spec, spec.factory(self, request))
        with self._engines_lock:
            cached = self._engines.setdefault(signature, built)
        if cached is not built:
            # Lost the build race: another thread's engine is the cached one.
            # Dispose of ours — engines can own real resources (the process
            # pool holds worker processes and mmap'd segments).
            closer = getattr(built[1], "close", None)
            if callable(closer):
                closer()
        return cached

    def _resolve_k(self, request: DiscoveryRequest) -> int:
        return request.k if request.k is not None else self.config.k

    @staticmethod
    def _run_kwargs(
        spec: EngineSpec, request: DiscoveryRequest, budget, engine=None
    ) -> dict[str, object]:
        """Per-run keyword arguments, refusing knobs the engine cannot honour.

        Limits, planner options, and sketch options are enforced by engines
        registered with the matching capability; a request carrying any of
        them is refused on any other engine (the session never silently
        drops a knob it cannot enforce).  Capability can also be
        instance-level: one registered name may build engines of different
        capability (the ``"sharded"`` spec builds a thread engine without
        budget support or a process pool with it), so truthy
        ``engine.supports_budget`` / ``supports_planner`` /
        ``supports_sketch`` attributes count too.
        """
        kwargs: dict[str, object] = {}
        if budget is not None:
            if not (
                spec.supports_budget
                or getattr(engine, "supports_budget", False)
            ):
                raise DiscoveryError(
                    f"engine {spec.name!r} does not support per-request "
                    "limits (deadline_seconds / max_pl_fetches)"
                )
            kwargs["budget"] = budget
        if request.planner_requested:
            if not (
                spec.supports_planner
                or getattr(engine, "supports_planner", False)
            ):
                raise DiscoveryError(
                    f"engine {spec.name!r} does not support planner options "
                    "(DiscoveryRequest.planner)"
                )
            kwargs["planner"] = request.planner
        if request.sketch_requested:
            if not (
                spec.supports_sketch
                or getattr(engine, "supports_sketch", False)
            ):
                raise DiscoveryError(
                    f"engine {spec.name!r} does not support the sketch tier "
                    "(DiscoveryRequest.sketch / planner mode 'sketch')"
                )
            kwargs["sketch"] = request.sketch
        return kwargs

    def discover(self, request: DiscoveryRequest) -> SessionResult:
        """Answer one request and return its :class:`SessionResult`.

        Per-request limits (``deadline_seconds`` / ``max_pl_fetches``) are
        enforced by engines registered with ``supports_budget``, and
        non-default planner options by engines registered with
        ``supports_planner``; a request carrying either is refused on any
        other engine (the session never silently drops a knob it cannot
        enforce).  Errors raised anywhere below this call carry the engine
        name and request label (and, with tracing enabled, the trace id).

        The call runs under a ``session.discover`` root span; downstream
        layers (the executor's stage spans, the process pool's worker
        spans) attach to it through context propagation.  Every request
        feeds the telemetry registry's request counter and latency
        histogram, and runs crossing the slow-query threshold land in the
        session's :class:`~repro.telemetry.SlowQueryLog`.
        """
        telemetry = self.telemetry
        started = time.perf_counter()
        self._requests_total.inc()
        with telemetry.tracer.span(
            "session.discover",
            attributes={"request": request.label, "engine": request.engine},
        ) as span:
            try:
                spec, engine = self._engine_for(request)
            except MateError as error:
                self._failures_total.inc()
                raise _attach_trace(error.with_context(request=request), span)
            k = self._resolve_k(request)
            budget = request.make_budget()
            try:
                kwargs = self._run_kwargs(spec, request, budget, engine)
                response = engine.discover(request.query, k=k, **kwargs)
            except MateError as error:
                self._failures_total.inc()
                raise _attach_trace(
                    error.with_context(engine=spec.name, request=request), span
                )
        result = SessionResult(request=request, engine=spec.name, response=response)
        self._observe_request(request, spec.name, result, budget, started, span)
        return result

    def _observe_request(
        self, request, engine_name, result, budget, started, span
    ) -> None:
        """Feed one finished request into metrics and the slow-query log."""
        elapsed = time.perf_counter() - started
        self._request_latency.observe(elapsed)
        counters = result.counters
        self._pl_fetched_total.inc(counters.pl_items_fetched)
        self._tables_evaluated_total.inc(counters.tables_evaluated)
        sketch_candidates = counters.extra.get("sketch_candidates")
        if sketch_candidates is not None:
            self._sketch_candidates_total.inc(sketch_candidates)
        slow_log = self.telemetry.slow_log
        if not slow_log.should_record(elapsed):
            return
        budget_state: dict[str, object] = {}
        if budget is not None:
            budget_state = {
                "max_pl_fetches": request.max_pl_fetches,
                "remaining_pl_fetches": budget.remaining_pl_fetches,
                "deadline_seconds": request.deadline_seconds,
                "exhausted": budget.exhausted,
                "expired": budget.expired,
            }
        plan = result.plan_explain()
        slow_log.record(
            SlowQueryEntry(
                request=request.label,
                engine=engine_name,
                seconds=elapsed,
                threshold_seconds=slow_log.threshold_seconds,
                trace_id=span.trace_id or None,
                stages={
                    name: stats.as_dict()
                    for name, stats in counters.stages.items()
                },
                budget=budget_state,
                plan=plan,
            )
        )

    # ------------------------------------------------------------------
    # Batching
    # ------------------------------------------------------------------
    def discover_batch(
        self,
        requests: Iterable[DiscoveryRequest],
        on_error: str = "raise",
    ) -> SessionBatch:
        """Answer every request and return results plus aggregate statistics.

        Results come back in submission order and are identical to what
        sequential :meth:`discover` calls would produce.  The session warms
        its posting-list cache with one deduplicated bulk fetch of the
        batch's probe values first (for cache-eligible, unlimited requests),
        then schedules the queries over ``service_config.max_workers``
        threads.

        ``on_error`` controls failure handling: ``"raise"`` (default)
        propagates the first attributable error, ``"collect"`` keeps going —
        failed slots hold ``None``, the exceptions are returned on the batch,
        and the :class:`~repro.service.service.BatchStats` carry one
        attribution line per failure.
        """
        if on_error not in ("raise", "collect"):
            raise DiscoveryError(
                f'on_error must be "raise" or "collect", got {on_error!r}'
            )
        from ..service.service import BatchStats

        request_list = list(requests)
        before = self.cache_counters.snapshot()
        started = time.perf_counter()

        distinct, duplicates = self._warm_cache(request_list)

        def run_one(request: DiscoveryRequest):
            try:
                return self.discover(request)
            except MateError as error:
                if on_error == "raise":
                    raise
                return error

        workers = self.service_config.max_workers
        if workers > 1 and len(request_list) > 1:
            # Reuse the session's pool — no per-batch thread churn.
            outcomes = list(self._executor().map(run_one, request_list))
        else:
            outcomes = [run_one(request) for request in request_list]

        results: list[SessionResult | None] = []
        failures: list[Exception] = []
        for request, outcome in zip(request_list, outcomes):
            if isinstance(outcome, Exception):
                failures.append(outcome)
                results.append(None)
                # Surface the failure through the structured logger, keyed
                # by the query's trace id (stamped onto the error by
                # discover()'s root span) — BatchStats.failures alone made
                # batch errors invisible to log-based diagnosis.
                _LOGGER.error(
                    "batch query failed: %s",
                    outcome,
                    extra={
                        "trace_id": getattr(outcome, "trace_id", None),
                        "request_label": request.label,
                        "engine": request.engine,
                    },
                )
            else:
                results.append(outcome)

        resolved_ks = {self._resolve_k(request) for request in request_list}
        stats = BatchStats(
            num_queries=len(request_list),
            k=resolved_ks.pop() if len(resolved_ks) == 1 else 0,
            batch_seconds=time.perf_counter() - started,
            distinct_probe_values=distinct,
            duplicate_probe_values=duplicates,
            cache=self.cache_counters.delta_since(before),
            failed_queries=len(failures),
            failures=[str(error) for error in failures],
        )
        return SessionBatch(results=results, stats=stats, failures=failures)

    def _warm_cache(self, requests: list[DiscoveryRequest]) -> tuple[int, int]:
        """Bulk-fetch the batch's deduplicated probe values into the cache.

        Returns ``(distinct, duplicates)``.  Only cache-eligible requests
        participate: the engine must expose ``probe_values`` and the request
        must be unlimited (warming past a fetch budget would charge the cache
        for work the run will never do) with default planner options (the
        cost model may seed from a different column than the selector-based
        ``probe_values``, making the warmed values dead weight).  Errors
        during warm-up are deferred to the actual run, where they are
        attributed properly.
        """
        if not isinstance(self.index, CachingIndex):
            return 0, 0
        total = 0
        merged: dict[str, None] = {}
        for request in requests:
            if request.limited or request.planner_requested:
                continue
            try:
                # Spec lookup first: no engine is built just to learn that
                # it cannot participate in warm-up.
                if not self.registry.get(request.engine).supports_probe_values:
                    continue
                _, engine = self._engine_for(request)
                values = engine.probe_values(request.query)
            except MateError:
                continue
            total += len(values)
            merged.update(dict.fromkeys(values))
        if merged:
            self.index.fetch_batch(merged)
        return len(merged), total - len(merged)

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def discover_stream(
        self, request: DiscoveryRequest
    ) -> Iterator[SessionResult]:
        """Yield incremental top-k snapshots, ending with the final result.

        Snapshots (``complete=False``, no column mappings or counters) are
        emitted every time a candidate table enters or improves the top-k,
        so consecutive snapshots are monotonically improving; the last
        yielded element is the full final :class:`SessionResult`, equal to
        what :meth:`discover` returns for the same request.  Engines without
        streaming support yield the final result only.
        """
        try:
            spec, engine = self._engine_for(request)
        except MateError as error:
            raise error.with_context(request=request)
        k = self._resolve_k(request)
        if not spec.supports_budget:
            # Engines outside the MateDiscovery family expose neither the
            # budget nor the snapshot hook; stream degenerates to one item.
            # (Budget-capable instances — the process pool — still enforce
            # limits inside discover(), they just cannot stream snapshots.)
            if request.limited and not getattr(
                engine, "supports_budget", False
            ):
                raise DiscoveryError(
                    f"engine {spec.name!r} does not support per-request limits"
                ).with_context(engine=spec.name, request=request)
            yield self.discover(request)
            return
        try:
            # Budget handled below (streams always run with one); this
            # resolves — and gates — the planner kwargs only.
            planner_kwargs = self._run_kwargs(spec, request, None)
        except MateError as error:
            raise error.with_context(engine=spec.name, request=request)

        # Always run with a budget so an abandoned stream can cancel the
        # worker: closing the generator expires the budget, and the engine
        # stops at its next deadline check instead of finishing the run.
        budget = request.make_budget() or RequestBudget()
        snapshots: queue.Queue = queue.Queue()
        done = object()
        outcome: dict[str, object] = {}
        system = getattr(engine, "system_name", spec.name)

        def on_snapshot(ranked: list[tuple[int, int]]) -> None:
            snapshots.put(self._snapshot_result(request, spec.name, system, k, ranked))

        def run() -> None:
            try:
                outcome["result"] = engine.discover(
                    request.query,
                    k=k,
                    budget=budget,
                    on_snapshot=on_snapshot,
                    **planner_kwargs,
                )
            except BaseException as error:  # noqa: BLE001 - relayed below
                outcome["error"] = error
            finally:
                snapshots.put(done)

        # Run under a copy of the caller's context so tracer spans opened
        # around the stream parent the engine's spans in the worker thread.
        stream_context = contextvars.copy_context()
        worker = threading.Thread(
            target=stream_context.run, args=(run,),
            name="discovery-stream", daemon=True,
        )
        worker.start()
        try:
            while True:
                item = snapshots.get()
                if item is done:
                    break
                yield item
        finally:
            budget.cancel()
        worker.join()
        error = outcome.get("error")
        if error is not None:
            if isinstance(error, MateError):
                raise error.with_context(engine=spec.name, request=request)
            raise error  # pragma: no cover - non-library failure
        yield SessionResult(
            request=request, engine=spec.name, response=outcome["result"]
        )

    def _snapshot_result(
        self,
        request: DiscoveryRequest,
        engine_name: str,
        system: str,
        k: int,
        ranked: list[tuple[int, int]],
    ) -> SessionResult:
        tables = [
            TableResult(
                table_id=table_id,
                joinability=joinability,
                table_name=self.corpus.get_table(table_id).name,
            )
            for table_id, joinability in ranked
        ]
        response = DiscoveryResult(
            system=system,
            k=k,
            tables=tables,
            counters=DiscoveryCounters(),
            complete=False,
        )
        return SessionResult(request=request, engine=engine_name, response=response)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def submit(self, request: DiscoveryRequest) -> "Future[SessionResult]":
        """Schedule ``request`` on the session's thread pool (a Future).

        The submitting thread's :mod:`contextvars` context travels with the
        task, so a span opened by the caller (the HTTP front end's
        per-request span) parents the worker-side ``session.discover``.
        """
        context = contextvars.copy_context()
        return self._executor().submit(context.run, self.discover, request)

    async def asubmit(self, request: DiscoveryRequest) -> SessionResult:
        """``await``-able :meth:`discover`, run on the session's thread pool."""
        return await asyncio.wrap_future(self.submit(request))

    async def asubmit_batch(
        self, requests: Iterable[DiscoveryRequest]
    ) -> list[SessionResult]:
        """``await``-able fan-out: every request through :meth:`asubmit`."""
        return list(
            await asyncio.gather(
                *(self.asubmit(request) for request in requests)
            )
        )
