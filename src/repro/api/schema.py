"""The JSON response schema shared by every machine-readable output.

One schema version covers everything this repository serialises for external
consumers: the CLI's ``--json`` output, the bench-smoke artifacts written by
``scripts/export_bench_json.py``, and
:meth:`SessionResult.to_dict <repro.api.results.SessionResult.to_dict>`.
Each payload is wrapped in the same envelope::

    {"schema_version": 2, "kind": "<payload kind>", ...payload fields...}

Field names are part of the contract: renaming or removing one requires a
``SCHEMA_VERSION`` bump (adding fields does not).
"""

from __future__ import annotations

#: Version of the JSON envelope and the field names inside it.
#:
#: v2 (planner pipeline): ``discovery_result`` payloads gained the
#: ``stages`` per-stage breakdown, the ``plan`` execution trace, and
#: ``request.planner_mode``.  Every v1 field is unchanged.
SCHEMA_VERSION = 2

#: Envelope kinds currently emitted.
KIND_DISCOVERY_RESULT = "discovery_result"
KIND_BATCH_RESULT = "batch_result"
KIND_BENCHMARK = "benchmark"


def json_envelope(kind: str, payload: dict) -> dict:
    """Wrap ``payload`` in the versioned envelope (a new dictionary)."""
    document = {"schema_version": SCHEMA_VERSION, "kind": kind}
    document.update(payload)
    return document
