"""The engine registry: one front door over many discovery strategies.

Every discovery engine of the reproduction — MATE itself, its sharded
scale-out, and the SCR / MCR / JOSIE / prefix-tree baselines — is registered
here under a short name, entry-point style.  A
:class:`~repro.api.session.DiscoverySession` resolves
:attr:`DiscoveryRequest.engine <repro.api.request.DiscoveryRequest.engine>`
through the registry, so callers pick a strategy by name instead of wiring
constructors by hand, and downstream code (CLI, experiments, future serving
layers) can enumerate what is available via :func:`available_engines`.

Third-party engines plug in with::

    from repro.api import register_engine

    def build_my_engine(session, request):
        return MyEngine(session.corpus, session.index, config=session.config)

    register_engine("mine", build_my_engine, description="my engine")

A factory receives the owning session and the request and must return an
object exposing ``discover(query, k) -> DiscoveryResult``.  Engines that
additionally accept the ``budget=`` / ``on_snapshot=`` keywords of
:meth:`MateDiscovery.discover <repro.core.discovery.MateDiscovery.discover>`
should be registered with ``supports_budget=True`` so the session lets
per-request limits through (it refuses to silently drop a limit on an engine
that cannot enforce it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..exceptions import ConfigurationError, EngineNotFoundError

if TYPE_CHECKING:  # pragma: no cover - imported for annotations only
    from .request import DiscoveryRequest
    from .session import DiscoverySession

#: ``(session, request) -> engine``; the engine must expose ``discover``.
EngineFactory = Callable[["DiscoverySession", "DiscoveryRequest"], object]


@dataclass(frozen=True)
class EngineSpec:
    """One registered engine: its factory plus dispatch metadata."""

    name: str
    factory: EngineFactory
    description: str = ""
    #: Whether the engine's ``discover`` accepts ``budget=``/``on_snapshot=``.
    supports_budget: bool = False
    #: Whether the engine exposes ``probe_values`` (cache warm-up eligible).
    supports_probe_values: bool = False
    #: Whether the engine's ``discover`` accepts ``planner=`` (the
    #: planner/executor pipeline of :mod:`repro.plan`).
    supports_planner: bool = False
    #: Whether the engine's ``discover`` accepts ``sketch=`` (the
    #: approximate candidate tier of :mod:`repro.sketch`).
    supports_sketch: bool = False


class EngineRegistry:
    """A name → :class:`EngineSpec` mapping with entry-point semantics."""

    def __init__(self) -> None:
        self._specs: dict[str, EngineSpec] = {}

    def register(
        self,
        name: str,
        factory: EngineFactory,
        *,
        description: str = "",
        supports_budget: bool = False,
        supports_probe_values: bool = False,
        supports_planner: bool = False,
        supports_sketch: bool = False,
        replace: bool = False,
    ) -> EngineSpec:
        """Register ``factory`` under ``name`` and return its spec.

        Re-registering an existing name requires ``replace=True`` so typos
        cannot silently shadow a built-in engine.
        """
        if not name or not isinstance(name, str):
            raise ConfigurationError(
                f"engine name must be a non-empty string, got {name!r}"
            )
        if name in self._specs and not replace:
            raise ConfigurationError(
                f"engine {name!r} is already registered (pass replace=True)",
                engine=name,
            )
        spec = EngineSpec(
            name=name,
            factory=factory,
            description=description,
            supports_budget=supports_budget,
            supports_probe_values=supports_probe_values,
            supports_planner=supports_planner,
            supports_sketch=supports_sketch,
        )
        self._specs[name] = spec
        return spec

    def get(self, name: str) -> EngineSpec:
        """Return the spec for ``name``; raises :class:`EngineNotFoundError`."""
        spec = self._specs.get(name)
        if spec is None:
            raise EngineNotFoundError(
                f"unknown engine {name!r}; registered: {', '.join(self.names())}",
                engine=name,
            )
        return spec

    def names(self) -> list[str]:
        """Sorted names of every registered engine."""
        return sorted(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)


# ----------------------------------------------------------------------
# Built-in engines
# ----------------------------------------------------------------------
def _build_mate(session: "DiscoverySession", request: "DiscoveryRequest"):
    from ..core.discovery import MateDiscovery

    return MateDiscovery(
        session.corpus,
        session.index,
        config=session.config,
        hash_function_name=request.hash_function,
        column_selector=request.column_selector,
        row_filter_mode=request.row_filter_mode,
        use_table_filters=request.use_table_filters,
        sketch_provider=session.sketch_index,
    )


def _build_sharded(session: "DiscoverySession", request: "DiscoveryRequest"):
    # Builds its own per-shard indexes from the corpus (the engine's design:
    # one index per worker); the session's central index is not consulted.
    # The session's execution mode picks the worker topology: "thread" runs
    # the shards on a thread pool in-process, "process" hands each shard to
    # a worker process over mmap'd segments (same partitioning, same merge,
    # byte-identical top-k).
    if getattr(session, "execution", "thread") == "process":
        from ..serve.pool import ProcessShardPool, ServeConfig

        serve_config = session.serve_config
        if serve_config is None:
            serve_config = ServeConfig(
                num_shards=session.service_config.num_shards
            )
        return ProcessShardPool(
            session.corpus,
            config=session.config,
            hash_function_name=request.hash_function or "xash",
            column_selector=request.column_selector,
            row_filter_mode=request.row_filter_mode,
            use_table_filters=request.use_table_filters,
            serve_config=serve_config,
            telemetry=session.telemetry,
        )
    from ..core.parallel import ShardedMateDiscovery

    return ShardedMateDiscovery(
        session.corpus,
        num_shards=session.service_config.num_shards,
        config=session.config,
        hash_function_name=request.hash_function or "xash",
        max_workers=session.service_config.fetch_workers,
        column_selector=request.column_selector,
        row_filter_mode=request.row_filter_mode,
        use_table_filters=request.use_table_filters,
    )


def _build_scr(session: "DiscoverySession", request: "DiscoveryRequest"):
    from ..baselines import ScrDiscovery

    return ScrDiscovery(
        session.corpus,
        session.index,
        config=session.config,
        column_selector=request.column_selector,
        use_table_filters=request.use_table_filters,
        sketch_provider=session.sketch_index,
    )


def _build_mcr(session: "DiscoverySession", request: "DiscoveryRequest"):
    from ..baselines import McrDiscovery

    return McrDiscovery(session.corpus, session.index, config=session.config)


def _build_josie(session: "DiscoverySession", request: "DiscoveryRequest"):
    from ..baselines import ScrJosieDiscovery

    return ScrJosieDiscovery(session.corpus, config=session.config)


def _build_prefix_tree(session: "DiscoverySession", request: "DiscoveryRequest"):
    from ..baselines import PrefixTreeDiscovery

    return PrefixTreeDiscovery(session.corpus, config=session.config)


def _build_live(session: "DiscoverySession", request: "DiscoveryRequest"):
    # Algorithm 1 over the session's online-mutable LiveIndex: identical
    # dispatch to "mate", but the factory insists on a live index so a
    # request that expects online data can never silently run against a
    # static one.  Reads go through the session's cache wrapper; the
    # LiveIndex underneath pins a snapshot per fetch, so results are
    # consistent mid-compaction.
    from ..core.discovery import MateDiscovery
    from ..exceptions import DiscoveryError
    from ..ingest import LiveIndex

    if not isinstance(session.base_index, LiveIndex):
        raise DiscoveryError(
            'engine "live" requires the session to own a '
            "repro.ingest.LiveIndex (got "
            f"{type(session.base_index).__name__})"
        )
    return MateDiscovery(
        session.corpus,
        session.index,
        config=session.config,
        hash_function_name=request.hash_function,
        column_selector=request.column_selector,
        row_filter_mode=request.row_filter_mode,
        use_table_filters=request.use_table_filters,
        sketch_provider=session.sketch_index,
    )


def _build_sql(session: "DiscoverySession", request: "DiscoveryRequest"):
    # Algorithm 1 pushed down into the SQLite posting store.  When the
    # session owns a storage backend the accelerator lives (and persists)
    # there; otherwise the engine builds a private in-memory one from the
    # session index at construction time.
    from ..engine_sql import SQLPushdownEngine

    return SQLPushdownEngine(
        session.corpus,
        session.base_index,
        config=session.config,
        hash_function_name=request.hash_function,
        column_selector=request.column_selector,
        row_filter_mode=request.row_filter_mode,
        use_table_filters=request.use_table_filters,
        backend=getattr(session, "storage", None),
    )


def _register_builtins(registry: EngineRegistry) -> None:
    registry.register(
        "mate",
        _build_mate,
        description="Algorithm 1 over the session index (the paper's system)",
        supports_budget=True,
        supports_probe_values=True,
        supports_planner=True,
        supports_sketch=True,
    )
    registry.register(
        "sharded",
        _build_sharded,
        description="MATE over per-shard corpora with merged top-k "
        "(shard count from ServiceConfig.num_shards)",
    )
    registry.register(
        "scr",
        _build_scr,
        description="single-column retrieval baseline (no super key)",
        supports_budget=True,
        supports_probe_values=True,
        supports_planner=True,
        supports_sketch=True,
    )
    registry.register(
        "mcr",
        _build_mcr,
        description="multi-column retrieval baseline (per-column intersection)",
    )
    registry.register(
        "josie",
        _build_josie,
        description="JOSIE-adapted single-column baseline (builds a set index)",
    )
    registry.register(
        "prefix_tree",
        _build_prefix_tree,
        description="Li et al. prefix-tree related-work baseline",
    )
    registry.register(
        "sql",
        _build_sql,
        description="SQL pushdown: candidate generation + the XASH reject "
        "compiled into the SQLite posting store (byte-identical top-k)",
        supports_budget=True,
    )
    registry.register(
        "live",
        _build_live,
        description="Algorithm 1 over the session's online-mutable "
        "LiveIndex (WAL + delta buffer + columnar segments)",
        supports_budget=True,
        supports_probe_values=True,
        supports_planner=True,
        supports_sketch=True,
    )


#: The process-wide default registry every session uses unless given its own.
DEFAULT_REGISTRY = EngineRegistry()
_register_builtins(DEFAULT_REGISTRY)


def register_engine(
    name: str,
    factory: EngineFactory,
    *,
    description: str = "",
    supports_budget: bool = False,
    supports_probe_values: bool = False,
    supports_planner: bool = False,
    supports_sketch: bool = False,
    replace: bool = False,
) -> EngineSpec:
    """Register an engine in the default registry (entry-point style)."""
    return DEFAULT_REGISTRY.register(
        name,
        factory,
        description=description,
        supports_budget=supports_budget,
        supports_probe_values=supports_probe_values,
        supports_planner=supports_planner,
        supports_sketch=supports_sketch,
        replace=replace,
    )


def available_engines() -> list[str]:
    """Sorted names of the engines in the default registry."""
    return DEFAULT_REGISTRY.names()
