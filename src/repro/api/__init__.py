"""The unified discovery API: one typed request surface over every engine.

This package is the public front door of the reproduction (the API layer the
ROADMAP's serving story builds on):

* :class:`~repro.api.request.DiscoveryRequest` — the frozen request contract
  (query, ``k``, engine name, Algorithm 1 knobs, and the per-request
  ``deadline_seconds`` / ``max_pl_fetches`` limits);
* :class:`~repro.api.session.DiscoverySession` — the facade owning corpus +
  index + cache lifecycle, with ``discover`` / ``discover_batch`` /
  ``discover_stream`` / ``submit`` / ``asubmit`` entry points;
* :mod:`~repro.api.registry` — the engine registry (``mate``, ``sharded``,
  ``scr``, ``mcr``, ``josie``, ``prefix_tree``, plus anything registered via
  :func:`register_engine`);
* :class:`~repro.api.results.SessionResult` / :class:`~repro.api.results.SessionBatch`
  — attributable, JSON-serialisable responses sharing the versioned envelope
  of :mod:`~repro.api.schema`.

The legacy constructors (:class:`~repro.core.discovery.MateDiscovery` built
by hand, :class:`~repro.service.service.DiscoveryService`) remain available;
the service is a thin deprecated shim over a session.
"""

from .registry import (
    DEFAULT_REGISTRY,
    EngineRegistry,
    EngineSpec,
    available_engines,
    register_engine,
)
from .request import DEFAULT_ENGINE, DiscoveryRequest, RequestBudget
from ..plan import PlannerOptions
from ..sketch import SketchOptions
from .results import SessionBatch, SessionResult
from .schema import SCHEMA_VERSION, json_envelope
from .session import DiscoverySession

__all__ = [
    "DEFAULT_ENGINE",
    "DEFAULT_REGISTRY",
    "DiscoveryRequest",
    "DiscoverySession",
    "EngineRegistry",
    "EngineSpec",
    "PlannerOptions",
    "RequestBudget",
    "SCHEMA_VERSION",
    "SessionBatch",
    "SessionResult",
    "SketchOptions",
    "available_engines",
    "json_envelope",
    "register_engine",
]
