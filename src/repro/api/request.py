"""The typed request contract of the unified discovery API.

:class:`DiscoveryRequest` is the one immutable description of "run a top-k
discovery" that every front door of the library accepts: the
:class:`~repro.api.session.DiscoverySession` facade, the CLI ``discover`` /
``serve-batch`` commands, and the experiment harness.  It names the engine
(resolved through the :mod:`~repro.api.registry`), carries every knob the
engines expose (hash function, column selector, row-filter mode, table
filters), and — new over the legacy constructors — two *per-request limits*:

* ``max_pl_fetches`` — a budget on posting-list fetches.  Each probe value of
  the initialization step costs one fetch; once the budget is spent, the run
  stops fetching, answers from what it has, and flags the result via
  ``counters.budget_exhausted`` and ``complete=False``.
* ``deadline_seconds`` — a wall-clock deadline checked inside the discovery
  loop.  An expired deadline returns the partial top-k collected so far,
  flagged via ``counters.deadline_expired`` and ``complete=False``.

:class:`RequestBudget` is the runtime ledger the engine decrements; it is
created per run (requests themselves stay frozen and reusable).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable

from ..datamodel import QueryTable
from ..exceptions import DiscoveryError
from ..plan.options import DEFAULT_PLANNER_OPTIONS, PlannerOptions
from ..sketch.options import DEFAULT_SKETCH_OPTIONS, SketchOptions

#: The default engine of every request (Algorithm 1 over the session index).
DEFAULT_ENGINE = "mate"


@dataclass(frozen=True)
class DiscoveryRequest:
    """One immutable discovery request.

    Parameters
    ----------
    query:
        The query table with its composite key.
    k:
        Number of joinable tables to return; ``None`` uses the session's
        :attr:`~repro.config.MateConfig.k`.
    engine:
        Registered engine name (see :func:`repro.api.available_engines`).
    hash_function:
        Hash function the engine should assume; ``None`` follows the index.
    column_selector / row_filter_mode / use_table_filters:
        The Algorithm 1 knobs, with the same defaults as
        :class:`~repro.core.discovery.MateDiscovery`.
    deadline_seconds:
        Optional wall-clock limit for the run (must be positive).
    max_pl_fetches:
        Optional posting-list fetch budget (must be non-negative; ``0`` means
        "answer without touching the index").
    planner:
        The :class:`~repro.plan.options.PlannerOptions` controlling seed
        selection: the default keeps the classic column selector
        (byte-identical output), ``mode="cost"`` picks the cheapest
        initiator column from index statistics, ``mode="adaptive"`` adds
        mid-run re-planning.  Non-default options are refused on engines
        that do not run the planner pipeline.
    sketch:
        The :class:`~repro.sketch.SketchOptions` of the approximate
        candidate tier (planner mode ``"sketch"``): the containment
        threshold / candidate cap of the MinHash-LSH prune.  Non-default
        options require ``planner.mode="sketch"`` — they would otherwise be
        silently ignored — and are refused on engines without sketch
        support.
    request_id:
        Optional caller-supplied identifier used for attribution in logs,
        errors, and batch statistics.
    """

    query: QueryTable
    k: int | None = None
    engine: str = DEFAULT_ENGINE
    hash_function: str | None = None
    column_selector: str = "cardinality"
    row_filter_mode: str = "superkey"
    use_table_filters: bool = True
    deadline_seconds: float | None = None
    max_pl_fetches: int | None = None
    planner: PlannerOptions = field(default_factory=PlannerOptions)
    sketch: SketchOptions = field(default_factory=SketchOptions)
    request_id: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.query, QueryTable):
            raise DiscoveryError(
                f"query must be a QueryTable, got {type(self.query).__name__}",
                request=self,
            )
        if not self.engine or not isinstance(self.engine, str):
            raise DiscoveryError(
                f"engine must be a non-empty name, got {self.engine!r}",
                request=self,
            )
        if self.k is not None and self.k <= 0:
            raise DiscoveryError(
                f"k must be positive, got {self.k}", request=self
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise DiscoveryError(
                f"deadline_seconds must be positive, got {self.deadline_seconds}",
                request=self,
            )
        if self.max_pl_fetches is not None and self.max_pl_fetches < 0:
            raise DiscoveryError(
                f"max_pl_fetches must be non-negative, got {self.max_pl_fetches}",
                request=self,
            )
        if not isinstance(self.planner, PlannerOptions):
            raise DiscoveryError(
                "planner must be a repro.plan.PlannerOptions, got "
                f"{type(self.planner).__name__}",
                request=self,
            )
        if not isinstance(self.sketch, SketchOptions):
            raise DiscoveryError(
                "sketch must be a repro.sketch.SketchOptions, got "
                f"{type(self.sketch).__name__}",
                request=self,
            )
        if self.sketch != DEFAULT_SKETCH_OPTIONS and self.planner.mode != "sketch":
            raise DiscoveryError(
                "sketch options require planner mode 'sketch' (got mode "
                f"{self.planner.mode!r}); they would otherwise be ignored",
                request=self,
            )

    # ------------------------------------------------------------------
    # Identity / dispatch helpers
    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """Human-readable identity used in errors and batch statistics."""
        if self.request_id:
            return self.request_id
        return f"{self.query.table.name}[{','.join(self.query.key_columns)}]"

    @property
    def limited(self) -> bool:
        """Whether the request carries any per-request limit."""
        return self.deadline_seconds is not None or self.max_pl_fetches is not None

    @property
    def planner_requested(self) -> bool:
        """Whether the request carries non-default planner options.

        Only such requests need an engine that runs the planner pipeline;
        default options mean "behave exactly like the classic engine" and
        are accepted everywhere.
        """
        return self.planner != DEFAULT_PLANNER_OPTIONS

    @property
    def sketch_requested(self) -> bool:
        """Whether the request engages the approximate candidate tier.

        True for planner mode ``"sketch"`` (even with exhaustive default
        sketch options — the stage still runs and reports) and for any
        non-default :attr:`sketch` options.
        """
        return (
            self.planner.mode == "sketch" or self.sketch != DEFAULT_SKETCH_OPTIONS
        )

    def engine_signature(self) -> tuple:
        """The engine-configuration identity of this request.

        Requests with equal signatures are served by the same (cached) engine
        instance inside a session; the per-run inputs (query, ``k``, limits,
        planner and sketch options) are deliberately excluded: the sketch
        threshold travels to the executor per run, so one cached engine
        (and its one sketch store) serves every threshold correctly.
        """
        return (
            self.engine,
            self.hash_function,
            self.column_selector,
            self.row_filter_mode,
            self.use_table_filters,
        )

    def with_query(self, query: QueryTable) -> "DiscoveryRequest":
        """Return a copy of this request for a different query table."""
        return replace(self, query=query)

    def make_budget(
        self, clock: Callable[[], float] = time.monotonic
    ) -> "RequestBudget | None":
        """Return a fresh :class:`RequestBudget`, or ``None`` when unlimited."""
        if not self.limited:
            return None
        return RequestBudget(
            deadline_seconds=self.deadline_seconds,
            max_pl_fetches=self.max_pl_fetches,
            clock=clock,
        )


class RequestBudget:
    """The mutable per-run ledger enforcing a request's limits.

    The engine asks two questions while it runs: :meth:`take_pl_fetches`
    before the initialization fetch (how many of the wanted posting lists the
    budget still covers) and :meth:`deadline_expired` at each candidate-table
    step.  Both latch their outcome so the caller can translate the final
    state into result flags (``budget_exhausted`` / ``deadline_expired``).

    ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        deadline_seconds: float | None = None,
        max_pl_fetches: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise DiscoveryError(
                f"deadline_seconds must be positive, got {deadline_seconds}"
            )
        if max_pl_fetches is not None and max_pl_fetches < 0:
            raise DiscoveryError(
                f"max_pl_fetches must be non-negative, got {max_pl_fetches}"
            )
        self._clock = clock
        self._deadline = (
            None if deadline_seconds is None else clock() + deadline_seconds
        )
        self.remaining_pl_fetches = max_pl_fetches
        #: Latched: the fetch budget could not cover a requested fetch.
        self.exhausted = False
        #: Latched: the deadline was observed to have passed.
        self.expired = False

    @property
    def complete(self) -> bool:
        """Whether no limit has curtailed the run so far."""
        return not (self.exhausted or self.expired)

    def deadline_expired(self) -> bool:
        """Check (and latch) whether the wall-clock deadline has passed."""
        if self._deadline is not None and self._clock() >= self._deadline:
            self.expired = True
        return self.expired

    def remaining_seconds(self) -> float | None:
        """Wall-clock allowance left, or ``None`` when there is no deadline.

        Clamped at ``0.0`` once the deadline has passed (without latching
        :attr:`expired` — this is a read, not a check).  The process-pool
        scatter path uses it to forward the *remaining* allowance to shard
        workers, whose ledgers start their own clocks on arrival.
        """
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - self._clock())

    def cancel(self) -> None:
        """Expire the budget immediately (thread-safe, latched).

        The engine observes this at its next deadline check and stops — the
        mechanism behind abandoning a
        :meth:`~repro.api.session.DiscoverySession.discover_stream` early.
        """
        self.expired = True

    def take_pl_fetches(self, wanted: int) -> int:
        """Consume up to ``wanted`` fetches; returns how many were granted.

        Granting fewer than ``wanted`` latches :attr:`exhausted`.
        """
        if wanted < 0:
            raise DiscoveryError(f"wanted must be non-negative, got {wanted}")
        if self.remaining_pl_fetches is None:
            return wanted
        granted = min(wanted, self.remaining_pl_fetches)
        self.remaining_pl_fetches -= granted
        if granted < wanted:
            self.exhausted = True
        return granted
