"""The banded LSH index over per-column MinHash sketches.

:class:`SketchIndex` keeps one :class:`~repro.sketch.minhash.ColumnSketch`
per (table, column) and hashes each signature into ``bands`` buckets of
``rows`` slots each.  A query signature collides with a column's bucket in
at least one band with probability ``1 - (1 - s^rows)^bands`` at Jaccard
similarity ``s`` — the classic S-curve — so the default recall-leaning
shape (``num_perm=128``, ``bands=64``, ``rows=2``) all but guarantees that
genuinely joinable tables survive the prune while unrelated tables fall
out before the exact pipeline ever fetches their postings.

Persistence mirrors the ``.seg`` segment discipline
(:mod:`repro.ingest.live`): a JSON manifest plus a binary sketch file,
both written to a temporary name, fsynced, and atomically renamed into
place, with the directory fsynced afterwards — a crash mid-save leaves
the previous generation intact.
"""

from __future__ import annotations

import json
import os
import struct
import threading
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from ..datamodel import Table
from ..exceptions import ConfigurationError, StorageError
from .minhash import (
    ColumnSketch,
    minhash_signature,
    permutation_params,
)

#: On-disk format version of the sketch file + manifest pair.
SKETCH_FORMAT_VERSION = 1

#: Magic prefix of the binary sketch file.
SKETCH_MAGIC = b"MSKB"

#: Default file stem: ``<stem>.bin`` holds the sketches, ``<stem>.json``
#: the manifest describing them.
SKETCH_FILE_STEM = "sketches"

_HEADER = struct.Struct("<4sIIQ")
_ENTRY = struct.Struct("<QIQ")


@dataclass(frozen=True)
class SketchIndexConfig:
    """Shape of the MinHash signatures and the banded LSH split.

    ``num_perm`` must equal ``bands * rows``; the defaults lean toward
    recall (collision probability ~0.99 at Jaccard 0.5).
    """

    num_perm: int = 128
    bands: int = 64
    rows: int = 2
    seed: int = 1_000_003

    def __post_init__(self) -> None:
        if self.num_perm <= 0 or self.bands <= 0 or self.rows <= 0:
            raise ConfigurationError(
                "num_perm, bands and rows must all be positive, got "
                f"{self.num_perm}/{self.bands}/{self.rows}"
            )
        if self.bands * self.rows != self.num_perm:
            raise ConfigurationError(
                f"bands * rows must equal num_perm: {self.bands} * "
                f"{self.rows} != {self.num_perm}"
            )

    def estimated_recall(self, threshold: float) -> float:
        """Probability a column at Jaccard ``threshold`` shares a bucket."""
        if threshold <= 0.0:
            return 1.0
        return 1.0 - (1.0 - threshold**self.rows) ** self.bands


#: The process-wide default shape.
DEFAULT_SKETCH_CONFIG = SketchIndexConfig()


class SketchIndex:
    """Per-column MinHash sketches behind a banded LSH candidate lookup."""

    def __init__(self, config: SketchIndexConfig | None = None):
        self.config = config or DEFAULT_SKETCH_CONFIG
        self._params = permutation_params(self.config.num_perm, self.config.seed)
        #: table_id -> column_index -> ColumnSketch
        self._sketches: dict[int, dict[int, ColumnSketch]] = {}
        #: One bucket dict per band: band key -> table ids.
        self._buckets: list[dict[tuple[int, ...], set[int]]] = [
            {} for _ in range(self.config.bands)
        ]
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Signatures
    # ------------------------------------------------------------------
    def signature(self, values: Iterable[str]) -> tuple[int, ...]:
        """The MinHash signature of a value set under this index's seed."""
        return minhash_signature(values, *self._params)

    def _band_keys(self, signature: Sequence[int]) -> list[tuple[int, ...]]:
        rows = self.config.rows
        return [
            tuple(signature[band * rows : (band + 1) * rows])
            for band in range(self.config.bands)
        ]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_table(self, table: Table) -> int:
        """Sketch every non-empty column of ``table``; returns columns added."""
        added = 0
        for column_index in range(table.num_columns):
            values = table.distinct_column_values(column_index)
            if not values:
                continue
            sketch = ColumnSketch(
                table_id=table.table_id,
                column_index=column_index,
                cardinality=len(values),
                signature=self.signature(values),
            )
            self.add_column_sketch(sketch)
            added += 1
        return added

    def add_column_sketch(self, sketch: ColumnSketch) -> None:
        """Insert one prebuilt column sketch (the load / builder path)."""
        with self._lock:
            self._sketches.setdefault(sketch.table_id, {})[
                sketch.column_index
            ] = sketch
            for bucket, key in zip(
                self._buckets, self._band_keys(sketch.signature)
            ):
                bucket.setdefault(key, set()).add(sketch.table_id)

    def remove_table(self, table_id: int) -> bool:
        """Drop every sketch of ``table_id``; returns whether any existed."""
        with self._lock:
            columns = self._sketches.pop(table_id, None)
            if columns is None:
                return False
            for sketch in columns.values():
                for bucket, key in zip(
                    self._buckets, self._band_keys(sketch.signature)
                ):
                    members = bucket.get(key)
                    if members is None:
                        continue
                    members.discard(table_id)
                    if not members:
                        del bucket[key]
            return True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def table_ids(self) -> set[int]:
        """Ids of every sketched table."""
        with self._lock:
            return set(self._sketches)

    @property
    def num_tables(self) -> int:
        """Number of sketched tables."""
        with self._lock:
            return len(self._sketches)

    def __len__(self) -> int:
        with self._lock:
            return sum(len(columns) for columns in self._sketches.values())

    def column_sketch(self, table_id: int, column_index: int) -> ColumnSketch | None:
        """The stored sketch of one column (``None`` when absent)."""
        with self._lock:
            return self._sketches.get(table_id, {}).get(column_index)

    def candidate_tables(self, signature: Sequence[int]) -> set[int]:
        """Tables sharing at least one LSH bucket with ``signature``."""
        candidates: set[int] = set()
        with self._lock:
            for bucket, key in zip(self._buckets, self._band_keys(signature)):
                members = bucket.get(key)
                if members:
                    candidates.update(members)
        return candidates

    def query(
        self,
        values: Iterable[str],
        threshold: float = 0.0,
        max_candidates: int | None = None,
    ) -> list[tuple[int, float]]:
        """Candidate tables for a query value set, best first.

        Banded LSH proposes tables, the stored signatures refine each
        proposal to an estimated containment (query values in the table's
        best-matching column), and tables below ``threshold`` drop out.
        The result is ``(table_id, estimated_containment)`` pairs sorted by
        descending containment (ties by ascending id, so the order is
        deterministic); ``max_candidates`` keeps only the best ones.
        """
        distinct = set(values)
        signature = self.signature(distinct)
        cardinality = len(distinct)
        scored: list[tuple[int, float]] = []
        with self._lock:
            for table_id in self.candidate_tables(signature):
                best = max(
                    sketch.containment_of(signature, cardinality)
                    for sketch in self._sketches[table_id].values()
                )
                if best >= threshold:
                    scored.append((table_id, best))
        scored.sort(key=lambda entry: (-entry[1], entry[0]))
        if max_candidates is not None:
            scored = scored[:max_candidates]
        return scored

    def estimated_recall(self, threshold: float) -> float:
        """The LSH collision probability at Jaccard ``threshold``."""
        return self.config.estimated_recall(threshold)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: str | Path, stem: str = SKETCH_FILE_STEM) -> Path:
        """Persist the sketches into ``directory`` atomically.

        Writes ``<stem>.bin`` (binary sketch file) and ``<stem>.json``
        (manifest), each via tmp-write + fsync + rename; returns the
        manifest path.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        with self._lock:
            sketches = [
                columns[column_index]
                for table_id, columns in sorted(self._sketches.items())
                for column_index in sorted(columns)
            ]
        data_path = directory / f"{stem}.bin"
        payload = bytearray(
            _HEADER.pack(
                SKETCH_MAGIC,
                SKETCH_FORMAT_VERSION,
                self.config.num_perm,
                len(sketches),
            )
        )
        for sketch in sketches:
            payload += _ENTRY.pack(
                sketch.table_id, sketch.column_index, sketch.cardinality
            )
            payload += array("Q", sketch.signature).tobytes()
        _atomic_write(data_path, bytes(payload))
        manifest = {
            "format_version": SKETCH_FORMAT_VERSION,
            "kind": "sketch-index",
            "num_perm": self.config.num_perm,
            "bands": self.config.bands,
            "rows": self.config.rows,
            "seed": self.config.seed,
            "count": len(sketches),
            "data_file": data_path.name,
            "data_bytes": len(payload),
        }
        manifest_path = directory / f"{stem}.json"
        _atomic_write(
            manifest_path,
            json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8"),
        )
        return manifest_path

    @classmethod
    def load(
        cls, directory: str | Path, stem: str = SKETCH_FILE_STEM
    ) -> "SketchIndex":
        """Load a persisted sketch index (see :meth:`save`)."""
        directory = Path(directory)
        manifest_path = directory / f"{stem}.json"
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError as exc:
            raise StorageError(f"no sketch manifest at {manifest_path}") from exc
        except json.JSONDecodeError as exc:
            raise StorageError(
                f"corrupt sketch manifest at {manifest_path}: {exc}"
            ) from exc
        if manifest.get("format_version") != SKETCH_FORMAT_VERSION:
            raise StorageError(
                f"sketch manifest {manifest_path} has format_version "
                f"{manifest.get('format_version')}, expected "
                f"{SKETCH_FORMAT_VERSION}"
            )
        config = SketchIndexConfig(
            num_perm=int(manifest["num_perm"]),
            bands=int(manifest["bands"]),
            rows=int(manifest["rows"]),
            seed=int(manifest["seed"]),
        )
        data_path = directory / str(manifest["data_file"])
        try:
            payload = data_path.read_bytes()
        except FileNotFoundError as exc:
            raise StorageError(f"missing sketch file at {data_path}") from exc
        if len(payload) != int(manifest["data_bytes"]):
            raise StorageError(
                f"sketch file {data_path} is {len(payload)} bytes, manifest "
                f"says {manifest['data_bytes']}"
            )
        if len(payload) < _HEADER.size:
            raise StorageError(f"sketch file {data_path} is truncated")
        magic, version, num_perm, count = _HEADER.unpack_from(payload, 0)
        if magic != SKETCH_MAGIC or version != SKETCH_FORMAT_VERSION:
            raise StorageError(
                f"sketch file {data_path} has bad magic/version "
                f"({magic!r}/{version})"
            )
        if num_perm != config.num_perm or count != int(manifest["count"]):
            raise StorageError(
                f"sketch file {data_path} disagrees with its manifest"
            )
        index = cls(config)
        offset = _HEADER.size
        signature_bytes = 8 * num_perm
        for _ in range(count):
            table_id, column_index, cardinality = _ENTRY.unpack_from(
                payload, offset
            )
            offset += _ENTRY.size
            signature = array("Q")
            signature.frombytes(payload[offset : offset + signature_bytes])
            offset += signature_bytes
            index.add_column_sketch(
                ColumnSketch(
                    table_id=table_id,
                    column_index=column_index,
                    cardinality=cardinality,
                    signature=tuple(signature),
                )
            )
        return index


def _atomic_write(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via tmp + fsync + rename (crash safe)."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    tmp.replace(path)
    try:
        directory_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(directory_fd)
    finally:
        os.close(directory_fd)
