"""The approximate candidate tier: MinHash sketches + banded LSH.

The exact pipeline (:mod:`repro.plan`) pays for every candidate posting
list it fetches, prefilters and verifies; this package precomputes
per-column :class:`ColumnSketch` MinHash signatures at index/ingest time
and serves them from a banded-LSH :class:`SketchIndex`, so the planner's
``SketchPrune`` stage (``planner.mode="sketch"`` +
:class:`SketchOptions` on the request) can shrink the fetch universe to
the tables whose estimated containment clears a threshold — *before* the
exact stages run.  With ``threshold=0`` the tier is exhaustive and the
result is byte-identical to the exact engine; the same sketch store backs
the similarity-join and union-search extensions.

Signatures are deterministic (seeded permutations over a
process-independent base hash), optionally numpy-accelerated behind the
``MATE_SKETCH`` selector, and persisted next to the index segments as a
manifest + binary sketch file with atomic tmp-rename semantics.
"""

from .build import build_sketch_index
from .index import (
    DEFAULT_SKETCH_CONFIG,
    SKETCH_FILE_STEM,
    SKETCH_FORMAT_VERSION,
    SketchIndex,
    SketchIndexConfig,
)
from .minhash import (
    ColumnSketch,
    SKETCH_CHOICES,
    SKETCH_ENV_VAR,
    active_sketch_kernel,
    containment_estimate,
    jaccard_estimate,
    minhash_signature,
    permutation_params,
    set_sketch_kernel,
    sketch_kernel_choice,
    sketch_numpy_available,
    use_sketch_kernel,
)
from .options import DEFAULT_SKETCH_OPTIONS, SketchOptions

__all__ = [
    "ColumnSketch",
    "DEFAULT_SKETCH_CONFIG",
    "DEFAULT_SKETCH_OPTIONS",
    "SKETCH_CHOICES",
    "SKETCH_ENV_VAR",
    "SKETCH_FILE_STEM",
    "SKETCH_FORMAT_VERSION",
    "SketchIndex",
    "SketchIndexConfig",
    "SketchOptions",
    "active_sketch_kernel",
    "build_sketch_index",
    "containment_estimate",
    "jaccard_estimate",
    "minhash_signature",
    "permutation_params",
    "set_sketch_kernel",
    "sketch_kernel_choice",
    "sketch_numpy_available",
    "use_sketch_kernel",
]
