"""Per-request knobs of the approximate candidate tier."""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class SketchOptions:
    """How aggressively the ``SketchPrune`` stage may shrink the candidate set.

    Parameters
    ----------
    threshold:
        Minimum estimated containment (query values in the candidate column)
        a table must reach to stay in the fetch universe.  ``0.0`` is the
        exhaustive mode: the sketch stage passes every table through and the
        run is byte-identical to the exact engine.
    max_candidates:
        Optional hard cap on the number of tables the stage lets through;
        the survivors are the ``max_candidates`` best by estimated
        containment.  ``None`` leaves the threshold as the only filter.
    """

    threshold: float = 0.0
    max_candidates: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ConfigurationError(
                f"sketch threshold must be within [0, 1], got {self.threshold}"
            )
        if self.max_candidates is not None and self.max_candidates <= 0:
            raise ConfigurationError(
                "sketch max_candidates must be positive, got "
                f"{self.max_candidates}"
            )

    @property
    def enabled(self) -> bool:
        """Whether the stage actually prunes (non-exhaustive settings)."""
        return self.threshold > 0.0 or self.max_candidates is not None


#: The exhaustive default every request starts from.
DEFAULT_SKETCH_OPTIONS = SketchOptions()
