"""Bulk sketch construction over a corpus."""

from __future__ import annotations

from ..datamodel import TableCorpus
from .index import SketchIndex, SketchIndexConfig


def build_sketch_index(
    corpus: TableCorpus, config: SketchIndexConfig | None = None
) -> SketchIndex:
    """Sketch every column of every corpus table into a fresh index.

    The bulk counterpart of :meth:`SketchIndex.add_table`; the
    :class:`~repro.index.builder.IndexBuilder` calls through here when asked
    to emit sketches alongside the inverted index.
    """
    index = SketchIndex(config)
    for table in corpus:
        index.add_table(table)
    return index
