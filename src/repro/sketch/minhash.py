"""Deterministic per-column MinHash signatures.

A :class:`ColumnSketch` summarises one corpus column as ``num_perm``
minimum hash values under seeded universal permutations
``h_i(x) = (a_i * x + b_i) mod p`` with ``p = 2^61 - 1``.  The base value
hash is :func:`hashlib.blake2b` truncated to 32 bits — *not* the builtin
``hash`` — so signatures are identical across processes and interpreter
runs regardless of ``PYTHONHASHSEED``, which the persisted sketch files and
the process-pool workers rely on.

The permutation parameters are drawn from ``random.Random(seed)`` over the
full ``[1, p)`` range and the product is deliberately evaluated *modulo
2^64 first*: ``((a * h + b) mod 2^64) mod p``.  That is exactly what a
broadcasted numpy ``uint64`` pass computes natively (overflow wraps), so
the fast path is one vectorised multiply-add-mod over every permutation ×
value hash, and the pure-stdlib fallback reproduces it bit for bit with a
``& (2^64 - 1)`` mask.  The wrap-around also supplies the high-order
mixing that keeps the MinHash estimator unbiased with 32-bit value
hashes.

Path selection mirrors the prefilter kernels (:mod:`repro.index.kernels`):
the ``MATE_SKETCH`` environment variable (``auto``, ``numpy``,
``fallback``) sets the process default, and :func:`set_sketch_kernel` /
:func:`use_sketch_kernel` override it for tests.  ``auto`` and ``numpy``
degrade to the fallback when numpy is not installed.
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager
from typing import Iterable, Iterator, Sequence

try:  # numpy is an optional accelerator (the ``accel`` extra), never required
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI entry
    _np = None

#: Recognised sketch-kernel selections.
SKETCH_CHOICES: tuple[str, ...] = ("auto", "numpy", "fallback")

#: Environment variable holding the process-wide default selection.
SKETCH_ENV_VAR = "MATE_SKETCH"

#: Mersenne prime modulus of the universal permutations.
MERSENNE_PRIME = (1 << 61) - 1

#: Mask emulating numpy's native ``uint64`` wrap-around in the fallback.
_MASK_64 = (1 << 64) - 1

#: Sentinel "empty" signature entry (larger than any permuted hash).
EMPTY_SLOT = MERSENNE_PRIME

_choice = os.environ.get(SKETCH_ENV_VAR, "auto")
if _choice not in SKETCH_CHOICES:
    _choice = "auto"


def sketch_numpy_available() -> bool:
    """Whether the numpy signature path can run in this process."""
    return _np is not None


def sketch_kernel_choice() -> str:
    """The current (unresolved) sketch-kernel selection."""
    return _choice


def active_sketch_kernel() -> str:
    """The path that would execute now: ``"numpy"`` or ``"fallback"``."""
    if _choice == "fallback":
        return "fallback"
    return "numpy" if _np is not None else "fallback"


def set_sketch_kernel(choice: str) -> None:
    """Set the process-wide sketch-kernel selection."""
    global _choice
    if choice not in SKETCH_CHOICES:
        raise ValueError(
            f"unknown sketch kernel {choice!r}; expected one of {SKETCH_CHOICES}"
        )
    _choice = choice


@contextmanager
def use_sketch_kernel(choice: str) -> Iterator[None]:
    """Temporarily force a sketch-kernel selection (test helper)."""
    previous = _choice
    set_sketch_kernel(choice)
    try:
        yield
    finally:
        set_sketch_kernel(previous)


def hash_value(value: str) -> int:
    """Stable 32-bit base hash of one cell value (process independent)."""
    digest = hashlib.blake2b(value.encode("utf-8"), digest_size=4).digest()
    return int.from_bytes(digest, "little")


def permutation_params(num_perm: int, seed: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """The seeded ``(a_i, b_i)`` coefficient vectors of the permutations."""
    import random

    if num_perm <= 0:
        raise ValueError(f"num_perm must be positive, got {num_perm}")
    rng = random.Random(seed)
    a = tuple(rng.randrange(1, MERSENNE_PRIME) for _ in range(num_perm))
    b = tuple(rng.randrange(0, MERSENNE_PRIME) for _ in range(num_perm))
    return a, b


def _signature_fallback(
    hashes: Sequence[int], a: Sequence[int], b: Sequence[int]
) -> tuple[int, ...]:
    signature = [EMPTY_SLOT] * len(a)
    for value_hash in hashes:
        for position, (a_i, b_i) in enumerate(zip(a, b)):
            permuted = ((a_i * value_hash + b_i) & _MASK_64) % MERSENNE_PRIME
            if permuted < signature[position]:
                signature[position] = permuted
    return tuple(signature)


def _signature_numpy(
    hashes: Sequence[int], a: Sequence[int], b: Sequence[int]
) -> tuple[int, ...]:
    hash_vector = _np.asarray(hashes, dtype=_np.uint64)
    a_vector = _np.asarray(a, dtype=_np.uint64)[:, None]
    b_vector = _np.asarray(b, dtype=_np.uint64)[:, None]
    # uint64 arithmetic wraps mod 2^64 by construction — the same value the
    # fallback computes with its explicit mask.
    with _np.errstate(over="ignore"):
        permuted = (a_vector * hash_vector[None, :] + b_vector) % _np.uint64(
            MERSENNE_PRIME
        )
    return tuple(int(slot) for slot in permuted.min(axis=1))


def minhash_signature(
    values: Iterable[str], a: Sequence[int], b: Sequence[int]
) -> tuple[int, ...]:
    """The MinHash signature of a value set under the given permutations.

    An empty value set yields the all-:data:`EMPTY_SLOT` signature, which
    estimates zero similarity against every non-empty signature.
    """
    hashes = sorted({hash_value(value) for value in values})
    if not hashes:
        return tuple([EMPTY_SLOT] * len(a))
    if active_sketch_kernel() == "numpy":
        return _signature_numpy(hashes, a, b)
    return _signature_fallback(hashes, a, b)


def jaccard_estimate(first: Sequence[int], second: Sequence[int]) -> float:
    """The MinHash Jaccard estimate: the fraction of agreeing slots."""
    if len(first) != len(second):
        raise ValueError(
            f"signature lengths differ: {len(first)} vs {len(second)}"
        )
    if not first:
        return 0.0
    agreeing = sum(
        1
        for left, right in zip(first, second)
        if left == right and left != EMPTY_SLOT
    )
    return agreeing / len(first)


def containment_estimate(
    jaccard: float, query_cardinality: int, target_cardinality: int
) -> float:
    """Estimated containment of the query value set in the target column.

    From the inclusion-exclusion identity ``|Q ∩ T| = j / (1 + j) * (|Q| +
    |T|)`` the containment ``|Q ∩ T| / |Q|`` follows directly; the estimate
    is clamped to ``[0, 1]`` to absorb MinHash noise.
    """
    if query_cardinality <= 0 or jaccard <= 0.0:
        return 0.0
    intersection = jaccard / (1.0 + jaccard) * (
        query_cardinality + target_cardinality
    )
    return max(0.0, min(1.0, intersection / query_cardinality))


class ColumnSketch:
    """The MinHash summary of one corpus column."""

    __slots__ = ("table_id", "column_index", "cardinality", "signature")

    def __init__(
        self,
        table_id: int,
        column_index: int,
        cardinality: int,
        signature: tuple[int, ...],
    ):
        #: Table the column belongs to.
        self.table_id = table_id
        #: Zero-based column position within the table.
        self.column_index = column_index
        #: Number of distinct (non-missing) values the column held.
        self.cardinality = cardinality
        #: The MinHash signature (``num_perm`` permuted minimums).
        self.signature = signature

    def jaccard(self, signature: Sequence[int]) -> float:
        """Jaccard estimate against a query signature."""
        return jaccard_estimate(self.signature, signature)

    def containment_of(
        self, signature: Sequence[int], query_cardinality: int
    ) -> float:
        """Estimated containment of the query values in this column."""
        return containment_estimate(
            self.jaccard(signature), query_cardinality, self.cardinality
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnSketch(table_id={self.table_id}, "
            f"column_index={self.column_index}, "
            f"cardinality={self.cardinality})"
        )
