"""Short-value-aware XASH variant (the Section 9 future-work direction).

The paper's conclusion notes that "Xash cannot use its optimal potential if
cell values are too short": a value with fewer distinct characters than the
per-value bit budget (``alpha - 1``) sets fewer 1-bits, so its hash carries
less evidence and short key values (country codes, single digits, two-letter
abbreviations) collide more often under OR-aggregation.

:class:`ShortValueXashHashFunction` ("``xash_short``" in the registry) keeps
the standard XASH behaviour for values that already exhaust the character
budget and spends the *unused* budget of short values on character bigrams:

* the distinct characters of the value are encoded exactly as in XASH;
* if fewer than ``alpha - 1`` characters were encoded, adjacent character
  pairs (bigrams) are mapped onto alphabet segments via a deterministic fold
  and encoded with the same position rule until the budget is used up.

The variant never sets more bits than plain XASH is allowed to (the Eq. 5
budget still bounds the number of 1-bits), it is deterministic, and the
no-false-negative argument is untouched because the row and the query value
are hashed by the same function.  The ``short_values`` experiment measures
what the extra evidence buys on a workload keyed by short codes.
"""

from __future__ import annotations

from ..config import MateConfig
from .base import register_hash_function
from .bitvector import rotate_left
from .xash import XashHashFunction


def bigram_bucket(bigram: str, alphabet: str) -> str:
    """Deterministically fold a character bigram onto one alphabet segment.

    The fold must be stable across processes (no built-in ``hash``): it mixes
    the two code points with distinct multipliers so that "ab" and "ba" land
    in different buckets.

    >>> bigram_bucket("ab", "abc") != bigram_bucket("ba", "abc")
    True
    """
    if len(bigram) != 2:
        raise ValueError(f"expected a 2-character bigram, got {bigram!r}")
    mixed = ord(bigram[0]) * 31 + ord(bigram[1]) * 131
    return alphabet[mixed % len(alphabet)]


@register_hash_function("xash_short")
class ShortValueXashHashFunction(XashHashFunction):
    """XASH plus bigram evidence for values shorter than the bit budget."""

    name = "xash_short"

    def __init__(self, config: MateConfig):
        super().__init__(config)

    def hash_value(self, value: str) -> int:
        """Hash a value; short values receive extra bigram bits."""
        if value == "":
            return 0
        characters = self.normalized_characters(value)
        length = len(characters)
        budget = self.characters_per_value

        selected = self.select_characters(characters)
        character_region = 0
        for character in selected:
            segment = self._segment_of[character]
            offset = self.character_location_bit(character, characters)
            character_region |= 1 << (segment * self.beta + offset)

        remaining_budget = budget - len(selected)
        if remaining_budget > 0 and length >= 2:
            character_region |= self._bigram_bits(characters, remaining_budget)

        if self.config.rotation and character_region:
            character_region = rotate_left(
                character_region, length, self.char_region_bits
            )

        result = character_region
        if self.config.encode_length and self.length_segment_bits > 0:
            result |= 1 << (self.char_region_bits + length % self.length_segment_bits)
        return result

    # ------------------------------------------------------------------
    # Bigram evidence for short values
    # ------------------------------------------------------------------
    def _bigram_bits(self, characters: list[str], budget: int) -> int:
        """Encode up to ``budget`` adjacent bigrams of a short value."""
        bits = 0
        used = 0
        length = len(characters)
        for position in range(length - 1):
            if used >= budget:
                break
            bigram = characters[position] + characters[position + 1]
            bucket = bigram_bucket(bigram, self.alphabet)
            segment = self._segment_of[bucket]
            if self.beta == 1 or not self.config.encode_location:
                offset = 0
            else:
                # Position of the bigram's first character, same rule as for
                # single characters (Section 5.3.3).
                import math

                offset = min(
                    max(math.ceil((position + 1) * self.beta / length), 1), self.beta
                ) - 1
            bit = 1 << (segment * self.beta + offset)
            if bits & bit:
                continue  # this bigram bucket/offset is already used
            bits |= bit
            used += 1
        return bits

    def is_short_value(self, value: str) -> bool:
        """Whether ``value`` leaves part of the character budget unused."""
        characters = self.normalized_characters(value)
        return len(set(characters)) < self.characters_per_value
