"""Hash functions, bit-vector helpers, and super-key generation.

Importing this package registers every hash function evaluated in the paper
(XASH and its ablations, bloom filters, hash table, MD5, Murmur3, CityHash,
SimHash) in the name-based registry used by the experiment harness.
"""

from . import ablation as _ablation  # noqa: F401  (registers variants)
from . import bloom as _bloom  # noqa: F401
from . import short_values as _short_values  # noqa: F401
from . import standard as _standard  # noqa: F401
from .ablation import FIGURE5_VARIANTS
from .base import (
    HashFunction,
    available_hash_functions,
    create_hash_function,
    register_hash_function,
)
from .bitvector import (
    fold,
    from_bit_string,
    mask,
    popcount,
    rotate_left,
    rotate_right,
    subsumes,
    to_bit_string,
    truncate,
)
from .bloom import (
    BloomFilterHashFunction,
    HashTableHashFunction,
    LessHashingBloomFilter,
    false_positive_probability,
    optimal_number_of_hashes,
)
from .murmur import MurmurHashFunction, murmur3_32, murmur3_string, murmur3_x64_128
from .short_values import ShortValueXashHashFunction, bigram_bucket
from .standard import (
    CityHashFunction,
    Md5HashFunction,
    SimHashFunction,
    city_hash_64,
)
from .superkey import SuperKeyGenerator, generate_row_super_keys
from .xash import XashHashFunction, normalize_character

__all__ = [
    "FIGURE5_VARIANTS",
    "BloomFilterHashFunction",
    "CityHashFunction",
    "HashFunction",
    "HashTableHashFunction",
    "LessHashingBloomFilter",
    "Md5HashFunction",
    "MurmurHashFunction",
    "ShortValueXashHashFunction",
    "SimHashFunction",
    "SuperKeyGenerator",
    "XashHashFunction",
    "available_hash_functions",
    "bigram_bucket",
    "city_hash_64",
    "create_hash_function",
    "false_positive_probability",
    "fold",
    "from_bit_string",
    "generate_row_super_keys",
    "mask",
    "murmur3_32",
    "murmur3_string",
    "murmur3_x64_128",
    "normalize_character",
    "optimal_number_of_hashes",
    "popcount",
    "register_hash_function",
    "rotate_left",
    "rotate_right",
    "subsumes",
    "to_bit_string",
    "truncate",
]
