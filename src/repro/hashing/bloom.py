"""Bloom-filter style baselines: BF, LHBF and the single-hash hash table.

These are the "filter with post-processing" baselines of Section 7.1.2.  They
share the super-key machinery with XASH — each cell value sets a small number
of bits, rows are OR-aggregated — but choose the bits with general-purpose
hash functions instead of syntactic features:

* **BF** (``bloom``): a classic Bloom filter using ``H`` Murmur3-based hash
  functions, where ``H = (|a| / V) * ln 2`` and ``V`` is the average number of
  columns per corpus table (the number of values inserted per super key).
* **LHBF** (``lhbf``): the Kirsch–Mitzenmacher "less hashing" construction
  that derives all ``H`` probe positions from only two base hashes
  ``g_i(x) = h1(x) + i * h2(x)``.
* **HT** (``hashtable``): the degenerate one-bit-per-value case.
"""

from __future__ import annotations

import math

from ..config import MateConfig
from ..exceptions import HashingError
from .base import HashFunction, register_hash_function
from .murmur import murmur3_32


def optimal_number_of_hashes(hash_size: int, values_per_row: float) -> int:
    """Return the optimal number of bloom-filter hash functions.

    Uses the textbook formula ``H = (|a| / V) * ln 2`` (Section 7.1.2, citing
    Fan et al.); always at least 1.
    """
    if hash_size <= 0:
        raise HashingError(f"hash_size must be positive, got {hash_size}")
    if values_per_row <= 0:
        return 1
    return max(1, round((hash_size / values_per_row) * math.log(2)))


def false_positive_probability(
    hash_size: int, inserted_values: int, num_hashes: int
) -> float:
    """Theoretical bloom-filter FP probability ``(1 - e^{-V*H/|a|})^H``."""
    if hash_size <= 0 or num_hashes <= 0:
        raise HashingError("hash_size and num_hashes must be positive")
    if inserted_values <= 0:
        return 0.0
    exponent = -inserted_values * num_hashes / hash_size
    return (1.0 - math.exp(exponent)) ** num_hashes


class _BloomBase(HashFunction):
    """Shared machinery for the bloom-filter family."""

    def __init__(self, config: MateConfig, values_per_row: float | None = None):
        super().__init__(config)
        # ``V``: average number of values aggregated per super key.  Explicit
        # argument > configuration > the paper's web-table default of 5.
        if values_per_row is None:
            values_per_row = config.bloom_values_per_row
        self.values_per_row = float(values_per_row) if values_per_row else 5.0
        self.num_hashes = self._number_of_hashes()

    def _number_of_hashes(self) -> int:
        raise NotImplementedError

    def _positions(self, value: str) -> list[int]:
        raise NotImplementedError

    def hash_value(self, value: str) -> int:
        if value == "":
            return 0
        result = 0
        for position in self._positions(value):
            result |= 1 << (position % self.hash_size)
        return result


@register_hash_function("bloom")
class BloomFilterHashFunction(_BloomBase):
    """Standard bloom filter with ``H`` independent Murmur3 seeds."""

    name = "bloom"

    def _number_of_hashes(self) -> int:
        return optimal_number_of_hashes(self.hash_size, self.values_per_row)

    def _positions(self, value: str) -> list[int]:
        data = value.encode("utf-8")
        return [
            murmur3_32(data, seed=seed) % self.hash_size
            for seed in range(self.num_hashes)
        ]


@register_hash_function("lhbf")
class LessHashingBloomFilter(_BloomBase):
    """Kirsch–Mitzenmacher less-hashing bloom filter (two base hashes)."""

    name = "lhbf"

    def _number_of_hashes(self) -> int:
        return optimal_number_of_hashes(self.hash_size, self.values_per_row)

    def _positions(self, value: str) -> list[int]:
        data = value.encode("utf-8")
        h1 = murmur3_32(data, seed=0)
        h2 = murmur3_32(data, seed=0x5BD1E995) or 1
        return [(h1 + i * h2) % self.hash_size for i in range(self.num_hashes)]


@register_hash_function("hashtable")
class HashTableHashFunction(_BloomBase):
    """Single-hash baseline (HT in the paper): one bit per value."""

    name = "hashtable"

    def _number_of_hashes(self) -> int:
        return 1

    def _positions(self, value: str) -> list[int]:
        return [murmur3_32(value.encode("utf-8"), seed=0xA1B2C3D4) % self.hash_size]
