"""Super-key generation and membership checks (Section 5.1 / 6.3).

A *super key* is the OR-aggregation of the hashes of every cell value in a
table row.  It acts like a per-row bloom filter: given the aggregated hash of
a composite key value combination, a single bitwise check decides whether the
row could possibly contain that combination.  The check can produce false
positives (which the exact verification step removes) but — by construction —
never false negatives.

:class:`SuperKeyGenerator` wraps a :class:`~repro.hashing.base.HashFunction`
and provides the three operations the rest of the system needs:

* ``row_super_key``      — super key of a candidate-table row,
* ``key_super_key``      — aggregated hash of a query key value combination,
* ``covers``             — the subsumption check of Section 6.3, with the
  short-circuit length pre-check of Section 5.3.4 when the underlying hash is
  XASH.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..config import MateConfig
from .base import HashFunction, create_hash_function
from .bitvector import subsumes
from .xash import XashHashFunction


class SuperKeyGenerator:
    """Builds and probes super keys using a configurable hash function."""

    def __init__(self, hash_function: HashFunction):
        self.hash_function = hash_function
        self.config = hash_function.config
        self.hash_size = hash_function.hash_size
        # Cell values repeat heavily across rows and tables, so per-value hash
        # results are memoised (the reference implementation materialises them
        # in the database for the same reason).
        self._cache: dict[str, int] = {}
        self._is_xash = isinstance(hash_function, XashHashFunction)

    @classmethod
    def from_name(cls, name: str, config: MateConfig) -> "SuperKeyGenerator":
        """Create a generator for the hash function registered under ``name``."""
        return cls(create_hash_function(name, config))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def value_hash(self, value: str) -> int:
        """Hash a single cell value (memoised)."""
        cached = self._cache.get(value)
        if cached is None:
            cached = self.hash_function.hash_value(value)
            self._cache[value] = cached
        return cached

    def row_super_key(self, row: Iterable[str]) -> int:
        """Return the super key of a full table row."""
        super_key = 0
        for value in row:
            super_key |= self.value_hash(value)
        return super_key

    def key_super_key(self, key_values: Sequence[str]) -> int:
        """Return the aggregated hash of a composite key value combination."""
        return self.row_super_key(key_values)

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    @property
    def length_segment_shift(self) -> int | None:
        """Bit position where XASH's length segment starts (``None`` otherwise).

        The vectorized prefilter kernels replicate the short-circuit length
        pre-check of :meth:`covers_with_short_circuit` by masking the bits
        at and above this position; non-XASH hash functions have no length
        segment, so the kernels skip the pre-check exactly like the scalar
        path does.
        """
        if not self._is_xash:
            return None
        return self.hash_function.char_region_bits

    def covers(self, row_super_key: int, key_super_key: int) -> bool:
        """Return ``True`` iff the row super key masks the key super key.

        Implements line 18 of Algorithm 1:
        ``d_row.superkey OR pl_item.superkey == pl_item.superkey``.
        """
        return subsumes(row_super_key, key_super_key)

    def covers_with_short_circuit(
        self, row_super_key: int, key_super_key: int
    ) -> tuple[bool, bool]:
        """Subsumption check with the XASH length short-circuit.

        Returns ``(covered, short_circuited)``: when the underlying hash is
        XASH and already the length segment of the key is not covered, the
        check stops before touching the character region (Section 5.3.4).
        The second element reports whether that early exit fired, which the
        instrumentation counters use to explain the runtime advantage of XASH
        over BF at similar FP rates (Section 7.4).
        """
        if self._is_xash:
            hash_function = self.hash_function
            key_length_bits = hash_function.length_segment(key_super_key)
            row_length_bits = hash_function.length_segment(row_super_key)
            if not subsumes(row_length_bits, key_length_bits):
                return False, True
        return subsumes(row_super_key, key_super_key), False


def generate_row_super_keys(
    rows: Iterable[Iterable[str]], generator: SuperKeyGenerator
) -> list[int]:
    """Return the super key of every row in ``rows`` (helper for indexing)."""
    return [generator.row_super_key(row) for row in rows]
