"""Pure-Python MurmurHash3 implementation.

The paper's bloom-filter baseline uses the Murmur3 family as its underlying
hash (Section 7.1.2), and plain Murmur is itself one of the evaluated
"standard" hash functions in Table 2.  No third-party package is available
offline, so both the 32-bit (x86) and the 128-bit (x64) variants are
implemented here from the reference algorithm, with the published test
vectors checked in the test-suite.
"""

from __future__ import annotations

from .base import HashFunction, register_hash_function
from .bitvector import fold

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _rotl32(x: int, r: int) -> int:
    return ((x << r) | (x >> (32 - r))) & _MASK32


def _rotl64(x: int, r: int) -> int:
    return ((x << r) | (x >> (64 - r))) & _MASK64


def _fmix32(h: int) -> int:
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h


def _fmix64(k: int) -> int:
    k ^= k >> 33
    k = (k * 0xFF51AFD7ED558CCD) & _MASK64
    k ^= k >> 33
    k = (k * 0xC4CEB9FE1A85EC53) & _MASK64
    k ^= k >> 33
    return k


def murmur3_32(data: bytes, seed: int = 0) -> int:
    """MurmurHash3 x86 32-bit of ``data`` with the given ``seed``.

    >>> hex(murmur3_32(b""))
    '0x0'
    >>> hex(murmur3_32(b"hello", 0))
    '0x248bfa47'
    """
    c1 = 0xCC9E2D51
    c2 = 0x1B873593
    length = len(data)
    h1 = seed & _MASK32
    rounded_end = (length & 0xFFFFFFFC)

    for block_start in range(0, rounded_end, 4):
        k1 = int.from_bytes(data[block_start:block_start + 4], "little")
        k1 = (k1 * c1) & _MASK32
        k1 = _rotl32(k1, 15)
        k1 = (k1 * c2) & _MASK32
        h1 ^= k1
        h1 = _rotl32(h1, 13)
        h1 = (h1 * 5 + 0xE6546B64) & _MASK32

    k1 = 0
    tail = length & 0x03
    if tail >= 3:
        k1 ^= data[rounded_end + 2] << 16
    if tail >= 2:
        k1 ^= data[rounded_end + 1] << 8
    if tail >= 1:
        k1 ^= data[rounded_end]
        k1 = (k1 * c1) & _MASK32
        k1 = _rotl32(k1, 15)
        k1 = (k1 * c2) & _MASK32
        h1 ^= k1

    h1 ^= length
    return _fmix32(h1)


def murmur3_x64_128(data: bytes, seed: int = 0) -> int:
    """MurmurHash3 x64 128-bit of ``data``, returned as a 128-bit integer."""
    c1 = 0x87C37B91114253D5
    c2 = 0x4CF5AD432745937F
    length = len(data)
    h1 = seed & _MASK64
    h2 = seed & _MASK64
    num_blocks = length // 16

    for block in range(num_blocks):
        offset = block * 16
        k1 = int.from_bytes(data[offset:offset + 8], "little")
        k2 = int.from_bytes(data[offset + 8:offset + 16], "little")

        k1 = (k1 * c1) & _MASK64
        k1 = _rotl64(k1, 31)
        k1 = (k1 * c2) & _MASK64
        h1 ^= k1
        h1 = _rotl64(h1, 27)
        h1 = (h1 + h2) & _MASK64
        h1 = (h1 * 5 + 0x52DCE729) & _MASK64

        k2 = (k2 * c2) & _MASK64
        k2 = _rotl64(k2, 33)
        k2 = (k2 * c1) & _MASK64
        h2 ^= k2
        h2 = _rotl64(h2, 31)
        h2 = (h2 + h1) & _MASK64
        h2 = (h2 * 5 + 0x38495AB5) & _MASK64

    tail = data[num_blocks * 16:]
    k1 = 0
    k2 = 0
    tail_length = len(tail)
    if tail_length >= 9:
        for i in range(min(tail_length, 16) - 1, 7, -1):
            k2 = (k2 << 8) | tail[i]
        k2 = (k2 * c2) & _MASK64
        k2 = _rotl64(k2, 33)
        k2 = (k2 * c1) & _MASK64
        h2 ^= k2
    if tail_length >= 1:
        for i in range(min(tail_length, 8) - 1, -1, -1):
            k1 = (k1 << 8) | tail[i]
        k1 = (k1 * c1) & _MASK64
        k1 = _rotl64(k1, 31)
        k1 = (k1 * c2) & _MASK64
        h1 ^= k1

    h1 ^= length
    h2 ^= length
    h1 = (h1 + h2) & _MASK64
    h2 = (h2 + h1) & _MASK64
    h1 = _fmix64(h1)
    h2 = _fmix64(h2)
    h1 = (h1 + h2) & _MASK64
    h2 = (h2 + h1) & _MASK64
    return (h2 << 64) | h1


def murmur3_string(value: str, seed: int = 0, bits: int = 128) -> int:
    """Hash a string with Murmur3 and return a ``bits``-wide integer."""
    data = value.encode("utf-8")
    if bits <= 32:
        return murmur3_32(data, seed) & ((1 << bits) - 1)
    digest = murmur3_x64_128(data, seed)
    if bits <= 128:
        return fold(digest, bits)
    combined = digest
    produced = 128
    while produced < bits:
        seed += 1
        combined |= murmur3_x64_128(data, seed) << produced
        produced += 128
    return combined & ((1 << bits) - 1)


@register_hash_function("murmur")
class MurmurHashFunction(HashFunction):
    """Plain Murmur3 baseline (Table 2): digest folded onto the hash size.

    Like every "standard" hash in the paper it produces roughly 50% 1-bits,
    which is precisely why it performs poorly under OR-aggregation.
    """

    name = "murmur"

    def hash_value(self, value: str) -> int:
        if value == "":
            return 0
        return murmur3_string(value, seed=0x9747B28C, bits=self.hash_size)
