"""Standard cryptographic / general-purpose hash baselines (Table 2).

The paper compares XASH against MD5, Google's CityHash, SimHash and Murmur
used directly as super-key generators (no bloom-filter style post-processing).
All of them approximate a uniform distribution over the hash space, so their
outputs contain ~50% 1-bits and OR-aggregating a handful of them saturates the
super key — the behaviour Table 2 and Table 3 demonstrate.

Notes on substitutions:

* **MD5** uses :mod:`hashlib` (always available).
* **CityHash** — the original C++ library is not available offline; the
  implementation below follows the CityHash64 structure (shift-mix / 128-to-64
  multiply-xor finalisation) closely enough to preserve the statistical
  behaviour that matters for the comparison.  This is documented as a
  substitution in DESIGN.md.
* **SimHash** is the classic Charikar construction over character trigrams
  with MD5-derived feature hashes.
"""

from __future__ import annotations

import hashlib

from .base import HashFunction, register_hash_function
from .bitvector import fold

_MASK64 = 0xFFFFFFFFFFFFFFFF

# Constants from the CityHash reference implementation.
_K0 = 0xC3A5C85C97CB3127
_K1 = 0xB492B66FBE98F273
_K2 = 0x9AE16A3B2F90404F
_K_MUL = 0x9DDFEA08EB382D69


def _shift_mix(value: int) -> int:
    return (value ^ (value >> 47)) & _MASK64


def _hash128_to_64(low: int, high: int) -> int:
    """The Hash128to64 finaliser used throughout CityHash."""
    a = ((low ^ high) * _K_MUL) & _MASK64
    a ^= a >> 47
    b = ((high ^ a) * _K_MUL) & _MASK64
    b ^= b >> 47
    b = (b * _K_MUL) & _MASK64
    return b


def _rotate64(value: int, shift: int) -> int:
    if shift == 0:
        return value
    return ((value >> shift) | (value << (64 - shift))) & _MASK64


def _fetch64(data: bytes, offset: int = 0) -> int:
    return int.from_bytes(data[offset:offset + 8], "little")


def _fetch32(data: bytes, offset: int = 0) -> int:
    return int.from_bytes(data[offset:offset + 4], "little")


def city_hash_64(data: bytes) -> int:
    """A CityHash64-style hash of ``data`` (see module docstring)."""
    length = len(data)
    if length == 0:
        return _K2
    if length <= 16:
        if length >= 8:
            mul = (_K2 + length * 2) & _MASK64
            a = (_fetch64(data, 0) + _K2) & _MASK64
            b = _fetch64(data, length - 8)
            c = (_rotate64(b, 37) * mul + a) & _MASK64
            d = ((_rotate64(a, 25) + b) * mul) & _MASK64
            return _hash128_to_64(c, d)
        if length >= 4:
            mul = (_K2 + length * 2) & _MASK64
            a = _fetch32(data, 0)
            return _hash128_to_64(
                (length + (a << 3)) & _MASK64, _fetch32(data, length - 4)
            )
        a = data[0]
        b = data[length >> 1]
        c = data[length - 1]
        y = (a + (b << 8)) & _MASK64
        z = (length + (c << 2)) & _MASK64
        return (_shift_mix((y * _K2) ^ (z * _K0)) * _K2) & _MASK64
    if length <= 32:
        mul = (_K2 + length * 2) & _MASK64
        a = (_fetch64(data, 0) * _K1) & _MASK64
        b = _fetch64(data, 8)
        c = (_fetch64(data, length - 8) * mul) & _MASK64
        d = (_fetch64(data, length - 16) * _K2) & _MASK64
        return _hash128_to_64(
            (_rotate64((a + b) & _MASK64, 43) + _rotate64(c, 30) + d) & _MASK64,
            (a + _rotate64((b + _K2) & _MASK64, 18) + c) & _MASK64,
        )
    # Longer inputs: chunked mixing in the spirit of CityHash64's main loop.
    state_x = (_fetch64(data, 0) * _K2) & _MASK64
    state_y = _fetch64(data, 8)
    for offset in range(16, length - 15, 16):
        chunk_a = _fetch64(data, offset)
        chunk_b = _fetch64(data, offset + 8)
        state_x = _hash128_to_64(
            (state_x + chunk_a) & _MASK64, _rotate64(state_y ^ chunk_b, 42)
        )
        state_y = (_rotate64(state_y + chunk_b, 44) * _K1) & _MASK64
    tail_a = _fetch64(data, length - 16)
    tail_b = _fetch64(data, length - 8)
    return _hash128_to_64(
        (_shift_mix((state_x + tail_a) * _K1) * _K1) & _MASK64,
        (state_y + tail_b) & _MASK64,
    )


def city_hash_string(value: str, bits: int) -> int:
    """Hash a string CityHash-style and widen/fold it to ``bits`` bits."""
    data = value.encode("utf-8")
    digest = city_hash_64(data)
    if bits <= 64:
        return fold(digest, bits)
    combined = digest
    produced = 64
    salt = 1
    while produced < bits:
        combined |= city_hash_64(data + bytes([salt & 0xFF])) << produced
        produced += 64
        salt += 1
    return combined & ((1 << bits) - 1)


@register_hash_function("md5")
class Md5HashFunction(HashFunction):
    """MD5 baseline: the 128-bit digest folded onto the hash size."""

    name = "md5"

    def hash_value(self, value: str) -> int:
        if value == "":
            return 0
        digest = hashlib.md5(value.encode("utf-8")).digest()
        wide = int.from_bytes(digest, "big")
        if self.hash_size <= 128:
            return fold(wide, self.hash_size)
        combined = wide
        produced = 128
        counter = 0
        while produced < self.hash_size:
            counter += 1
            extra = hashlib.md5(
                value.encode("utf-8") + counter.to_bytes(4, "big")
            ).digest()
            combined |= int.from_bytes(extra, "big") << produced
            produced += 128
        return combined & ((1 << self.hash_size) - 1)


@register_hash_function("cityhash")
class CityHashFunction(HashFunction):
    """CityHash-style baseline (see module docstring for the substitution)."""

    name = "cityhash"

    def hash_value(self, value: str) -> int:
        if value == "":
            return 0
        return city_hash_string(value, self.hash_size)


@register_hash_function("simhash")
class SimHashFunction(HashFunction):
    """SimHash baseline over character trigrams (Charikar's construction).

    Each trigram contributes +1/-1 to every bit position according to its
    (MD5-derived) feature hash; the sign of the accumulated weight decides the
    output bit.  The result is near-uniform, hence ~50% 1-bits.
    """

    name = "simhash"

    #: Size of the character n-grams used as features.
    ngram_size: int = 3

    def _features(self, value: str) -> list[str]:
        padded = f" {value} "
        n = self.ngram_size
        if len(padded) <= n:
            return [padded]
        return [padded[i:i + n] for i in range(len(padded) - n + 1)]

    def hash_value(self, value: str) -> int:
        if value == "":
            return 0
        weights = [0] * self.hash_size
        for feature in self._features(value):
            digest = hashlib.md5(feature.encode("utf-8")).digest()
            feature_hash = int.from_bytes(digest, "big")
            produced = 128
            counter = 0
            while produced < self.hash_size:
                counter += 1
                extra = hashlib.md5(
                    feature.encode("utf-8") + counter.to_bytes(4, "big")
                ).digest()
                feature_hash |= int.from_bytes(extra, "big") << produced
                produced += 128
            for bit in range(self.hash_size):
                if (feature_hash >> bit) & 1:
                    weights[bit] += 1
                else:
                    weights[bit] -= 1
        result = 0
        for bit, weight in enumerate(weights):
            if weight > 0:
                result |= 1 << bit
        return result
