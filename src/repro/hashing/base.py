"""Hash-function interface and registry.

Every hash function evaluated in the paper (XASH, bloom filters, hash table,
MD5, Murmur, CityHash, SimHash, and the XASH ablation variants) implements the
same tiny interface: given a cell value it returns an integer whose lowest
``hash_size`` bits are the value's contribution to the row super key.  The
super key of a row is the bitwise OR of the hashes of its cells
(Section 5.1); the same aggregation is applied to the values of a composite
query key.

A string-keyed registry makes it easy for the experiment harness to sweep all
hash functions by name (Tables 2 and 3).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterable

from ..config import MateConfig
from ..exceptions import HashingError


class HashFunction(ABC):
    """A per-cell-value hash used to build super keys."""

    #: Short machine-readable identifier, e.g. ``"xash"`` or ``"bloom"``.
    name: str = "abstract"

    def __init__(self, config: MateConfig):
        self.config = config
        self.hash_size = config.hash_size

    @abstractmethod
    def hash_value(self, value: str) -> int:
        """Return the hash of a single cell value as a ``hash_size``-bit int."""

    def hash_values(self, values: Iterable[str]) -> int:
        """Return the OR-aggregation of the hashes of several values.

        This is the super-key construction of Section 5.1 applied to either a
        full table row or a composite key value combination.
        """
        aggregated = 0
        for value in values:
            aggregated |= self.hash_value(value)
        return aggregated

    def __call__(self, value: str) -> int:
        return self.hash_value(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(hash_size={self.hash_size})"


#: Registry mapping hash-function names to factories.
_REGISTRY: dict[str, Callable[[MateConfig], HashFunction]] = {}


def register_hash_function(
    name: str,
) -> Callable[[Callable[[MateConfig], HashFunction]], Callable[[MateConfig], HashFunction]]:
    """Class decorator registering a hash function under ``name``."""

    def decorator(factory: Callable[[MateConfig], HashFunction]):
        key = name.lower()
        if key in _REGISTRY:
            raise HashingError(f"hash function {name!r} registered twice")
        _REGISTRY[key] = factory
        return factory

    return decorator


def available_hash_functions() -> list[str]:
    """Return the names of all registered hash functions, sorted."""
    return sorted(_REGISTRY)


def create_hash_function(name: str, config: MateConfig) -> HashFunction:
    """Instantiate a registered hash function by name."""
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError as exc:
        raise HashingError(
            f"unknown hash function {name!r}; available: {available_hash_functions()}"
        ) from exc
    return factory(config)
