"""XASH component ablations for the Figure 5 experiment.

Figure 5 measures the precision of MATE's row filter when only subsets of
XASH's features are active:

* ``xash_length``        — only the value-length bit,
* ``xash_rare``          — only the rare-character bits (no position, no
  length, no rotation),
* ``xash_char_loc``      — rare characters + their positions,
* ``xash_char_len_loc``  — rare characters + positions + length, but no
  rotation (the paper's "Char. + len. + loc."),
* ``xash``               — the full hash (registered in
  :mod:`repro.hashing.xash`).

Each variant simply forces the corresponding ablation switches on the shared
:class:`~repro.config.MateConfig` before delegating to the normal XASH code
path, so the bit layout stays identical and only the feature set changes.
"""

from __future__ import annotations

from dataclasses import replace

from ..config import MateConfig
from .base import register_hash_function
from .xash import XashHashFunction


class _AblatedXash(XashHashFunction):
    """Base class that rewrites the ablation switches of the config."""

    #: Overrides applied to the configuration, set by subclasses.
    overrides: dict[str, bool] = {}

    def __init__(self, config: MateConfig):
        super().__init__(replace(config, **self.overrides))


@register_hash_function("xash_length")
class LengthOnlyXash(_AblatedXash):
    """Only the length segment is populated ("Length" bar in Figure 5)."""

    name = "xash_length"
    overrides = {
        "use_rare_characters": False,
        "encode_location": False,
        "encode_length": True,
        "rotation": False,
    }

    def hash_value(self, value: str) -> int:
        if value == "":
            return 0
        length = len(value)
        if self.length_segment_bits <= 0:
            return 0
        return 1 << (self.char_region_bits + length % self.length_segment_bits)


@register_hash_function("xash_rare")
class RareCharactersXash(_AblatedXash):
    """Rare-character bits only ("Rare characters" bar in Figure 5)."""

    name = "xash_rare"
    overrides = {
        "use_rare_characters": True,
        "encode_location": False,
        "encode_length": False,
        "rotation": False,
    }


@register_hash_function("xash_char_loc")
class CharacterLocationXash(_AblatedXash):
    """Rare characters + positions ("Char. + loc." bar in Figure 5)."""

    name = "xash_char_loc"
    overrides = {
        "use_rare_characters": True,
        "encode_location": True,
        "encode_length": False,
        "rotation": False,
    }


@register_hash_function("xash_char_len_loc")
class CharacterLengthLocationXash(_AblatedXash):
    """Everything except rotation ("Char. + len. + loc." bar in Figure 5)."""

    name = "xash_char_len_loc"
    overrides = {
        "use_rare_characters": True,
        "encode_location": True,
        "encode_length": True,
        "rotation": False,
    }


#: The Figure 5 bars in presentation order (the "SCI"/no-filter and "Ideal"
#: bars are produced by the experiment harness, not by a hash function).
FIGURE5_VARIANTS: tuple[str, ...] = (
    "xash_length",
    "xash_rare",
    "xash_char_loc",
    "xash_char_len_loc",
    "xash",
)
