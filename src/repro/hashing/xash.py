"""XASH: the syntactic hash function at the core of MATE (Section 5.2/5.3).

XASH encodes three syntactic features of a cell value into a fixed-size bit
vector with a strictly bounded number of 1-bits:

1. **Least-frequent characters** (Section 5.3.2).  The ``alpha - 1`` rarest
   characters of the value (by a global character-frequency table, ties broken
   lexicographically) each set exactly one bit inside the segment dedicated to
   that character.
2. **Character location** (Section 5.3.3).  Each character segment is
   ``beta`` bits wide; the bit chosen inside the segment encodes in which of
   ``beta`` equal-width regions of the value the character (on average)
   occurs: ``x = ceil(lambda * beta / l_v)`` with ``lambda`` the 1-based
   average position and ``l_v`` the value length.
3. **Value length** (Section 5.3.4).  One bit in a dedicated length segment,
   at index ``l_v mod |a_l|``.

Finally the character region is **rotated** left by the value length
(Section 5.3.5) so that two values can only collide if they agree on both the
rare characters *and* the length.

Bit layout used here (least significant bit = index 0)::

    [ character segments : alphabet_size * beta bits ][ length segment ]
      bits 0 .. char_region_bits-1                      high-order bits

The paper describes the length segment as the *left-most* (most significant)
segment, which is exactly where it lives in this layout; the row filter
exploits that for its short-circuit length pre-check.
"""

from __future__ import annotations

import math
from statistics import mean

from ..config import MateConfig
from ..exceptions import HashingError
from .base import HashFunction, register_hash_function
from .bitvector import rotate_left


def normalize_character(character: str, alphabet: str) -> str:
    """Map an arbitrary character onto the segmentation alphabet.

    Characters already in the alphabet are returned unchanged (after
    lowercasing).  Any other character (punctuation, accented letters,
    CJK, ...) is mapped deterministically onto an alphabet bucket via its
    code point so that every value, regardless of script, receives a hash.
    """
    if len(character) != 1:
        raise HashingError(f"expected a single character, got {character!r}")
    lowered = character.lower()
    if lowered in alphabet:
        return lowered
    return alphabet[ord(lowered) % len(alphabet)]


@register_hash_function("xash")
class XashHashFunction(HashFunction):
    """The XASH hash function (full feature set by default).

    The ablation switches on :class:`~repro.config.MateConfig`
    (``use_rare_characters``, ``encode_location``, ``encode_length``,
    ``rotation``) turn individual features off; they exist to reproduce the
    component study of Figure 5 and default to the full XASH behaviour.
    """

    name = "xash"

    def __init__(self, config: MateConfig):
        super().__init__(config)
        self.alphabet = config.alphabet
        self.beta = config.beta
        self.char_region_bits = config.character_region_bits
        self.length_segment_bits = config.length_segment_bits
        self.characters_per_value = config.characters_per_value
        self._segment_of = {c: i for i, c in enumerate(self.alphabet)}
        frequencies = config.character_frequencies
        default_frequency = max(frequencies.values(), default=1.0) + 1.0
        self._frequency_of = {
            c: frequencies.get(c, default_frequency) for c in self.alphabet
        }

    # ------------------------------------------------------------------
    # Feature extraction
    # ------------------------------------------------------------------
    def normalized_characters(self, value: str) -> list[str]:
        """Return the value's characters mapped onto the alphabet."""
        return [normalize_character(c, self.alphabet) for c in value]

    def select_characters(self, characters: list[str]) -> list[str]:
        """Select the ``alpha - 1`` characters to encode (Section 5.3.2).

        With ``use_rare_characters`` enabled (the default) the distinct
        characters are ranked by global frequency (rarest first), ties broken
        lexicographically; otherwise the first distinct characters in order of
        appearance are used (ablation baseline).
        """
        distinct = sorted(set(characters))
        if not distinct:
            return []
        budget = self.characters_per_value
        if self.config.use_rare_characters:
            ranked = sorted(distinct, key=lambda c: (self._frequency_of[c], c))
        else:
            seen: list[str] = []
            for character in characters:
                if character not in seen:
                    seen.append(character)
            ranked = seen
        return ranked[:budget]

    def character_location_bit(
        self, character: str, characters: list[str]
    ) -> int:
        """Return the 0-based bit offset inside the character's segment.

        Implements ``x = ceil(lambda * beta / l_v)`` from Section 5.3.3 where
        ``lambda`` is the average (1-based) position of the character.  When
        location encoding is disabled the first bit of the segment is used.
        """
        if not self.config.encode_location or self.beta == 1:
            return 0
        positions = [
            index + 1 for index, c in enumerate(characters) if c == character
        ]
        if not positions:
            raise HashingError(
                f"character {character!r} not present in value {characters!r}"
            )
        average_location = mean(positions)
        length = len(characters)
        x = math.ceil(average_location * self.beta / length)
        x = min(max(x, 1), self.beta)
        return x - 1

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------
    def hash_value(self, value: str) -> int:
        """Hash a single cell value into a ``hash_size``-bit integer."""
        if value == "":
            return 0
        characters = self.normalized_characters(value)
        length = len(characters)

        character_region = 0
        for character in self.select_characters(characters):
            segment = self._segment_of[character]
            offset = self.character_location_bit(character, characters)
            character_region |= 1 << (segment * self.beta + offset)

        if self.config.rotation and character_region:
            character_region = rotate_left(
                character_region, length, self.char_region_bits
            )

        result = character_region
        if self.config.encode_length and self.length_segment_bits > 0:
            length_bit = length % self.length_segment_bits
            result |= 1 << (self.char_region_bits + length_bit)
        return result

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests and the row filter)
    # ------------------------------------------------------------------
    def length_segment(self, hashed: int) -> int:
        """Extract the length-segment bits of a hash or super key."""
        return hashed >> self.char_region_bits

    def character_region(self, hashed: int) -> int:
        """Extract the character-region bits of a hash or super key."""
        return hashed & ((1 << self.char_region_bits) - 1)
