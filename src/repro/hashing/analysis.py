"""Analytical collision / false-positive models (Section 6.4 of the paper).

The paper compares XASH against the less-hashing bloom filter analytically:

* the probability that two random words collide under an ``|a|``-bit LHBF is
  ``2 / (|a| * (|a| - 1))``;
* under XASH a collision requires the same ``K`` rare characters in the same
  relative positions *and* (when the length feature is enabled) the same
  length bucket, giving ``1/(17 * 3) * prod_i 1/((37 - i) * beta)``-style
  probabilities.

These closed forms are implemented here, together with a simple saturation
model for OR-aggregated super keys that explains the Table 2/3 behaviour of
the dense (uniform) hashes: once a row's super key has most bits set, any key
hash is covered and the filter stops filtering.  The ablation benchmark uses
these functions to sanity-check the measured trends against theory.
"""

from __future__ import annotations


from ..config import MateConfig
from ..exceptions import HashingError


def lhbf_pairwise_collision_probability(hash_size: int) -> float:
    """Probability that two random values collide under a 2-hash LHBF.

    This is the ``2 / (|a| * (|a| - 1))`` term of Section 6.4.
    """
    if hash_size < 2:
        raise HashingError("hash_size must be at least 2")
    return 2.0 / (hash_size * (hash_size - 1))


def xash_pairwise_collision_probability(
    config: MateConfig, include_length: bool = True
) -> float:
    """Probability that two random values produce identical XASH hashes.

    Follows the Section 6.4 derivation: the second value must draw the same
    ``K = alpha - 1`` (rare) characters out of the alphabet, each in the same
    one of ``beta`` position buckets, and — when the length feature is active —
    fall into the same of the ``|a_l|`` length buckets.
    """
    k = config.characters_per_value
    alphabet_size = config.alphabet_size
    beta = config.beta
    if k >= alphabet_size:
        raise HashingError("cannot encode more characters than the alphabet holds")
    probability = 1.0
    for i in range(k):
        probability *= 1.0 / ((alphabet_size - i) * beta)
    if include_length and config.length_segment_bits > 0:
        probability *= 1.0 / config.length_segment_bits
    return probability


def expected_ones_per_value(hash_name: str, config: MateConfig) -> float:
    """Expected number of 1-bits a single value contributes to a super key."""
    from .base import create_hash_function
    from .bloom import _BloomBase

    hash_function = create_hash_function(hash_name, config)
    if isinstance(hash_function, _BloomBase):
        return float(hash_function.num_hashes)
    if hash_name.startswith("xash"):
        ones = 0.0
        if config.encode_length and hash_name != "xash_rare" and hash_name != "xash_char_loc":
            ones += 1.0
        if hash_name != "xash_length":
            ones += config.characters_per_value
        return ones
    # Uniform hashes set roughly half the bits.
    return config.hash_size / 2.0


def super_key_saturation(
    bits_per_value: float, values_per_row: int, hash_size: int
) -> float:
    """Expected fraction of super-key bits set after OR-aggregating a row.

    Standard occupancy model: each of the ``values_per_row * bits_per_value``
    draws hits a uniformly random bit, so the fill fraction is
    ``1 - (1 - 1/|a|)^(draws)``.
    """
    if hash_size <= 0:
        raise HashingError("hash_size must be positive")
    if bits_per_value < 0 or values_per_row < 0:
        raise HashingError("bits_per_value and values_per_row must be non-negative")
    draws = bits_per_value * values_per_row
    return 1.0 - (1.0 - 1.0 / hash_size) ** draws


def expected_false_positive_rate(
    bits_per_value: float,
    values_per_row: int,
    key_size: int,
    hash_size: int,
) -> float:
    """Probability that a non-matching row's super key covers a random key.

    The key contributes ``key_size * bits_per_value`` (not necessarily
    distinct) bits; each must already be set in the row's super key, whose
    fill fraction comes from :func:`super_key_saturation`.
    """
    saturation = super_key_saturation(bits_per_value, values_per_row, hash_size)
    key_bits = max(key_size * bits_per_value, 0.0)
    return saturation ** key_bits


def compare_filters_theoretically(
    config: MateConfig, values_per_row: int, key_size: int
) -> dict[str, float]:
    """Return the theoretical FP rate of each filter family for a row shape.

    Used by the ablation/analysis example to show *why* the dense hashes fail:
    their per-value bit count saturates the super key long before the sparse
    XASH encoding does.
    """
    results: dict[str, float] = {}
    for name in ("xash", "bloom", "lhbf", "hashtable", "md5"):
        bits = expected_ones_per_value(name, config)
        results[name] = expected_false_positive_rate(
            bits, values_per_row, key_size, config.hash_size
        )
    return results


def break_even_row_width(config: MateConfig, key_size: int = 2) -> int:
    """Smallest row width at which XASH's theoretical FP rate beats the bloom filter.

    Scans row widths from 1 to 200; returns 201 if the bloom filter stays
    ahead throughout (which happens when its ``V`` parameter matches the row
    width exactly).
    """
    for width in range(1, 201):
        rates = compare_filters_theoretically(config, width, key_size)
        if rates["xash"] <= rates["bloom"]:
            return width
    return 201


def theoretical_summary(config: MateConfig) -> dict[str, float]:
    """Bundle the §6.4 quantities for reporting (used by the docs example)."""
    return {
        "alpha": float(config.alpha),
        "beta": float(config.beta),
        "length_segment_bits": float(config.length_segment_bits),
        "xash_collision_probability": xash_pairwise_collision_probability(config),
        "lhbf_collision_probability": lhbf_pairwise_collision_probability(
            config.hash_size
        ),
    }
