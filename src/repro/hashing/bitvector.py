"""Fixed-width bit-vector helpers.

Super keys and per-value hashes are represented as plain Python integers
interpreted as bit vectors of a fixed width (the configured hash size).  This
module collects the small bit-manipulation primitives the rest of the hashing
package builds on:

* masking to a width,
* circular rotation inside an arbitrary-width region (Section 5.3.5),
* population count,
* the subsumption check used by the row filter (Section 6.3): a query super
  key ``q`` is *covered* by a row super key ``r`` iff ``q OR r == r``.
"""

from __future__ import annotations

from ..exceptions import HashingError


def mask(width: int) -> int:
    """Return a bit mask with the lowest ``width`` bits set.

    >>> bin(mask(4))
    '0b1111'
    """
    if width < 0:
        raise HashingError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def truncate(value: int, width: int) -> int:
    """Truncate ``value`` to its lowest ``width`` bits."""
    return value & mask(width)


def popcount(value: int) -> int:
    """Return the number of set bits in ``value``.

    >>> popcount(0b1011)
    3
    """
    if value < 0:
        raise HashingError("popcount is only defined for non-negative integers")
    return value.bit_count()


def set_bit(value: int, index: int) -> int:
    """Return ``value`` with bit ``index`` (0 = least significant) set."""
    if index < 0:
        raise HashingError(f"bit index must be non-negative, got {index}")
    return value | (1 << index)


def get_bit(value: int, index: int) -> int:
    """Return bit ``index`` of ``value`` (0 or 1)."""
    if index < 0:
        raise HashingError(f"bit index must be non-negative, got {index}")
    return (value >> index) & 1


def rotate_left(value: int, shift: int, width: int) -> int:
    """Circularly rotate the lowest ``width`` bits of ``value`` left by ``shift``.

    Bits that fall off the most-significant end re-enter at the
    least-significant end, exactly as described for the XASH rotation step
    (Section 5.3.5).  Bits above ``width`` must be zero.

    >>> bin(rotate_left(0b0110, 1, 4))
    '0b1100'
    >>> bin(rotate_left(0b1100, 1, 4))
    '0b1001'
    """
    if width <= 0:
        raise HashingError(f"width must be positive, got {width}")
    if value >> width:
        raise HashingError(
            f"value {value:#x} does not fit into {width} bits"
        )
    shift %= width
    if shift == 0:
        return value
    region = mask(width)
    return ((value << shift) | (value >> (width - shift))) & region


def rotate_right(value: int, shift: int, width: int) -> int:
    """Circularly rotate the lowest ``width`` bits of ``value`` right by ``shift``."""
    if width <= 0:
        raise HashingError(f"width must be positive, got {width}")
    shift %= width
    return rotate_left(value, width - shift, width) if shift else value


def subsumes(superset: int, subset: int) -> bool:
    """Return ``True`` iff every set bit of ``subset`` is also set in ``superset``.

    This is the row-filtering predicate of Section 6.3: a candidate row with
    super key ``superset`` may contain the query key whose super key is
    ``subset`` iff ``subset | superset == superset``.

    >>> subsumes(0b1110, 0b0110)
    True
    >>> subsumes(0b1110, 0b0001)
    False
    """
    return subset & ~superset == 0


def to_bit_string(value: int, width: int) -> str:
    """Render ``value`` as a ``width``-character binary string (MSB first)."""
    if value >> width:
        raise HashingError(f"value {value:#x} does not fit into {width} bits")
    return format(value, f"0{width}b")


def from_bit_string(bits: str) -> int:
    """Parse a binary string (MSB first) into an integer."""
    if bits == "":
        return 0
    if any(c not in "01" for c in bits):
        raise HashingError(f"invalid bit string: {bits!r}")
    return int(bits, 2)


def fold(value: int, width: int) -> int:
    """Fold an arbitrarily long integer into ``width`` bits by XOR-ing chunks.

    Used to shrink digests of standard hash functions (MD5, CityHash, ...)
    onto the configured hash size without discarding entropy.
    """
    if width <= 0:
        raise HashingError(f"width must be positive, got {width}")
    folded = 0
    region = mask(width)
    while value:
        folded ^= value & region
        value >>= width
    return folded
