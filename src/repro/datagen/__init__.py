"""Synthetic corpora, query tables, and Table 1 workloads."""

from .corpora import (
    COLUMN_FACTORIES,
    CorpusProfile,
    KEYABLE_COLUMN_TYPES,
    OPEN_DATA_PROFILE,
    PROFILES,
    SCHOOL_PROFILE,
    SyntheticCorpusGenerator,
    WEB_TABLE_PROFILE,
    generate_corpus,
)
from .planting import PlantedTable, plant_distractor_table, plant_joinable_table
from .queries import (
    generate_airline_query,
    generate_entity_query,
    generate_movie_query,
    generate_school_query,
    generate_sensor_query,
)
from .workload import (
    FIGURE4_WORKLOADS,
    QueryWorkload,
    TABLE1_SPECS,
    TABLE2_WORKLOADS,
    WorkloadSpec,
    build_all_table1_workloads,
    build_workload,
)

__all__ = [
    "COLUMN_FACTORIES",
    "CorpusProfile",
    "FIGURE4_WORKLOADS",
    "KEYABLE_COLUMN_TYPES",
    "OPEN_DATA_PROFILE",
    "PROFILES",
    "PlantedTable",
    "QueryWorkload",
    "SCHOOL_PROFILE",
    "SyntheticCorpusGenerator",
    "TABLE1_SPECS",
    "TABLE2_WORKLOADS",
    "WEB_TABLE_PROFILE",
    "WorkloadSpec",
    "build_all_table1_workloads",
    "build_workload",
    "generate_airline_query",
    "generate_corpus",
    "generate_entity_query",
    "generate_movie_query",
    "generate_school_query",
    "generate_sensor_query",
    "plant_distractor_table",
    "plant_joinable_table",
]
