"""Planting joinable and distractor tables into a synthetic corpus.

Purely random synthetic tables almost never share full composite keys with a
query table, so — like the paper, which extends selected tables "with joinable
tables" for the School experiment — the workload builder *plants* candidate
tables with controlled properties:

* **joinable tables**: contain a chosen number of the query's composite-key
  tuples, with the key values spread over renamed, permuted columns (as in the
  running example where ``F. Name``/``L. Name``/``Country`` map onto
  ``Vorname``/``Nachname``/``Land``), padded with extra columns and noise
  rows;
* **partial-match (distractor) tables**: contain many rows that share *some*
  key values with the query but never a full combination — exactly the
  false-positive rows that an n-ary-unaware system retrieves and MATE's super
  key is designed to prune.

The planting records double as approximate ground truth for the experiments;
exact ground truth is always recomputable with
:func:`repro.core.joinability.exact_joinability`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..datamodel import QueryTable, TableCorpus
from . import vocab
from .corpora import COLUMN_FACTORIES

#: Column-name translations used for planted tables, echoing the paper's
#: German candidate table in Figure 1.
_TRANSLATED_NAMES: dict[str, str] = {
    "first_name": "vorname",
    "last_name": "nachname",
    "country": "land",
    "city": "stadt",
    "occupation": "besetzung",
    "category": "kategorie",
    "date": "datum",
    "timestamp": "zeitstempel",
}


@dataclass(frozen=True)
class PlantedTable:
    """Record of one planted candidate table."""

    table_id: int
    #: Number of distinct query key tuples embedded in the table.
    planted_joinability: int
    #: Whether the table only contains partial (single-column) matches.
    is_distractor: bool


def _base_column_name(column: str) -> str:
    """Strip the disambiguating suffix from a generated column name."""
    head, _, tail = column.rpartition("_")
    if tail.isdigit() and head:
        return head
    return column


def _translated_column_name(column: str, position: int) -> str:
    base = _base_column_name(column)
    return _TRANSLATED_NAMES.get(base, f"spalte_{position}")


def _noise_value(rng: random.Random, column: str) -> str:
    """Draw a non-matching cell value for a partial/noise row.

    Most of the time the value comes from an arbitrary domain (a row of a web
    table that happens to contain the probed value has unrelated content in
    its other columns); occasionally it is a same-domain near-miss (another
    city next to the queried city), which is the harder case for syntactic
    filtering.
    """
    base = _base_column_name(column)
    factory = COLUMN_FACTORIES.get(base)
    if factory is not None and rng.random() < 0.3:
        return factory(rng)
    factory = COLUMN_FACTORIES[rng.choice(list(COLUMN_FACTORIES))]
    return factory(rng)


def _random_extra_columns(rng: random.Random) -> int:
    """Draw the number of extra (non-key) columns for a planted table.

    Real corpora have a long tail of very wide tables; roughly a third of the
    planted candidates are made wide (15-30 extra columns) because those are
    the rows on which OR-aggregated super keys saturate and hash functions
    with many 1-bits per value start passing false positives (Section 7.3).
    """
    if rng.random() < 0.35:
        return rng.randint(15, 30)
    return rng.randint(2, 12)


def plant_joinable_table(
    corpus: TableCorpus,
    query: QueryTable,
    rng: random.Random,
    joinability: int,
    extra_columns: int | None = None,
    noise_rows: int = 10,
    partial_rows: int = 10,
    name_prefix: str = "planted",
) -> PlantedTable:
    """Create one candidate table containing ``joinability`` query key tuples.

    The key columns are renamed and their order permuted, ``extra_columns``
    unrelated columns are appended (a random 2-12 when not given, mirroring
    the wide-table tail of real corpora), ``noise_rows`` completely random
    rows and ``partial_rows`` rows sharing only a single key value are added,
    and all rows are shuffled.
    """
    if extra_columns is None:
        extra_columns = _random_extra_columns(rng)
    key_tuples = sorted(query.key_tuples())
    joinability = max(0, min(joinability, len(key_tuples)))
    selected = rng.sample(key_tuples, joinability) if joinability else []

    key_size = query.key_size
    column_order = list(range(key_size))
    rng.shuffle(column_order)

    key_column_names: list[str] = []
    for position, original in enumerate(column_order):
        name = _translated_column_name(query.key_columns[original], position)
        while name in key_column_names:
            name = f"{name}_{position + 1}"
        key_column_names.append(name)
    extra_column_names = [f"extra_{i + 1}" for i in range(extra_columns)]
    columns = key_column_names + extra_column_names

    # Each extra column gets a value domain of its own (realistic tables mix
    # names, places, dates, numbers, ...), which is what stresses the
    # OR-aggregated super keys.
    extra_types = [rng.choice(list(COLUMN_FACTORIES)) for _ in extra_column_names]

    def extra_part() -> list[str]:
        return [COLUMN_FACTORIES[column_type](rng) for column_type in extra_types]

    key_tuple_set = set(key_tuples)

    def is_accidental_match(key_part: list[str]) -> bool:
        """Whether a noise/partial row accidentally forms a full key match."""
        original_order = [""] * key_size
        for position, original in enumerate(column_order):
            original_order[original] = key_part[position]
        return tuple(original_order) in key_tuple_set

    rows: list[list[str]] = []
    for key_tuple in selected:
        key_part = [key_tuple[original] for original in column_order]
        rows.append(key_part + extra_part())

    # Partial rows: copy one key value from a random tuple, randomise the rest.
    # Accidental full matches are re-drawn so the planted joinability stays
    # exact (it doubles as ground truth for the experiments).
    for _ in range(partial_rows):
        if not key_tuples:
            break
        source = rng.choice(key_tuples)
        keep_position = rng.randrange(key_size)
        for _attempt in range(10):
            key_part = []
            for position, original in enumerate(column_order):
                if original == keep_position:
                    key_part.append(source[original])
                else:
                    key_part.append(_noise_value(rng, query.key_columns[original]))
            if not is_accidental_match(key_part):
                break
        rows.append(key_part + extra_part())

    # Fully random noise rows.
    for _ in range(noise_rows):
        for _attempt in range(10):
            key_part = [
                _noise_value(rng, query.key_columns[original])
                for original in column_order
            ]
            if not is_accidental_match(key_part):
                break
        rows.append(key_part + extra_part())

    rng.shuffle(rows)
    table = corpus.create_table(
        name=f"{name_prefix}_{corpus.next_table_id()}",
        columns=columns,
        rows=rows,
    )
    return PlantedTable(
        table_id=table.table_id,
        planted_joinability=len(selected),
        is_distractor=False,
    )


def plant_distractor_table(
    corpus: TableCorpus,
    query: QueryTable,
    rng: random.Random,
    matching_rows: int = 20,
    noise_rows: int = 10,
    extra_columns: int | None = None,
    name_prefix: str = "distractor",
) -> PlantedTable:
    """Create a table sharing single key values with the query but no full key.

    Every "matching" row copies exactly one value from a random query key
    tuple; these rows are retrieved by a single-column probe (they are FP rows
    for n-ary discovery) but never contribute to composite joinability.
    """
    if extra_columns is None:
        extra_columns = _random_extra_columns(rng)
    key_tuples = sorted(query.key_tuples())
    key_size = query.key_size
    columns = [f"col_{i + 1}" for i in range(key_size + extra_columns)]

    key_tuple_set = set(key_tuples)
    rows: list[list[str]] = []
    for _ in range(matching_rows):
        if not key_tuples:
            break
        source = rng.choice(key_tuples)
        keep_position = rng.randrange(key_size)
        for _attempt in range(10):
            row = []
            for position in range(key_size):
                if position == keep_position:
                    row.append(source[position])
                else:
                    row.append(_noise_value(rng, query.key_columns[position]))
            if tuple(row) not in key_tuple_set:
                break
        row.extend(_noise_value(rng, rng.choice(query.key_columns)) for _ in range(extra_columns))
        rows.append(row)
    for _ in range(noise_rows):
        rows.append([vocab.random_word(rng) for _ in columns])

    rng.shuffle(rows)
    table = corpus.create_table(
        name=f"{name_prefix}_{corpus.next_table_id()}",
        columns=columns,
        rows=rows,
    )
    return PlantedTable(
        table_id=table.table_id, planted_joinability=0, is_distractor=True
    )
