"""Vocabularies and value factories for the synthetic corpora.

The paper evaluates on web tables and open-data tables whose cells are short
natural-language strings (names, places, organisations), codes, dates and
numbers.  The generators in this package draw from the vocabularies below so
that synthetic corpora exhibit the same properties that matter for MATE:

* heavy value re-use across tables (the source of false-positive rows),
* skewed (power-law-like) posting-list lengths (Section 7.5.4 relies on it),
* realistic character distributions and value lengths (XASH's features).

All sampling goes through an explicit :class:`random.Random` instance so the
corpora are reproducible from a seed.
"""

from __future__ import annotations

import random
import string
from typing import Sequence

FIRST_NAMES: tuple[str, ...] = (
    "muhammad", "ansel", "helmut", "gretchen", "adam", "maria", "jose", "wei",
    "anna", "peter", "fatima", "ivan", "olga", "carlos", "sofia", "david",
    "laura", "ahmed", "yuki", "chen", "emma", "lucas", "mia", "noah", "lena",
    "omar", "nina", "erik", "tanja", "pierre", "claire", "diego", "paula",
    "marko", "elena", "johan", "ingrid", "rahul", "priya", "samuel", "ruth",
    "george", "alice", "frank", "karin", "tom", "julia", "max", "eva", "liam",
)

LAST_NAMES: tuple[str, ...] = (
    "lee", "adams", "newton", "sandler", "ali", "smith", "mueller", "schmidt",
    "garcia", "martinez", "kim", "wang", "singh", "kumar", "ivanov", "petrov",
    "rossi", "silva", "santos", "haddad", "tanaka", "sato", "nguyen", "tran",
    "kowalski", "novak", "jensen", "hansen", "larsen", "berg", "lindberg",
    "dubois", "moreau", "fischer", "weber", "wagner", "becker", "hoffmann",
    "keller", "brown", "jones", "miller", "davis", "wilson", "taylor", "clark",
    "lewis", "walker", "young", "king",
)

COUNTRIES: tuple[str, ...] = (
    "us", "uk", "germany", "france", "spain", "italy", "poland", "sweden",
    "norway", "denmark", "netherlands", "belgium", "austria", "switzerland",
    "portugal", "greece", "turkey", "egypt", "india", "china", "japan",
    "brazil", "argentina", "mexico", "canada", "australia", "russia",
    "finland", "ireland", "czechia",
)

CITIES: tuple[str, ...] = (
    "berlin", "hannover", "dresden", "hamburg", "munich", "cologne", "paris",
    "london", "madrid", "rome", "vienna", "zurich", "amsterdam", "brussels",
    "warsaw", "prague", "stockholm", "oslo", "copenhagen", "helsinki",
    "lisbon", "athens", "istanbul", "cairo", "delhi", "beijing", "tokyo",
    "brooklyn", "cambridge", "bay ridge", "boston", "chicago", "seattle",
    "toronto", "sydney", "moscow", "dublin", "porto", "lyon", "milan",
)

OCCUPATIONS: tuple[str, ...] = (
    "photographer", "dancer", "boxer", "birder", "artist", "actor", "teacher",
    "engineer", "doctor", "nurse", "pilot", "chef", "writer", "painter",
    "singer", "farmer", "lawyer", "judge", "scientist", "librarian",
    "architect", "plumber", "electrician", "carpenter", "journalist",
)

WEATHER_CONDITIONS: tuple[str, ...] = (
    "sunny", "rainy", "cloudy", "foggy", "windy", "snowy", "stormy", "clear",
    "hazy", "drizzle",
)

EVENT_TYPES: tuple[str, ...] = (
    "marathon", "concert", "festival", "parade", "roadwork", "strike",
    "football match", "fireworks", "exhibition", "street market",
)

MOVIE_WORDS: tuple[str, ...] = (
    "shadow", "river", "night", "empire", "garden", "storm", "silent",
    "broken", "golden", "last", "first", "lost", "hidden", "crimson", "winter",
    "summer", "echo", "dream", "stone", "fire", "glass", "paper", "iron",
    "velvet", "electric",
)

AIRLINE_WORDS: tuple[str, ...] = (
    "northern", "pacific", "atlantic", "royal", "global", "swift", "polar",
    "sun", "star", "eagle", "falcon", "horizon", "summit", "delta", "alpine",
)

SCHOOL_PROGRAMS: tuple[str, ...] = (
    "magnet", "charter", "bilingual", "montessori", "stem", "arts",
    "vocational", "gifted", "special education", "international",
)

STREET_WORDS: tuple[str, ...] = (
    "main", "park", "oak", "lake", "hill", "church", "station", "market",
    "bridge", "garden", "mill", "spring", "forest", "river", "school",
)

GENERIC_WORDS: tuple[str, ...] = (
    "alpha", "beta", "gamma", "delta", "omega", "north", "south", "east",
    "west", "central", "upper", "lower", "new", "old", "grand", "little",
    "white", "black", "green", "blue", "red", "silver", "golden", "royal",
    "union", "liberty", "victory", "harmony", "summit", "valley",
)


def random_word(rng: random.Random, min_length: int = 3, max_length: int = 10) -> str:
    """Generate a pronounceable pseudo-word (alternating consonants/vowels)."""
    vowels = "aeiou"
    consonants = "".join(c for c in string.ascii_lowercase if c not in vowels)
    length = rng.randint(min_length, max_length)
    characters = []
    use_vowel = rng.random() < 0.5
    for _ in range(length):
        pool = vowels if use_vowel else consonants
        characters.append(rng.choice(pool))
        use_vowel = not use_vowel
    return "".join(characters)


def random_date(rng: random.Random, start_year: int = 2015, end_year: int = 2022) -> str:
    """Generate an ISO-like date string (uniform over plausible dates)."""
    year = rng.randint(start_year, end_year)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return f"{year:04d}-{month:02d}-{day:02d}"


def random_timestamp(rng: random.Random) -> str:
    """Generate a date-plus-hour timestamp (as in the air-quality example)."""
    return f"{random_date(rng)} {rng.randint(0, 23):02d}:00"


def random_number(rng: random.Random, low: int = 0, high: int = 100_000) -> str:
    """Generate an integer-valued cell (identifiers, measurements, counts)."""
    return str(rng.randint(low, high))


def random_code(rng: random.Random, length: int = 6) -> str:
    """Generate an alphanumeric code such as a licence plate or product id."""
    alphabet = string.ascii_lowercase + string.digits
    return "".join(rng.choice(alphabet) for _ in range(length))


def full_name(rng: random.Random) -> str:
    """Generate a "first last" person name."""
    return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"


def movie_title(rng: random.Random) -> str:
    """Generate a two/three word movie-like title."""
    words = [rng.choice(MOVIE_WORDS) for _ in range(rng.randint(2, 3))]
    return " ".join(words)


def airline_name(rng: random.Random) -> str:
    """Generate an airline-like organisation name."""
    return f"{rng.choice(AIRLINE_WORDS)} {rng.choice(('air', 'airways', 'airlines', 'wings'))}"


def school_name(rng: random.Random) -> str:
    """Generate a school-like organisation name."""
    return f"{rng.choice(CITIES)} {rng.choice(STREET_WORDS)} school"


def _build_shared_tokens(count: int = 2000, seed: int = 42) -> tuple[str, ...]:
    """Build the shared token pool used by "token"-typed columns.

    The pool is deterministic (fixed seed) so that corpora and query tables
    generated in separate calls still share values — which is what creates
    posting-list hits across tables.
    """
    rng = random.Random(seed)
    tokens: set[str] = set()
    while len(tokens) < count:
        tokens.add(random_word(rng, 4, 12))
    return tuple(sorted(tokens))


#: A large shared pool of pseudo-words with no domain semantics.  Columns
#: drawing from this pool (with a Zipf skew) have per-value posting-list
#: lengths that follow the power-law distribution described in Section 7.5.4,
#: independent of the column's cardinality.
SHARED_TOKENS: tuple[str, ...] = _build_shared_tokens()


def zipf_choice(rng: random.Random, values: Sequence[str], skew: float = 1.2) -> str:
    """Draw a value with a power-law (Zipf-like) distribution over ranks.

    The first elements of ``values`` are drawn far more often than the tail,
    which produces the skewed posting-list length distribution the paper
    observes on real corpora (Section 7.5.4).
    """
    if not values:
        raise ValueError("cannot sample from an empty sequence")
    weights = [1.0 / (rank ** skew) for rank in range(1, len(values) + 1)]
    return rng.choices(list(values), weights=weights, k=1)[0]
