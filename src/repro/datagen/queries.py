"""Query-table generation.

The paper draws query tables from the corpora themselves (random tables with
random key columns, grouped by cardinality, Table 1) plus two "real" workloads
(Kaggle machine-learning datasets and the School corpus).  This module builds
synthetic equivalents of all of them:

* :func:`generate_entity_query` — a generic entity table (people/places) with
  a composite key of configurable size and cardinality; used for the WT/OD
  query groups.
* :func:`generate_movie_query` — a Kaggle-IMDB-like query table with the
  <director name, movie title> key from Section 6.1/7.3.
* :func:`generate_airline_query` — a Kaggle-Airline-like query table with the
  <airline name, country> key from Section 7.3.
* :func:`generate_school_query` — a wide School-corpus-like query table with
  the <program type, school name> key from Section 7.1.
* :func:`generate_sensor_query` — the air-quality motivating example from the
  introduction: a sensor table keyed on <timestamp, location>.
"""

from __future__ import annotations

import random

from ..datamodel import QueryTable, Table
from . import vocab
from .corpora import COLUMN_FACTORIES, KEYABLE_COLUMN_TYPES


def _unique_key_tuples(
    rng: random.Random, column_types: list[str], cardinality: int
) -> list[tuple[str, ...]]:
    """Draw ``cardinality`` distinct key tuples for the given column types."""
    tuples: set[tuple[str, ...]] = set()
    attempts = 0
    max_attempts = cardinality * 50 + 100
    while len(tuples) < cardinality and attempts < max_attempts:
        attempts += 1
        tuples.add(
            tuple(COLUMN_FACTORIES[column_type](rng) for column_type in column_types)
        )
    # Top up with guaranteed-unique synthetic values if the vocabulary was too
    # small for the requested cardinality.
    counter = 0
    while len(tuples) < cardinality:
        counter += 1
        tuples.add(
            tuple(
                f"{vocab.random_word(rng)}{counter}" for _ in column_types
            )
        )
    return sorted(tuples)


def generate_entity_query(
    table_id: int,
    rng: random.Random,
    cardinality: int = 20,
    key_size: int = 2,
    extra_columns: int = 2,
    name: str = "query",
) -> QueryTable:
    """Generate a generic query table with a ``key_size``-column composite key."""
    key_size = max(1, key_size)
    key_types = rng.sample(
        KEYABLE_COLUMN_TYPES, k=min(key_size, len(KEYABLE_COLUMN_TYPES))
    )
    while len(key_types) < key_size:
        key_types.append(rng.choice(KEYABLE_COLUMN_TYPES))

    key_columns = []
    counts: dict[str, int] = {}
    for key_type in key_types:
        seen = counts.get(key_type, 0)
        key_columns.append(key_type if seen == 0 else f"{key_type}_{seen + 1}")
        counts[key_type] = seen + 1

    extra_names = [f"measure_{i + 1}" for i in range(extra_columns)]
    columns = key_columns + extra_names

    key_tuples = _unique_key_tuples(rng, key_types, cardinality)
    rows = [
        list(key_tuple) + [vocab.random_number(rng) for _ in extra_names]
        for key_tuple in key_tuples
    ]
    table = Table(table_id=table_id, name=name, columns=columns, rows=rows)
    return QueryTable(table=table, key_columns=key_columns)


def generate_movie_query(
    table_id: int, rng: random.Random, cardinality: int = 100, name: str = "kaggle_movies"
) -> QueryTable:
    """Kaggle-IMDB-like query: key = <director name, movie title>."""
    pairs: set[tuple[str, str]] = set()
    while len(pairs) < cardinality:
        pairs.add((vocab.full_name(rng), vocab.movie_title(rng)))
    rows = [
        [director, title, str(rng.randint(1950, 2021)), str(rng.randint(1, 10))]
        for director, title in sorted(pairs)
    ]
    table = Table(
        table_id=table_id,
        name=name,
        columns=["director name", "movie title", "title year", "imdb score"],
        rows=rows,
    )
    return QueryTable(table=table, key_columns=["director name", "movie title"])


def generate_airline_query(
    table_id: int, rng: random.Random, cardinality: int = 60, name: str = "kaggle_airlines"
) -> QueryTable:
    """Kaggle-Airline-like query: key = <airline name, country>."""
    pairs: set[tuple[str, str]] = set()
    while len(pairs) < cardinality:
        pairs.add((vocab.airline_name(rng), rng.choice(vocab.COUNTRIES)))
    rows = [
        [airline, country, str(rng.randint(1, 500)), rng.choice(("yes", "no"))]
        for airline, country in sorted(pairs)
    ]
    table = Table(
        table_id=table_id,
        name=name,
        columns=["airline name", "country", "fleet size", "active"],
        rows=rows,
    )
    return QueryTable(table=table, key_columns=["airline name", "country"])


def generate_school_query(
    table_id: int,
    rng: random.Random,
    cardinality: int = 150,
    extra_columns: int = 20,
    name: str = "school_query",
) -> QueryTable:
    """School-corpus-like query: key = <program type, school name>, very wide."""
    pairs: set[tuple[str, str]] = set()
    while len(pairs) < cardinality:
        pairs.add((rng.choice(vocab.SCHOOL_PROGRAMS), vocab.school_name(rng)))
    extra_names = [f"metric_{i + 1}" for i in range(extra_columns)]
    rows = [
        [program, school] + [vocab.random_number(rng) for _ in extra_names]
        for program, school in sorted(pairs)
    ]
    table = Table(
        table_id=table_id,
        name=name,
        columns=["program type", "school name"] + extra_names,
        rows=rows,
    )
    return QueryTable(table=table, key_columns=["program type", "school name"])


def generate_sensor_query(
    table_id: int, rng: random.Random, cardinality: int = 50, name: str = "air_quality"
) -> QueryTable:
    """The introduction's air-quality sensor table: key = <timestamp, location>."""
    pairs: set[tuple[str, str]] = set()
    while len(pairs) < cardinality:
        pairs.add((vocab.random_timestamp(rng), rng.choice(vocab.CITIES)))
    rows = [
        [timestamp, location, f"{rng.uniform(1.0, 120.0):.1f}"]
        for timestamp, location in sorted(pairs)
    ]
    table = Table(
        table_id=table_id,
        name=name,
        columns=["timestamp", "location", "pollution ratio"],
        rows=rows,
    )
    return QueryTable(table=table, key_columns=["timestamp", "location"])
