"""Workload construction: the Table 1 query sets at laptop scale.

Table 1 of the paper defines eight query-table collections (WT 10/100/1000,
OD 100/1k/10k, Kaggle, School) characterised by the corpus they run against,
their average cardinality, and their average joinability.  This module builds
scaled-down but shape-preserving equivalents:

* the corpus is generated from the matching
  :class:`~repro.datagen.corpora.CorpusProfile`,
* query tables are generated with the target cardinality,
* joinable and distractor tables are planted so that (a) every query has a
  non-trivial ground-truth top-k and (b) single-column probes retrieve many
  false-positive rows.

Cardinalities above a few thousand are scaled down (see
:data:`TABLE1_SPECS`); the scaling factors are reported by the Table 1
experiment so EXPERIMENTS.md can show paper-vs-built numbers side by side.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from ..datamodel import QueryTable, TableCorpus
from .corpora import (
    CorpusProfile,
    OPEN_DATA_PROFILE,
    SCHOOL_PROFILE,
    SyntheticCorpusGenerator,
    WEB_TABLE_PROFILE,
)
from .planting import PlantedTable, plant_distractor_table, plant_joinable_table
from .queries import (
    generate_airline_query,
    generate_entity_query,
    generate_movie_query,
    generate_school_query,
)


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one query-set workload (one row of Table 1)."""

    name: str
    corpus_profile: CorpusProfile
    #: Number of query tables to generate.
    num_queries: int
    #: Target cardinality (number of distinct key tuples) of each query.
    cardinality: int
    #: Number of columns in the composite key.
    key_size: int
    #: Joinable tables planted per query (their joinability is spread between
    #: 1 and the query cardinality).
    joinable_tables_per_query: int = 4
    #: Distractor tables planted per query (single-column matches only).
    distractor_tables_per_query: int = 4
    #: Scale factor applied to the corpus profile's table count.
    corpus_scale: float = 1.0
    #: The cardinality the paper reports for this query set (for reporting).
    paper_cardinality: float = 0.0
    #: The average joinability the paper reports (for reporting).
    paper_joinability: float = 0.0
    #: Optional specialised query generator (Kaggle / School sets).
    query_kind: str = "entity"

    def scaled(self, scale: float) -> "WorkloadSpec":
        """Scale the corpus and query count (used by fast test configurations)."""
        return replace(
            self,
            num_queries=max(1, int(self.num_queries * scale)),
            corpus_scale=self.corpus_scale * scale,
        )


@dataclass
class QueryWorkload:
    """A generated workload: corpus + query tables + planting records."""

    name: str
    spec: WorkloadSpec
    corpus: TableCorpus
    queries: list[QueryTable]
    planted: dict[int, list[PlantedTable]] = field(default_factory=dict)

    def planted_for(self, query_index: int) -> list[PlantedTable]:
        """Planting records of the ``query_index``-th query."""
        return self.planted.get(query_index, [])

    def average_cardinality(self) -> float:
        """Average number of distinct key tuples across the queries."""
        if not self.queries:
            return 0.0
        return sum(len(q.key_tuples()) for q in self.queries) / len(self.queries)

    def average_planted_joinability(self) -> float:
        """Average total planted joinability per query (Table 1's "Joinability")."""
        if not self.queries:
            return 0.0
        totals = []
        for index in range(len(self.queries)):
            totals.append(
                sum(p.planted_joinability for p in self.planted_for(index))
            )
        return sum(totals) / len(totals)


#: Laptop-scale equivalents of the Table 1 query sets.  Cardinalities above
#: ~300 are scaled down to keep pure-Python runtimes reasonable; the paper's
#: numbers are retained in ``paper_cardinality`` / ``paper_joinability``.
TABLE1_SPECS: dict[str, WorkloadSpec] = {
    "WT_10": WorkloadSpec(
        name="WT_10", corpus_profile=WEB_TABLE_PROFILE, num_queries=5,
        cardinality=4, key_size=2, paper_cardinality=3, paper_joinability=4,
    ),
    "WT_100": WorkloadSpec(
        name="WT_100", corpus_profile=WEB_TABLE_PROFILE, num_queries=5,
        cardinality=16, key_size=2, paper_cardinality=16, paper_joinability=52,
    ),
    "WT_1000": WorkloadSpec(
        name="WT_1000", corpus_profile=WEB_TABLE_PROFILE, num_queries=5,
        cardinality=100, key_size=3, paper_cardinality=151, paper_joinability=99,
    ),
    "OD_100": WorkloadSpec(
        name="OD_100", corpus_profile=OPEN_DATA_PROFILE, num_queries=5,
        cardinality=15, key_size=2, paper_cardinality=15, paper_joinability=40,
    ),
    "OD_1000": WorkloadSpec(
        name="OD_1000", corpus_profile=OPEN_DATA_PROFILE, num_queries=5,
        cardinality=120, key_size=2, joinable_tables_per_query=5,
        paper_cardinality=263, paper_joinability=1434,
    ),
    "OD_10000": WorkloadSpec(
        name="OD_10000", corpus_profile=OPEN_DATA_PROFILE, num_queries=5,
        cardinality=250, key_size=3, joinable_tables_per_query=6,
        paper_cardinality=2455, paper_joinability=8187,
    ),
    "Kaggle": WorkloadSpec(
        name="Kaggle", corpus_profile=WEB_TABLE_PROFILE, num_queries=4,
        cardinality=200, key_size=2, joinable_tables_per_query=5,
        paper_cardinality=34400, paper_joinability=2318, query_kind="kaggle",
    ),
    "School": WorkloadSpec(
        name="School", corpus_profile=SCHOOL_PROFILE, num_queries=3,
        cardinality=150, key_size=2, joinable_tables_per_query=5,
        paper_cardinality=3100, paper_joinability=15130, query_kind="school",
    ),
}

#: The six query sets shown in Figure 4 (systems comparison).
FIGURE4_WORKLOADS: tuple[str, ...] = (
    "WT_10", "WT_100", "WT_1000", "OD_100", "OD_1000", "OD_10000",
)

#: All eight query sets of Tables 2 and 3.
TABLE2_WORKLOADS: tuple[str, ...] = tuple(TABLE1_SPECS)


def _make_query(
    spec: WorkloadSpec, query_index: int, rng: random.Random
) -> QueryTable:
    """Generate one query table according to the spec's query kind."""
    table_id = 1_000_000 + query_index  # ids outside any corpus range
    if spec.query_kind == "kaggle":
        if query_index % 2 == 0:
            return generate_movie_query(table_id, rng, cardinality=spec.cardinality)
        return generate_airline_query(table_id, rng, cardinality=spec.cardinality)
    if spec.query_kind == "school":
        return generate_school_query(table_id, rng, cardinality=spec.cardinality)
    return generate_entity_query(
        table_id,
        rng,
        cardinality=spec.cardinality,
        key_size=spec.key_size,
        name=f"{spec.name}_query_{query_index}",
    )


def build_workload(
    spec: WorkloadSpec | str,
    seed: int = 0,
    num_queries: int | None = None,
    corpus_scale: float | None = None,
) -> QueryWorkload:
    """Build one workload: corpus, query tables, and planted candidates."""
    if isinstance(spec, str):
        spec = TABLE1_SPECS[spec]
    if num_queries is not None or corpus_scale is not None:
        spec = replace(
            spec,
            num_queries=num_queries if num_queries is not None else spec.num_queries,
            corpus_scale=corpus_scale if corpus_scale is not None else spec.corpus_scale,
        )
    rng = random.Random(seed)
    profile = spec.corpus_profile
    if spec.corpus_scale != 1.0:
        profile = profile.scaled(spec.corpus_scale)
    corpus = SyntheticCorpusGenerator(profile=profile, seed=seed).generate(
        name=f"{spec.name}_corpus"
    )

    queries: list[QueryTable] = []
    planted: dict[int, list[PlantedTable]] = {}
    for query_index in range(spec.num_queries):
        query = _make_query(spec, query_index, rng)
        queries.append(query)
        records: list[PlantedTable] = []
        cardinality = max(len(query.key_tuples()), 1)
        for plant_index in range(spec.joinable_tables_per_query):
            # Spread planted joinability between ~20% and 100% of the query
            # cardinality so the top-k has a meaningful ordering.  Partial
            # (single-value) rows outnumber the joinable rows, mirroring the
            # paper's observation that single-column probes retrieve orders of
            # magnitude more irrelevant rows than joinable ones.
            fraction = 0.2 + 0.8 * (plant_index + 1) / spec.joinable_tables_per_query
            joinability = max(1, int(cardinality * fraction))
            records.append(
                plant_joinable_table(
                    corpus,
                    query,
                    rng,
                    joinability=joinability,
                    noise_rows=rng.randint(5, 15),
                    partial_rows=min(rng.randint(1, 3) * cardinality, 400),
                )
            )
        for _ in range(spec.distractor_tables_per_query):
            records.append(
                plant_distractor_table(
                    corpus,
                    query,
                    rng,
                    matching_rows=min(rng.randint(2, 5) * cardinality, 600),
                    noise_rows=rng.randint(5, 15),
                )
            )
        planted[query_index] = records

    return QueryWorkload(
        name=spec.name, spec=spec, corpus=corpus, queries=queries, planted=planted
    )


def build_all_table1_workloads(
    seed: int = 0,
    num_queries: int | None = None,
    corpus_scale: float | None = None,
    names: tuple[str, ...] | None = None,
) -> dict[str, QueryWorkload]:
    """Build every (selected) Table 1 workload; returns a name-keyed dict."""
    selected = names or tuple(TABLE1_SPECS)
    return {
        name: build_workload(
            TABLE1_SPECS[name],
            seed=seed + offset,
            num_queries=num_queries,
            corpus_scale=corpus_scale,
        )
        for offset, name in enumerate(selected)
    }
