"""Synthetic corpus generators standing in for DWTC / Open Data / School.

The real corpora of Section 7.1 (145M web tables, 17k open-data tables, the
School corpus) are neither available offline nor tractable at laptop scale.
The generators below produce corpora that preserve the properties MATE's
evaluation depends on (see DESIGN.md §5 for the substitution argument):

* **web-table profile** — very many, small, narrow tables with low per-column
  cardinality and heavy value sharing (the paper's WT query groups have
  cardinalities of 3–151);
* **open-data profile** — fewer but wider and longer tables with larger
  cardinalities (the OD groups go up to a few thousand distinct values);
* **school profile** — few, very wide tables (the School corpus averages 27
  columns), which stresses the number of values aggregated per super key.

Every cell is drawn from shared vocabularies with a Zipf-like skew, so values
recur across unrelated tables and single-column probes hit many
false-positive rows — the phenomenon MATE's filter is designed to prune.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..datamodel import Table, TableCorpus
from . import vocab

#: A column generator: given the RNG, produce one cell value.
ValueFactory = Callable[[random.Random], str]


def _person_first(rng: random.Random) -> str:
    return vocab.zipf_choice(rng, vocab.FIRST_NAMES)


def _person_last(rng: random.Random) -> str:
    return vocab.zipf_choice(rng, vocab.LAST_NAMES)


def _country(rng: random.Random) -> str:
    return vocab.zipf_choice(rng, vocab.COUNTRIES)


def _city(rng: random.Random) -> str:
    return vocab.zipf_choice(rng, vocab.CITIES)


def _occupation(rng: random.Random) -> str:
    return vocab.zipf_choice(rng, vocab.OCCUPATIONS)


def _generic_word(rng: random.Random) -> str:
    return vocab.zipf_choice(rng, vocab.GENERIC_WORDS)


def _date(rng: random.Random) -> str:
    return vocab.random_date(rng)


def _timestamp(rng: random.Random) -> str:
    return vocab.random_timestamp(rng)


def _number(rng: random.Random) -> str:
    return vocab.random_number(rng)


def _code(rng: random.Random) -> str:
    return vocab.random_code(rng)


def _pseudo_word(rng: random.Random) -> str:
    return vocab.random_word(rng)


def _token(rng: random.Random) -> str:
    return vocab.zipf_choice(rng, vocab.SHARED_TOKENS, skew=1.1)


#: The pool of column types synthetic tables draw from.  Names double as the
#: generated column names (suffixed with an index on collision).
COLUMN_FACTORIES: dict[str, ValueFactory] = {
    "first_name": _person_first,
    "last_name": _person_last,
    "country": _country,
    "city": _city,
    "occupation": _occupation,
    "category": _generic_word,
    "date": _date,
    "timestamp": _timestamp,
    "amount": _number,
    "code": _code,
    "label": _pseudo_word,
    "token": _token,
}

#: Column types whose values are strings suitable for composite keys.
KEYABLE_COLUMN_TYPES: tuple[str, ...] = (
    "first_name", "last_name", "country", "city", "occupation", "category",
    "date", "timestamp", "token",
)


@dataclass(frozen=True)
class CorpusProfile:
    """Shape parameters of a synthetic corpus."""

    name: str
    num_tables: int
    min_rows: int
    max_rows: int
    min_columns: int
    max_columns: int
    #: Column types to prefer (sampled uniformly from this tuple).
    column_types: tuple[str, ...] = tuple(COLUMN_FACTORIES)
    #: Zipf skew of value sampling inside each vocabulary.
    skew: float = 1.2
    #: Fraction of tables that are much wider than ``max_columns``; real web
    #: table and open-data corpora have a long tail of very wide tables, which
    #: is exactly where OR-aggregated super keys saturate (Section 7.3).
    wide_table_fraction: float = 0.1
    #: Column count drawn for those wide tables (between ``max_columns`` and
    #: this value).
    wide_max_columns: int = 25

    def scaled(self, scale: float) -> "CorpusProfile":
        """Return a copy with the number of tables scaled by ``scale``."""
        return CorpusProfile(
            name=self.name,
            num_tables=max(1, int(self.num_tables * scale)),
            min_rows=self.min_rows,
            max_rows=self.max_rows,
            min_columns=self.min_columns,
            max_columns=self.max_columns,
            column_types=self.column_types,
            skew=self.skew,
            wide_table_fraction=self.wide_table_fraction,
            wide_max_columns=self.wide_max_columns,
        )


#: Web-table-like corpus: many small, narrow tables.
WEB_TABLE_PROFILE = CorpusProfile(
    name="webtables",
    num_tables=400,
    min_rows=5,
    max_rows=40,
    min_columns=3,
    max_columns=6,
)

#: Open-data-like corpus: fewer but much wider and longer tables.  The real
#: German Open Data corpus averages ~26 columns per table (440k columns over
#: 17k tables, Section 7.1), which is what makes the bloom-filter baseline's
#: per-value bit budget collapse there.
OPEN_DATA_PROFILE = CorpusProfile(
    name="opendata",
    num_tables=120,
    min_rows=50,
    max_rows=300,
    min_columns=15,
    max_columns=35,
    wide_table_fraction=0.05,
    wide_max_columns=45,
)

#: School-corpus-like: few, very wide, long tables (27 columns on average).
SCHOOL_PROFILE = CorpusProfile(
    name="school",
    num_tables=30,
    min_rows=200,
    max_rows=600,
    min_columns=20,
    max_columns=30,
)

PROFILES: dict[str, CorpusProfile] = {
    profile.name: profile
    for profile in (WEB_TABLE_PROFILE, OPEN_DATA_PROFILE, SCHOOL_PROFILE)
}


@dataclass
class SyntheticCorpusGenerator:
    """Generates a corpus of random tables from a :class:`CorpusProfile`."""

    profile: CorpusProfile
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def generate(self, name: str | None = None) -> TableCorpus:
        """Generate the full corpus."""
        corpus = TableCorpus(name=name or self.profile.name)
        for _ in range(self.profile.num_tables):
            self.add_random_table(corpus)
        return corpus

    def add_random_table(self, corpus: TableCorpus, prefix: str = "table") -> Table:
        """Generate one random table and add it to ``corpus``."""
        rng = self._rng
        if rng.random() < self.profile.wide_table_fraction:
            num_columns = rng.randint(
                self.profile.max_columns,
                max(self.profile.wide_max_columns, self.profile.max_columns),
            )
        else:
            num_columns = rng.randint(
                self.profile.min_columns, self.profile.max_columns
            )
        num_rows = rng.randint(self.profile.min_rows, self.profile.max_rows)
        column_types = [rng.choice(self.profile.column_types) for _ in range(num_columns)]
        columns = self._column_names(column_types)
        rows = [
            [COLUMN_FACTORIES[column_type](rng) for column_type in column_types]
            for _ in range(num_rows)
        ]
        table_id = corpus.next_table_id()
        table = Table(
            table_id=table_id,
            name=f"{prefix}_{self.profile.name}_{table_id}",
            columns=columns,
            rows=rows,
        )
        corpus.add_table(table)
        return table

    @staticmethod
    def _column_names(column_types: Sequence[str]) -> list[str]:
        """Derive unique column names from (possibly repeated) column types."""
        counts: dict[str, int] = {}
        names: list[str] = []
        for column_type in column_types:
            seen = counts.get(column_type, 0)
            names.append(column_type if seen == 0 else f"{column_type}_{seen + 1}")
            counts[column_type] = seen + 1
        return names


def generate_corpus(
    profile: CorpusProfile | str, seed: int = 0, scale: float = 1.0, name: str | None = None
) -> TableCorpus:
    """Convenience wrapper: generate a corpus from a profile (or profile name)."""
    if isinstance(profile, str):
        profile = PROFILES[profile]
    if scale != 1.0:
        profile = profile.scaled(scale)
    return SyntheticCorpusGenerator(profile=profile, seed=seed).generate(name=name)
