"""Data-lake ingestion, profiling, and type inference.

This package is the bridge between a user's own files and the MATE machinery:

* :mod:`repro.lake.data_lake` — the :class:`DataLake` facade (directory of
  CSV / DWTC-style JSON files -> indexed, queryable corpus);
* :mod:`repro.lake.webtable_json` — the Dresden-Web-Table-Corpus JSON-lines
  format;
* :mod:`repro.lake.type_inference` — syntactic column types and key-candidate
  filtering;
* :mod:`repro.lake.profiling` — corpus statistics (unique values, character
  frequencies, posting-list length distribution) that feed Eq. 5, the rare
  character table, and the substitution argument of DESIGN.md.
"""

from .data_lake import DataLake
from .profiling import (
    ColumnStatistics,
    CorpusProfile,
    CorpusProfiler,
    ValueFrequencyProfile,
    character_frequencies_from_values,
    config_with_corpus_frequencies,
    corpus_character_frequencies,
    profile_column,
    profile_corpus,
    profile_table,
    value_frequency_profile,
)
from .type_inference import (
    ColumnType,
    ColumnTypeReport,
    classify_value,
    infer_column_type,
    infer_table_types,
    keyable_columns,
)
from .webtable_json import (
    WebTableRecord,
    load_webtable_corpus,
    parse_webtable_record,
    record_to_table,
    save_webtable_corpus,
    table_to_record,
)

__all__ = [
    "ColumnStatistics",
    "ColumnType",
    "ColumnTypeReport",
    "CorpusProfile",
    "CorpusProfiler",
    "DataLake",
    "ValueFrequencyProfile",
    "WebTableRecord",
    "character_frequencies_from_values",
    "classify_value",
    "config_with_corpus_frequencies",
    "corpus_character_frequencies",
    "infer_column_type",
    "infer_table_types",
    "keyable_columns",
    "load_webtable_corpus",
    "parse_webtable_record",
    "profile_column",
    "profile_corpus",
    "profile_table",
    "record_to_table",
    "save_webtable_corpus",
    "table_to_record",
    "value_frequency_profile",
]
