"""Reader/writer for the Dresden-Web-Table-Corpus-style JSON format.

The DWTC distribution stores web tables as JSON objects, one per line, whose
``relation`` field holds the table content *column-major* (a list of columns,
each a list of cells, with the header as the first cell when ``hasHeader`` is
true).  The real corpus cannot be shipped with this reproduction, but the
format can: these functions let a user who has (a slice of) the DWTC — or any
corpus exported in the same shape — load it straight into a
:class:`~repro.datamodel.TableCorpus`, and let the synthetic generators dump
corpora in the same shape for interoperability with the authors' original
tooling.

Example line (formatted for readability)::

    {"relation": [["f. name", "muhammad", "ansel"],
                  ["l. name", "lee", "adams"]],
     "pageTitle": "People",
     "hasHeader": true,
     "tableType": "RELATION"}
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from ..datamodel import Row, Table, TableCorpus
from ..exceptions import StorageError


@dataclass(frozen=True)
class WebTableRecord:
    """One parsed web-table JSON record (before conversion to a Table)."""

    columns: list[str]
    rows: list[list[str]]
    page_title: str = ""
    table_type: str = "RELATION"

    @property
    def num_rows(self) -> int:
        """Number of data rows (excluding the header)."""
        return len(self.rows)


def parse_webtable_record(payload: dict) -> WebTableRecord:
    """Parse one DWTC-style JSON object into a :class:`WebTableRecord`.

    Raises :class:`StorageError` for structurally invalid records (missing or
    empty ``relation``, ragged columns).
    """
    relation = payload.get("relation")
    if not isinstance(relation, list) or not relation:
        raise StorageError("web table record has no 'relation' field")
    if any(not isinstance(column, list) or not column for column in relation):
        raise StorageError("web table 'relation' must be a list of non-empty lists")
    lengths = {len(column) for column in relation}
    if len(lengths) != 1:
        raise StorageError(
            f"web table 'relation' has ragged columns (lengths {sorted(lengths)})"
        )
    has_header = bool(payload.get("hasHeader", True))
    if has_header:
        columns = [str(column[0]) for column in relation]
        data_columns = [column[1:] for column in relation]
    else:
        columns = [f"col_{index}" for index in range(len(relation))]
        data_columns = relation
    # Column-major -> row-major.
    rows = [
        [str(column[row_index]) for column in data_columns]
        for row_index in range(len(data_columns[0]))
    ] if data_columns and data_columns[0] else []
    return WebTableRecord(
        columns=columns,
        rows=rows,
        page_title=str(payload.get("pageTitle", "")),
        table_type=str(payload.get("tableType", "RELATION")),
    )


def record_to_table(record: WebTableRecord, table_id: int, name: str | None = None) -> Table:
    """Convert a parsed record into a corpus :class:`Table`.

    Duplicate or empty header names are disambiguated with positional
    suffixes, because corpus tables require unique column names.
    """
    seen: dict[str, int] = {}
    columns: list[str] = []
    for index, raw in enumerate(record.columns):
        base = raw.strip().lower() or f"col_{index}"
        count = seen.get(base, 0)
        columns.append(base if count == 0 else f"{base}_{count + 1}")
        seen[base] = count + 1
    return Table(
        table_id=table_id,
        name=name or (record.page_title or f"webtable_{table_id}"),
        columns=columns,
        rows=[Row(row) for row in record.rows],
    )


def table_to_record(table: Table) -> dict:
    """Convert a corpus table into a DWTC-style JSON-serialisable dict."""
    relation = [
        [column] + [row[column_index] for row in table.rows]
        for column_index, column in enumerate(table.columns)
    ]
    return {
        "relation": relation,
        "pageTitle": table.name,
        "hasHeader": True,
        "tableType": "RELATION",
    }


def iter_webtable_json_lines(path: str | Path) -> Iterator[WebTableRecord]:
    """Yield parsed records from a JSON-lines web-table file.

    Blank lines are skipped; malformed lines raise :class:`StorageError` with
    the offending line number.
    """
    path = Path(path)
    if not path.exists():
        raise StorageError(f"web table file does not exist: {path}")
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                payload = json.loads(stripped)
            except json.JSONDecodeError as exc:
                raise StorageError(
                    f"{path}:{line_number}: invalid JSON ({exc})"
                ) from exc
            try:
                yield parse_webtable_record(payload)
            except StorageError as exc:
                raise StorageError(f"{path}:{line_number}: {exc}") from exc


def load_webtable_corpus(
    path: str | Path,
    name: str = "webtables",
    max_tables: int | None = None,
    min_rows: int = 1,
    min_columns: int = 1,
) -> TableCorpus:
    """Load a JSON-lines web-table dump into a corpus.

    ``max_tables`` bounds the number of tables loaded; ``min_rows`` and
    ``min_columns`` drop degenerate tables (the DWTC contains many layout
    artefacts with a single cell), mirroring the preprocessing every web-table
    system applies.
    """
    corpus = TableCorpus(name=name)
    loaded = 0
    for record in iter_webtable_json_lines(path):
        if max_tables is not None and loaded >= max_tables:
            break
        if record.num_rows < min_rows or len(record.columns) < min_columns:
            continue
        table = record_to_table(record, table_id=corpus.next_table_id())
        corpus.add_table(table)
        loaded += 1
    return corpus


def save_webtable_corpus(corpus: TableCorpus | Iterable[Table], path: str | Path) -> Path:
    """Write tables to a JSON-lines file in the DWTC-style format."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tables: Iterable[Table] = corpus if not isinstance(corpus, TableCorpus) else iter(corpus)
    with path.open("w", encoding="utf-8") as handle:
        for table in tables:
            handle.write(json.dumps(table_to_record(table)) + "\n")
    return path
