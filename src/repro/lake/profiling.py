"""Corpus and table profiling.

The paper's evaluation repeatedly leans on *statistical properties* of the
corpora: the number of unique values (Eq. 5's 1-bit budget), the average
number of columns per table (the bloom-filter baselines' ``V``), the
power-law distribution of posting-list lengths (which is why the cardinality
heuristic of Section 6.1 works), the distribution of cell-value lengths
(which sizes the XASH length segment, Section 5.3.2), and the character
frequency distribution (which drives the rare-character selection).

:class:`CorpusProfiler` computes all of those for an arbitrary corpus so that

* a user pointing the library at their own data lake can check whether the
  DESIGN.md substitution argument applies to it,
* :func:`corpus_character_frequencies` can replace the built-in English
  frequency table with corpus-derived frequencies (the
  ``frequency_source`` ablation experiment), and
* the Eq. 5 / bloom-filter parameters can be derived from data instead of
  being guessed.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from ..config import CHARACTER_FREQUENCIES, DEFAULT_ALPHABET, MateConfig
from ..datamodel import MISSING, Table, TableCorpus
from .type_inference import ColumnType, infer_column_type


# ----------------------------------------------------------------------
# Per-column and per-table profiles
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ColumnStatistics:
    """Summary statistics of one column."""

    table_id: int
    column: str
    column_index: int
    column_type: ColumnType
    num_values: int
    num_missing: int
    cardinality: int
    min_length: int
    max_length: int
    mean_length: float

    @property
    def uniqueness(self) -> float:
        """Fraction of non-missing values that are distinct (1.0 = unique column)."""
        non_missing = self.num_values - self.num_missing
        if non_missing == 0:
            return 0.0
        return self.cardinality / non_missing

    def as_dict(self) -> dict[str, object]:
        """Return the statistics as a plain dictionary (for reporting)."""
        return {
            "table_id": self.table_id,
            "column": self.column,
            "type": self.column_type.value,
            "values": self.num_values,
            "missing": self.num_missing,
            "cardinality": self.cardinality,
            "uniqueness": round(self.uniqueness, 3),
            "min_length": self.min_length,
            "max_length": self.max_length,
            "mean_length": round(self.mean_length, 2),
        }


def profile_column(table: Table, column: str | int) -> ColumnStatistics:
    """Profile a single column of ``table``."""
    column_index = (
        column if isinstance(column, int) else table.column_index(column)
    )
    name = table.columns[column_index]
    values = table.column_values(column_index)
    non_missing = [v for v in values if v != MISSING]
    lengths = [len(v) for v in non_missing]
    return ColumnStatistics(
        table_id=table.table_id,
        column=name,
        column_index=column_index,
        column_type=infer_column_type(non_missing),
        num_values=len(values),
        num_missing=len(values) - len(non_missing),
        cardinality=len(set(non_missing)),
        min_length=min(lengths, default=0),
        max_length=max(lengths, default=0),
        mean_length=sum(lengths) / len(lengths) if lengths else 0.0,
    )


def profile_table(table: Table) -> list[ColumnStatistics]:
    """Profile every column of ``table`` (in column order)."""
    return [profile_column(table, index) for index in range(table.num_columns)]


# ----------------------------------------------------------------------
# Character frequencies (Section 5.3.2's rare-character selection)
# ----------------------------------------------------------------------
def character_frequencies_from_values(
    values: Iterable[str], alphabet: str = DEFAULT_ALPHABET
) -> dict[str, float]:
    """Relative character frequencies (in percent) over a value collection.

    Characters outside ``alphabet`` are folded onto it the same way XASH does
    (:func:`repro.hashing.xash.normalize_character`), so the frequencies line
    up with the segments the hash will use.  Alphabet characters that never
    occur receive a frequency of 0.0, which makes them maximally attractive
    as "rare" characters — exactly the right behaviour.
    """
    from ..hashing.xash import normalize_character

    counts: Counter[str] = Counter()
    total = 0
    for value in values:
        if value == MISSING:
            continue
        for character in value:
            counts[normalize_character(character, alphabet)] += 1
            total += 1
    if total == 0:
        return {character: 0.0 for character in alphabet}
    return {
        character: 100.0 * counts.get(character, 0) / total
        for character in alphabet
    }


def corpus_character_frequencies(
    corpus: TableCorpus, alphabet: str = DEFAULT_ALPHABET, sample_tables: int | None = None
) -> dict[str, float]:
    """Character frequencies measured over (a sample of) a corpus.

    ``sample_tables`` bounds the number of tables scanned (in table-id order)
    so that profiling a very large corpus stays cheap; ``None`` scans all.
    """
    def iter_values():
        for position, table in enumerate(corpus):
            if sample_tables is not None and position >= sample_tables:
                return
            for row in table.rows:
                yield from row

    return character_frequencies_from_values(iter_values(), alphabet=alphabet)


def config_with_corpus_frequencies(
    config: MateConfig, corpus: TableCorpus, sample_tables: int | None = None
) -> MateConfig:
    """Return a copy of ``config`` whose rare-character table is corpus-derived.

    The paper uses a fixed English frequency table (citing Mayzner &
    Tresselt); deriving the table from the indexed corpus itself is the
    natural generalisation for non-English data lakes, and the
    ``frequency_source`` experiment measures what it buys.
    """
    from dataclasses import replace

    frequencies = corpus_character_frequencies(
        corpus, alphabet=config.alphabet, sample_tables=sample_tables
    )
    return replace(config, character_frequencies=frequencies)


# ----------------------------------------------------------------------
# Posting-list length distribution (Section 7.5.4's power-law argument)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ValueFrequencyProfile:
    """Distribution of value occurrence counts across a corpus.

    ``occurrences[i]`` is the number of times the ``i``-th most frequent value
    occurs; this is exactly the posting-list length distribution of the
    inverted index built over the corpus.
    """

    occurrences: tuple[int, ...]

    @property
    def num_distinct_values(self) -> int:
        """Number of distinct values profiled."""
        return len(self.occurrences)

    @property
    def total_occurrences(self) -> int:
        """Total number of (non-missing) cells profiled."""
        return sum(self.occurrences)

    @property
    def mean(self) -> float:
        """Mean occurrences per distinct value (the paper reports 12 for OD)."""
        if not self.occurrences:
            return 0.0
        return self.total_occurrences / len(self.occurrences)

    @property
    def max(self) -> int:
        """Occurrences of the most frequent value."""
        return self.occurrences[0] if self.occurrences else 0

    def head_share(self, fraction: float = 0.01) -> float:
        """Fraction of all occurrences owned by the top ``fraction`` of values.

        A heavily skewed (power-law-like) distribution concentrates most
        occurrences in a tiny head — the property Section 7.5.4 relies on for
        the cardinality heuristic.
        """
        if not self.occurrences:
            return 0.0
        head = max(1, int(len(self.occurrences) * fraction))
        return sum(self.occurrences[:head]) / self.total_occurrences

    def zipf_exponent(self) -> float:
        """Least-squares slope of log(rank) vs log(occurrences).

        Values around ``-1`` indicate a classic Zipf distribution; values near
        ``0`` a flat one.  Returns 0.0 when fewer than two distinct
        occurrence counts exist.
        """
        points = [
            (math.log(rank + 1), math.log(count))
            for rank, count in enumerate(self.occurrences)
            if count > 0
        ]
        if len(points) < 2:
            return 0.0
        n = len(points)
        sum_x = sum(x for x, _ in points)
        sum_y = sum(y for _, y in points)
        sum_xy = sum(x * y for x, y in points)
        sum_xx = sum(x * x for x, _ in points)
        denominator = n * sum_xx - sum_x * sum_x
        if denominator == 0:
            return 0.0
        return (n * sum_xy - sum_x * sum_y) / denominator


def value_frequency_profile(corpus: TableCorpus) -> ValueFrequencyProfile:
    """Compute the value-occurrence distribution of a corpus."""
    counts: Counter[str] = Counter()
    for table in corpus:
        for row in table.rows:
            for value in row:
                if value != MISSING:
                    counts[value] += 1
    occurrences = tuple(sorted(counts.values(), reverse=True))
    return ValueFrequencyProfile(occurrences=occurrences)


# ----------------------------------------------------------------------
# Whole-corpus profile
# ----------------------------------------------------------------------
@dataclass
class CorpusProfile:
    """The full profile of a corpus, as produced by :class:`CorpusProfiler`."""

    corpus_name: str
    num_tables: int
    num_columns: int
    num_rows: int
    num_unique_values: int
    avg_columns_per_table: float
    avg_rows_per_table: float
    #: Count of columns per inferred type.
    column_type_counts: dict[str, int] = field(default_factory=dict)
    #: Fraction of cell values whose length fits the XASH length segment of a
    #: 128-bit hash (17 characters); the paper quotes >83% for its corpora.
    short_value_fraction: float = 0.0
    #: Character frequencies (percent) measured over the corpus.
    character_frequencies: dict[str, float] = field(default_factory=dict)
    #: Posting-list length distribution statistics.
    value_frequency: ValueFrequencyProfile = field(
        default_factory=lambda: ValueFrequencyProfile(occurrences=())
    )

    def recommended_config(
        self, hash_size: int = 128, k: int = 10, use_corpus_frequencies: bool = True
    ) -> MateConfig:
        """Derive a :class:`MateConfig` from the measured corpus statistics.

        The Eq. 5 bit budget is computed from the measured number of unique
        values and, optionally, the rare-character table from the measured
        character frequencies.
        """
        frequencies = (
            dict(self.character_frequencies)
            if use_corpus_frequencies and self.character_frequencies
            else dict(CHARACTER_FREQUENCIES)
        )
        return MateConfig(
            hash_size=hash_size,
            k=k,
            expected_unique_values=max(self.num_unique_values, 1),
            character_frequencies=frequencies,
        )

    def as_dict(self) -> dict[str, object]:
        """Return the headline numbers as a plain dictionary (for reporting)."""
        return {
            "corpus": self.corpus_name,
            "tables": self.num_tables,
            "columns": self.num_columns,
            "rows": self.num_rows,
            "unique_values": self.num_unique_values,
            "avg_columns_per_table": round(self.avg_columns_per_table, 2),
            "avg_rows_per_table": round(self.avg_rows_per_table, 2),
            "short_value_fraction": round(self.short_value_fraction, 3),
            "column_types": dict(self.column_type_counts),
            "pl_length_mean": round(self.value_frequency.mean, 2),
            "pl_length_max": self.value_frequency.max,
            "pl_zipf_exponent": round(self.value_frequency.zipf_exponent(), 3),
        }


class CorpusProfiler:
    """Computes a :class:`CorpusProfile` for a corpus.

    Parameters
    ----------
    alphabet:
        Alphabet for the character-frequency measurement (defaults to the
        37-character XASH alphabet).
    length_segment_bits:
        Length-segment width used for the ``short_value_fraction`` statistic
        (17 bits, i.e. the 128-bit layout, by default).
    sample_tables:
        Optional cap on the number of tables scanned for the character
        frequency measurement.
    """

    def __init__(
        self,
        alphabet: str = DEFAULT_ALPHABET,
        length_segment_bits: int = 17,
        sample_tables: int | None = None,
    ):
        self.alphabet = alphabet
        self.length_segment_bits = length_segment_bits
        self.sample_tables = sample_tables

    def profile(self, corpus: TableCorpus) -> CorpusProfile:
        """Profile ``corpus`` and return the aggregated results."""
        statistics = corpus.statistics()
        type_counts: Counter[str] = Counter()
        short_values = 0
        total_values = 0
        for table in corpus:
            for column_statistics in profile_table(table):
                type_counts[column_statistics.column_type.value] += 1
            for row in table.rows:
                for value in row:
                    if value == MISSING:
                        continue
                    total_values += 1
                    if len(value) <= self.length_segment_bits:
                        short_values += 1
        return CorpusProfile(
            corpus_name=corpus.name,
            num_tables=statistics.num_tables,
            num_columns=statistics.num_columns,
            num_rows=statistics.num_rows,
            num_unique_values=statistics.num_unique_values,
            avg_columns_per_table=statistics.avg_columns_per_table,
            avg_rows_per_table=statistics.avg_rows_per_table,
            column_type_counts=dict(type_counts),
            short_value_fraction=(
                short_values / total_values if total_values else 0.0
            ),
            character_frequencies=corpus_character_frequencies(
                corpus, alphabet=self.alphabet, sample_tables=self.sample_tables
            ),
            value_frequency=value_frequency_profile(corpus),
        )


def profile_corpus(corpus: TableCorpus, **kwargs: object) -> CorpusProfile:
    """Convenience wrapper: profile a corpus with default profiler settings."""
    return CorpusProfiler(**kwargs).profile(corpus)  # type: ignore[arg-type]
