"""Column type inference for ingested tables.

Web-table and open-data corpora arrive without schema information: every cell
is a string.  Several parts of the system benefit from knowing what a column
*looks like*:

* the composite-key discovery extension skips measure-like (floating point)
  columns, mirroring the paper's observation that auto-generated and numeric
  columns rarely act as meaningful join keys (Section 1);
* the corpus profiler reports the type mix of a data lake, which is how the
  DESIGN.md substitution argument is validated against a user's own corpus;
* the CLI ``profile`` command prints the inferred types so a user can pick
  sensible query columns.

Inference is intentionally simple and deterministic: a column is assigned the
most specific :class:`ColumnType` that at least ``threshold`` of its
non-missing values satisfy.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence

from ..datamodel import MISSING, Table

#: Minimum fraction of non-missing values that must match a type for the
#: column to be assigned that type.
DEFAULT_TYPE_THRESHOLD: float = 0.9

_INTEGER_PATTERN = re.compile(r"^[+-]?\d+$")
_FLOAT_PATTERN = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")
_DATE_PATTERNS = (
    re.compile(r"^\d{4}-\d{1,2}-\d{1,2}$"),           # 2021-04-25
    re.compile(r"^\d{1,2}[./]\d{1,2}[./]\d{2,4}$"),   # 25.04.2021 / 4/25/21
)
_TIMESTAMP_PATTERNS = (
    re.compile(r"^\d{4}-\d{1,2}-\d{1,2}[ t]\d{1,2}:\d{2}(:\d{2})?$"),
    re.compile(r"^\d{1,2}:\d{2}(:\d{2})?$"),
)
_BOOLEAN_VALUES = frozenset({"true", "false", "yes", "no", "0", "1"})
_CODE_PATTERN = re.compile(r"^[a-z0-9]+([-_/][a-z0-9]+)+$|^[a-z]{1,4}\d{2,}$")


class ColumnType(str, Enum):
    """Inferred syntactic type of a column."""

    EMPTY = "empty"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"
    DATE = "date"
    TIMESTAMP = "timestamp"
    CODE = "code"
    TEXT = "text"
    MIXED = "mixed"

    @property
    def is_numeric(self) -> bool:
        """Whether the type represents numbers (integers or floats)."""
        return self in (ColumnType.INTEGER, ColumnType.FLOAT)

    @property
    def is_temporal(self) -> bool:
        """Whether the type represents dates or timestamps."""
        return self in (ColumnType.DATE, ColumnType.TIMESTAMP)


def classify_value(value: str) -> ColumnType:
    """Classify a single normalised cell value.

    >>> classify_value("42")
    <ColumnType.INTEGER: 'integer'>
    >>> classify_value("2021-04-25")
    <ColumnType.DATE: 'date'>
    >>> classify_value("muhammad")
    <ColumnType.TEXT: 'text'>
    """
    if value == MISSING:
        return ColumnType.EMPTY
    if _INTEGER_PATTERN.match(value):
        return ColumnType.INTEGER
    if _FLOAT_PATTERN.match(value):
        return ColumnType.FLOAT
    if value in _BOOLEAN_VALUES and value not in ("0", "1"):
        return ColumnType.BOOLEAN
    if any(pattern.match(value) for pattern in _DATE_PATTERNS):
        return ColumnType.DATE
    if any(pattern.match(value) for pattern in _TIMESTAMP_PATTERNS):
        return ColumnType.TIMESTAMP
    if _CODE_PATTERN.match(value):
        return ColumnType.CODE
    return ColumnType.TEXT


#: The order in which value-level types are widened when a column mixes them:
#: an integer column with a few floats is a float column; a numeric column
#: with a few text values is text; anything else is mixed.
_WIDENING: dict[frozenset, ColumnType] = {
    frozenset({ColumnType.INTEGER, ColumnType.FLOAT}): ColumnType.FLOAT,
    frozenset({ColumnType.DATE, ColumnType.TIMESTAMP}): ColumnType.TIMESTAMP,
    frozenset({ColumnType.CODE, ColumnType.TEXT}): ColumnType.TEXT,
    frozenset({ColumnType.INTEGER, ColumnType.CODE}): ColumnType.CODE,
}


def infer_column_type(
    values: Iterable[str], threshold: float = DEFAULT_TYPE_THRESHOLD
) -> ColumnType:
    """Infer the type of a column from its (normalised) values.

    A column is assigned a type when at least ``threshold`` of its non-missing
    values classify to that type; two-type mixes with a natural widening
    (integer/float, date/timestamp, code/text) take the wider type; everything
    else is :attr:`ColumnType.MIXED`.
    """
    counts: Counter[ColumnType] = Counter()
    for value in values:
        counts[classify_value(value)] += 1
    counts.pop(ColumnType.EMPTY, None)
    total = sum(counts.values())
    if total == 0:
        return ColumnType.EMPTY

    dominant, dominant_count = counts.most_common(1)[0]
    if dominant_count / total >= threshold:
        return dominant
    present = frozenset(counts)
    for combination, widened in _WIDENING.items():
        if present <= combination:
            return widened
    if present <= {ColumnType.INTEGER, ColumnType.FLOAT, ColumnType.CODE,
                   ColumnType.TEXT} and counts[ColumnType.TEXT] > 0:
        return ColumnType.TEXT
    return ColumnType.MIXED


@dataclass(frozen=True)
class ColumnTypeReport:
    """Inferred type plus the supporting evidence for one column."""

    column: str
    column_type: ColumnType
    non_missing_values: int
    distinct_values: int
    #: Fraction of non-missing values classified as the assigned type
    #: (1.0 for widened / mixed columns means "by construction").
    type_support: float

    def as_dict(self) -> dict[str, object]:
        """Return the report as a plain dictionary (for reporting)."""
        return {
            "column": self.column,
            "type": self.column_type.value,
            "non_missing_values": self.non_missing_values,
            "distinct_values": self.distinct_values,
            "type_support": round(self.type_support, 3),
        }


def infer_table_types(
    table: Table, threshold: float = DEFAULT_TYPE_THRESHOLD
) -> list[ColumnTypeReport]:
    """Infer the type of every column of ``table``.

    Returns one :class:`ColumnTypeReport` per column, in column order.
    """
    reports: list[ColumnTypeReport] = []
    for column in table.columns:
        values = table.column_values(column)
        non_missing = [v for v in values if v != MISSING]
        column_type = infer_column_type(non_missing, threshold=threshold)
        if non_missing:
            matching = sum(
                1 for v in non_missing if classify_value(v) == column_type
            )
            support = matching / len(non_missing)
        else:
            support = 0.0
        reports.append(
            ColumnTypeReport(
                column=column,
                column_type=column_type,
                non_missing_values=len(non_missing),
                distinct_values=len(set(non_missing)),
                type_support=support,
            )
        )
    return reports


def keyable_columns(
    table: Table,
    threshold: float = DEFAULT_TYPE_THRESHOLD,
    exclude_types: Sequence[ColumnType] = (ColumnType.FLOAT, ColumnType.EMPTY),
    min_cardinality: int = 2,
) -> list[str]:
    """Return the columns of ``table`` suitable as composite-key components.

    Floating-point (measure-like) and empty columns are excluded by default,
    as are constant columns; everything else — names, codes, dates,
    integers — can participate in a composite key, exactly the situation the
    paper's introduction describes for undocumented key candidates.
    """
    excluded = set(exclude_types)
    keyable: list[str] = []
    for report in infer_table_types(table, threshold=threshold):
        if report.column_type in excluded:
            continue
        if report.distinct_values < min_cardinality:
            continue
        keyable.append(report.column)
    return keyable
