"""A directory-backed data lake facade.

:class:`DataLake` is the highest-level entry point for users who want to run
MATE on their own files instead of on the synthetic corpora: point it at a
directory of CSV and/or DWTC-style JSON-lines files, and it gives back an
indexed, queryable corpus:

>>> lake = DataLake.from_directory("my_tables/")          # doctest: +SKIP
>>> result = lake.discover("orders.csv", key=["customer", "date"], k=5)  # doctest: +SKIP

The facade deliberately stays thin: ingestion delegates to
:mod:`repro.storage.serialization` and :mod:`repro.lake.webtable_json`,
profiling to :mod:`repro.lake.profiling`, and discovery to
:class:`repro.core.MateDiscovery`.  Its value is wiring those pieces together
with sensible defaults (corpus-derived configuration, lazily built and cached
index) and a small amount of bookkeeping (file-name to table-id mapping).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..config import MateConfig
from ..core import DiscoveryResult, MateDiscovery
from ..datamodel import QueryTable, Table, TableCorpus
from ..exceptions import CorpusError, StorageError
from ..index import IndexBuilder, InvertedIndex
from ..storage import table_from_csv
from .profiling import CorpusProfile, CorpusProfiler
from .type_inference import keyable_columns
from .webtable_json import load_webtable_corpus


#: File suffixes the directory scan recognises.
CSV_SUFFIXES: tuple[str, ...] = (".csv",)
JSON_SUFFIXES: tuple[str, ...] = (".json", ".jsonl", ".ndjson")


@dataclass
class DataLake:
    """A corpus of user tables plus a lazily built MATE index."""

    corpus: TableCorpus
    config: MateConfig | None = None
    hash_function_name: str = "xash"
    #: Maps the source file stem (or path) of each ingested table to its id.
    sources: dict[str, int] = field(default_factory=dict)
    _index: InvertedIndex | None = field(default=None, repr=False)
    _profile: CorpusProfile | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_directory(
        cls,
        directory: str | Path,
        name: str | None = None,
        recursive: bool = False,
        max_tables: int | None = None,
        config: MateConfig | None = None,
        hash_function_name: str = "xash",
    ) -> "DataLake":
        """Build a data lake from every CSV / JSON-lines file in a directory.

        CSV files become one table each; JSON-lines files may contribute many
        tables (one per line).  Files that cannot be parsed raise
        :class:`StorageError` — a data lake with silently missing tables is
        worse than a loud failure.
        """
        directory = Path(directory)
        if not directory.is_dir():
            raise StorageError(f"not a directory: {directory}")
        corpus = TableCorpus(name=name or directory.name)
        sources: dict[str, int] = {}
        pattern = "**/*" if recursive else "*"
        paths = sorted(p for p in directory.glob(pattern) if p.is_file())
        for path in paths:
            if max_tables is not None and len(corpus) >= max_tables:
                break
            suffix = path.suffix.lower()
            if suffix in CSV_SUFFIXES:
                table = table_from_csv(corpus.next_table_id(), path)
                corpus.add_table(table)
                sources[path.stem] = table.table_id
            elif suffix in JSON_SUFFIXES:
                remaining = (
                    None if max_tables is None else max_tables - len(corpus)
                )
                loaded = load_webtable_corpus(
                    path, name=path.stem, max_tables=remaining
                )
                for table in loaded:
                    renumbered = Table(
                        table_id=corpus.next_table_id(),
                        name=table.name,
                        columns=list(table.columns),
                        rows=list(table.rows),
                    )
                    corpus.add_table(renumbered)
                    sources.setdefault(path.stem, renumbered.table_id)
        return cls(
            corpus=corpus,
            config=config,
            hash_function_name=hash_function_name,
            sources=sources,
        )

    @classmethod
    def from_tables(
        cls,
        tables: Iterable[Table],
        name: str = "lake",
        config: MateConfig | None = None,
        hash_function_name: str = "xash",
    ) -> "DataLake":
        """Build a data lake from already constructed tables."""
        corpus = TableCorpus(name=name, tables=tables)
        return cls(corpus=corpus, config=config, hash_function_name=hash_function_name)

    # ------------------------------------------------------------------
    # Derived resources (profile, configuration, index)
    # ------------------------------------------------------------------
    def profile(self) -> CorpusProfile:
        """Return (computing and caching on first use) the corpus profile."""
        if self._profile is None:
            self._profile = CorpusProfiler().profile(self.corpus)
        return self._profile

    def effective_config(self) -> MateConfig:
        """The configuration used for indexing and discovery.

        When no explicit configuration was provided, one is derived from the
        corpus profile (measured unique-value count and character
        frequencies), which is the recommended setup for user data lakes.
        """
        if self.config is None:
            self.config = self.profile().recommended_config()
        return self.config

    def index(self, rebuild: bool = False) -> InvertedIndex:
        """Return (building and caching on first use) the extended index."""
        if self._index is None or rebuild:
            builder = IndexBuilder(
                config=self.effective_config(),
                hash_function_name=self.hash_function_name,
            )
            self._index = builder.build(self.corpus)
        return self._index

    # ------------------------------------------------------------------
    # Table access
    # ------------------------------------------------------------------
    def table_by_source(self, source: str) -> Table:
        """Return the table ingested from file stem ``source``."""
        try:
            return self.corpus.get_table(self.sources[source])
        except KeyError as exc:
            raise CorpusError(
                f"no table was ingested from source {source!r}; "
                f"known sources: {sorted(self.sources)}"
            ) from exc

    def add_table(self, table: Table, source: str | None = None) -> None:
        """Add a table to the lake, invalidating the cached index and profile."""
        self.corpus.add_table(table)
        if source is not None:
            self.sources[source] = table.table_id
        self._index = None
        self._profile = None

    # ------------------------------------------------------------------
    # Query construction and discovery
    # ------------------------------------------------------------------
    def query_from_csv(
        self, path: str | Path, key: Sequence[str] | None = None
    ) -> QueryTable:
        """Load a query table from a CSV file and attach a composite key.

        When ``key`` is omitted, the keyable columns of the table (text /
        code / date columns with more than one distinct value) are used, which
        matches how an exploratory user would start.
        """
        table = table_from_csv(10_000_000 + len(self.corpus), Path(path))
        key_columns = (
            [column.lower() for column in key]
            if key is not None
            else keyable_columns(table)
        )
        return QueryTable(table=table, key_columns=key_columns)

    def discover(
        self,
        query: QueryTable | str | Path,
        key: Sequence[str] | None = None,
        k: int = 10,
    ) -> DiscoveryResult:
        """Find the top-k tables of the lake joinable with ``query``.

        ``query`` may be an already constructed :class:`QueryTable` or a path
        to a CSV file (in which case ``key`` selects the composite key).
        """
        if not isinstance(query, QueryTable):
            query = self.query_from_csv(query, key=key)
        config = self.effective_config().with_k(k)
        engine = MateDiscovery(
            self.corpus,
            self.index(),
            config=config,
            hash_function_name=self.hash_function_name,
        )
        return engine.discover(query, k=k)

    def __len__(self) -> int:
        return len(self.corpus)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DataLake(corpus={self.corpus.name!r}, tables={len(self.corpus)}, "
            f"hash={self.hash_function_name!r})"
        )
