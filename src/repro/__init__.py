"""MATE reproduction: multi-attribute (n-ary) joinable table discovery.

This package reimplements the system described in "MATE: Multi-Attribute
Table Extraction" (Esmailoghli, Quiané-Ruiz, Abedjan — VLDB 2022) as a
self-contained Python library:

* :mod:`repro.api` — the unified public API: :class:`DiscoveryRequest` /
  :class:`DiscoverySession`, the engine registry, per-request budgets and
  deadlines, streaming results, and the versioned JSON response schema;
* :mod:`repro.hashing` — XASH and every baseline hash function, plus the
  super-key machinery;
* :mod:`repro.index` — the extended single-attribute inverted index, plus
  its value-sharded variant for scale-out deployments;
* :mod:`repro.ingest` — online ingestion: a WAL-durable delta buffer sealed
  and compacted into immutable columnar segments behind a
  :class:`LiveIndex` (``session.ingest()`` / ``engine="live"``);
* :mod:`repro.core` — Algorithm 1: initialization, table/row filtering,
  joinability calculation, and sharded scale-out discovery;
* :mod:`repro.plan` — query planning: the explicit stage pipeline, the
  cost-based seed-column :class:`Planner`, and the :class:`Executor` with
  budget enforcement and adaptive re-planning (``DiscoveryRequest.planner``);
* :mod:`repro.sketch` — the approximate candidate tier: per-column MinHash
  signatures and a banded LSH index that prune the candidate universe ahead
  of exact MATE (planner mode ``"sketch"`` + ``DiscoveryRequest.sketch``);
* :mod:`repro.service` — the serving layer: batch discovery with probe-value
  deduplication, an LRU posting-list cache, and worker-pool scheduling;
* :mod:`repro.serve` — process-parallel serving: one worker process per
  shard over mmap'd segments (``DiscoverySession(execution="process")``),
  hedged shard requests, and the HTTP front end with admission control and
  per-tenant quotas (the ``serve`` CLI subcommand);
* :mod:`repro.baselines` — SCR, MCR, the JOSIE-based adaptations, and the
  prefix-tree related-work baseline;
* :mod:`repro.lake` — data-lake ingestion (CSV / DWTC-style JSON), corpus
  profiling, and column type inference;
* :mod:`repro.extensions` — similarity joins, duplicate detection, union
  search, and composite-key discovery;
* :mod:`repro.datagen` — synthetic corpora and the Table 1 query workloads;
* :mod:`repro.experiments` — one module per table/figure of the paper plus
  the extension studies;
* :mod:`repro.telemetry` — end-to-end observability: request tracing with
  cross-process span trees, the metrics registry behind ``GET /metrics``,
  trace-correlated JSON logging, and the slow-query log.

Quickstart::

    from repro import DiscoveryRequest, DiscoverySession, MateConfig
    from repro.datagen import build_workload

    workload = build_workload("WT_100", seed=7)
    config = MateConfig(hash_size=128, k=10, expected_unique_values=100_000)
    with DiscoverySession(workload.corpus, config=config) as session:
        result = session.discover(DiscoveryRequest(query=workload.queries[0]))
        for table in result.tables:
            print(table.table_id, table.joinability)

Every registered engine (``mate``, ``sharded``, ``scr``, ``mcr``, ``josie``,
``prefix_tree``) is reachable through the same session via
``DiscoveryRequest(engine=...)``; per-request limits
(``deadline_seconds`` / ``max_pl_fetches``), streaming
(:meth:`DiscoverySession.discover_stream
<repro.api.session.DiscoverySession.discover_stream>`), and async submission
(:meth:`DiscoverySession.asubmit <repro.api.session.DiscoverySession.asubmit>`)
ride on the request object.  The pre-API constructors
(:class:`MateDiscovery` built by hand, :class:`DiscoveryService`) keep
working; the service is a deprecated shim over a session.
"""

from .api import (
    DiscoveryRequest,
    DiscoverySession,
    EngineRegistry,
    RequestBudget,
    SCHEMA_VERSION,
    SessionBatch,
    SessionResult,
    available_engines,
    register_engine,
)
from .config import (
    DEFAULT_CONFIG,
    MateConfig,
    ServiceConfig,
    required_number_of_ones,
)
from .core import (
    DiscoveryResult,
    MateDiscovery,
    ShardedMateDiscovery,
    TableResult,
    exact_joinability,
    exact_joinability_score,
    top_k_by_exact_joinability,
)
from .datamodel import QueryTable, Row, Table, TableCorpus, table_from_dicts
from .lake import DataLake
from .exceptions import (
    ConfigurationError,
    CorpusError,
    DataModelError,
    DiscoveryError,
    EngineNotFoundError,
    HashingError,
    IndexClosedError,
    MateError,
    StorageError,
)
from .hashing import (
    SuperKeyGenerator,
    XashHashFunction,
    available_hash_functions,
    create_hash_function,
)
from .index import (
    IndexBuilder,
    IndexMaintainer,
    InvertedIndex,
    ShardedInvertedIndex,
    build_index,
    build_sharded_index,
)
from .ingest import CompactionPolicy, Compactor, IngestBuffer, LiveIndex
from .plan import Executor, Planner, PlannerOptions, QueryPlan
from .sketch import (
    ColumnSketch,
    SketchIndex,
    SketchIndexConfig,
    SketchOptions,
    build_sketch_index,
)
from .serve import (
    AdmissionController,
    DiscoveryHTTPServer,
    ProcessShardPool,
    ServeConfig,
    TenantQuota,
)
from .service import BatchDiscoveryResult, BatchStats, DiscoveryService
from .telemetry import (
    MetricsRegistry,
    SlowQueryLog,
    Telemetry,
    Tracer,
    read_trace_file,
    span_tree,
)

__version__ = "1.0.0"

__all__ = [
    "AdmissionController",
    "BatchDiscoveryResult",
    "BatchStats",
    "ColumnSketch",
    "CompactionPolicy",
    "Compactor",
    "ConfigurationError",
    "CorpusError",
    "DEFAULT_CONFIG",
    "DiscoveryRequest",
    "DiscoveryService",
    "DiscoverySession",
    "DataLake",
    "DataModelError",
    "DiscoveryError",
    "DiscoveryHTTPServer",
    "DiscoveryResult",
    "EngineNotFoundError",
    "EngineRegistry",
    "Executor",
    "HashingError",
    "IndexBuilder",
    "IndexClosedError",
    "IndexMaintainer",
    "IngestBuffer",
    "InvertedIndex",
    "LiveIndex",
    "MateConfig",
    "MateDiscovery",
    "MateError",
    "MetricsRegistry",
    "Planner",
    "PlannerOptions",
    "ProcessShardPool",
    "QueryPlan",
    "QueryTable",
    "RequestBudget",
    "Row",
    "SCHEMA_VERSION",
    "ServeConfig",
    "ServiceConfig",
    "SessionBatch",
    "SessionResult",
    "ShardedInvertedIndex",
    "ShardedMateDiscovery",
    "SketchIndex",
    "SketchIndexConfig",
    "SketchOptions",
    "SlowQueryLog",
    "StorageError",
    "SuperKeyGenerator",
    "Table",
    "TableCorpus",
    "TableResult",
    "Telemetry",
    "TenantQuota",
    "Tracer",
    "XashHashFunction",
    "available_engines",
    "available_hash_functions",
    "build_index",
    "build_sharded_index",
    "build_sketch_index",
    "create_hash_function",
    "exact_joinability",
    "exact_joinability_score",
    "read_trace_file",
    "register_engine",
    "required_number_of_ones",
    "span_tree",
    "table_from_dicts",
    "top_k_by_exact_joinability",
    "__version__",
]
