"""Admission control for the serving front end: quotas and backpressure.

The HTTP layer admits a request *before* any engine work happens, through
:class:`AdmissionController.try_acquire`:

* a **bounded in-flight queue** (``max_pending``): once that many requests
  are being served, further arrivals get an immediate 429 with a
  ``Retry-After`` hint instead of silently queueing without bound —
  shedding load early is what keeps tail latency bounded under overload;
* **per-tenant quotas** (:class:`TenantQuota`): a single tenant (the
  ``X-Tenant`` request header) cannot occupy the whole pool, and its
  per-request fetch budget can be capped so one expensive query cannot
  starve the shard workers;
* a **graceful drain** switch: :meth:`begin_drain` stops admitting new work
  (503) while already-admitted requests run to completion;
  :meth:`wait_drained` blocks until the last ticket is released.

The controller is deliberately synchronous (a lock around plain counters),
so the asyncio HTTP app and threaded tests share one implementation; the
``clock`` is injectable for deterministic backpressure tests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant serving limits, applied by the admission controller.

    ``max_inflight`` bounds the number of concurrently admitted requests per
    tenant; ``max_pl_fetches_per_request`` caps the per-request posting-list
    fetch budget (a request asking for more — or for no limit at all — is
    clamped down to the cap before it reaches the engine).
    """

    max_inflight: int = 8
    max_pl_fetches_per_request: int | None = None

    def __post_init__(self) -> None:
        if self.max_inflight <= 0:
            raise ConfigurationError(
                f"max_inflight must be positive, got {self.max_inflight}"
            )
        if (
            self.max_pl_fetches_per_request is not None
            and self.max_pl_fetches_per_request < 0
        ):
            raise ConfigurationError(
                "max_pl_fetches_per_request must be non-negative, got "
                f"{self.max_pl_fetches_per_request}"
            )

    def clamp_fetches(self, requested: int | None) -> int | None:
        """Clamp a request's fetch budget to this tenant's per-request cap."""
        cap = self.max_pl_fetches_per_request
        if cap is None:
            return requested
        if requested is None:
            return cap
        return min(requested, cap)


@dataclass(frozen=True)
class AdmissionTicket:
    """Proof of admission; hand it back via :meth:`AdmissionController.release`."""

    tenant: str
    admitted_at: float


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission attempt."""

    admitted: bool
    #: HTTP status the front end should answer with (200 family only when
    #: ``admitted``): 429 = over capacity / quota, 503 = draining.
    status: int = 200
    reason: str = ""
    #: ``Retry-After`` hint in seconds (only meaningful on 429).
    retry_after_seconds: float | None = None
    ticket: AdmissionTicket | None = None


class AdmissionController:
    """Bounded-admission gate shared by every connection of the server."""

    def __init__(
        self,
        max_pending: int = 32,
        tenant_quota: TenantQuota | None = None,
        retry_after_seconds: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_pending < 0:
            raise ConfigurationError(
                f"max_pending must be non-negative, got {max_pending}"
            )
        self.max_pending = max_pending
        self.tenant_quota = tenant_quota or TenantQuota()
        self.retry_after_seconds = retry_after_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._drained = threading.Event()
        self._drained.set()
        self._inflight = 0
        self._per_tenant: dict[str, int] = {}
        self._draining = False
        self.admitted_total = 0
        self.rejected_total = 0
        self.drained_rejects = 0

    def try_acquire(self, tenant: str = "default") -> AdmissionDecision:
        """Admit one request for ``tenant``, or explain the refusal."""
        with self._lock:
            if self._draining:
                self.drained_rejects += 1
                return AdmissionDecision(
                    admitted=False, status=503, reason="server is draining"
                )
            if self._inflight >= self.max_pending:
                self.rejected_total += 1
                return AdmissionDecision(
                    admitted=False,
                    status=429,
                    reason=(
                        f"at capacity ({self._inflight}/{self.max_pending} "
                        "requests in flight)"
                    ),
                    retry_after_seconds=self.retry_after_seconds,
                )
            tenant_inflight = self._per_tenant.get(tenant, 0)
            if tenant_inflight >= self.tenant_quota.max_inflight:
                self.rejected_total += 1
                return AdmissionDecision(
                    admitted=False,
                    status=429,
                    reason=(
                        f"tenant {tenant!r} at quota ({tenant_inflight}/"
                        f"{self.tenant_quota.max_inflight} in flight)"
                    ),
                    retry_after_seconds=self.retry_after_seconds,
                )
            self._inflight += 1
            self._per_tenant[tenant] = tenant_inflight + 1
            self._drained.clear()
            self.admitted_total += 1
            return AdmissionDecision(
                admitted=True,
                ticket=AdmissionTicket(tenant=tenant, admitted_at=self._clock()),
            )

    def release(self, ticket: AdmissionTicket) -> None:
        """Return an admitted request's slot (idempotence is the caller's job)."""
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
            remaining = self._per_tenant.get(ticket.tenant, 0) - 1
            if remaining <= 0:
                self._per_tenant.pop(ticket.tenant, None)
            else:
                self._per_tenant[ticket.tenant] = remaining
            if self._inflight == 0:
                self._drained.set()

    def begin_drain(self) -> None:
        """Stop admitting new requests; in-flight ones run to completion."""
        with self._lock:
            self._draining = True
            if self._inflight == 0:
                self._drained.set()

    @property
    def draining(self) -> bool:
        """Whether :meth:`begin_drain` has been called."""
        return self._draining

    def wait_drained(self, timeout: float | None = None) -> bool:
        """Block until every admitted request has been released."""
        return self._drained.wait(timeout)

    def register_metrics(self, registry) -> None:
        """Expose the admission counters through a telemetry registry.

        Scrape-time callbacks, so the controller's own counters stay the
        single source of truth and ``GET /metrics`` always sees the live
        values.
        """
        registry.counter_callback(
            "repro_admission_admitted_total",
            lambda: self.admitted_total,
            "Requests admitted by the controller",
        )
        registry.counter_callback(
            "repro_admission_rejected_total",
            lambda: self.rejected_total,
            "Requests rejected with 429 (capacity or tenant quota)",
        )
        registry.counter_callback(
            "repro_admission_drained_rejects_total",
            lambda: self.drained_rejects,
            "Requests refused with 503 while draining",
        )
        registry.gauge_callback(
            "repro_admission_inflight",
            lambda: self._inflight,
            "Requests currently being served",
        )

    def stats(self) -> dict[str, object]:
        """Counter snapshot for the ``/v1/stats`` endpoint."""
        with self._lock:
            return {
                "inflight": self._inflight,
                "max_pending": self.max_pending,
                "draining": self._draining,
                "admitted_total": self.admitted_total,
                "rejected_total": self.rejected_total,
                "drained_rejects": self.drained_rejects,
                "tenants": dict(self._per_tenant),
            }


__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionTicket",
    "TenantQuota",
]
