"""Process-parallel serving: shard-owning worker processes + HTTP front end.

The serving subsystem turns the library into a deployable query service:

* :mod:`repro.serve.pool` — :class:`ProcessShardPool`, the
  ``execution="process"`` engine behind ``engine="sharded"``: one worker
  process per corpus shard over mmap'd ``.seg`` segments, scatter/gather
  top-k merge byte-identical to the in-process engines, per-request budget
  split/reconcile, and optional hedged duplicate shard requests;
* :mod:`repro.serve.protocol` — the typed, versioned pipe messages between
  the pool parent and its workers;
* :mod:`repro.serve.quotas` — :class:`AdmissionController`: bounded
  in-flight queue with 429 + ``Retry-After`` backpressure, per-tenant
  quotas, graceful drain;
* :mod:`repro.serve.http` — the stdlib asyncio HTTP front end
  (:class:`DiscoveryHTTPServer`, the ``serve`` CLI subcommand).
"""

from .http import DiscoveryHTTPServer, run_server
from .pool import ProcessShardPool, ServeConfig, split_budget
from .protocol import (
    PROTOCOL_VERSION,
    ShardError,
    ShardQuery,
    ShardResult,
    Shutdown,
    WorkerReady,
)
from .quotas import (
    AdmissionController,
    AdmissionDecision,
    AdmissionTicket,
    TenantQuota,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionTicket",
    "DiscoveryHTTPServer",
    "PROTOCOL_VERSION",
    "ProcessShardPool",
    "ServeConfig",
    "ShardError",
    "ShardQuery",
    "ShardResult",
    "Shutdown",
    "TenantQuota",
    "WorkerReady",
    "run_server",
    "split_budget",
]
