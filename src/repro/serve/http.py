"""A stdlib-only asyncio HTTP/1.1 front end over :class:`DiscoverySession`.

No web framework: the serving surface is four small JSON routes and the
interesting parts — admission control, budget clamping, graceful drain — all
live in :mod:`repro.serve.quotas` and the session itself, so a hand-rolled
``asyncio.start_server`` loop keeps the dependency set at zero.

Routes::

    GET  /healthz       liveness + drain state (200 serving / 503 draining)
    GET  /metrics       the telemetry registry in Prometheus text format
    GET  /v1/engines    registered engine names
    GET  /v1/stats      admission counters + pool/scatter-gather statistics
                        + a snapshot of the telemetry metrics registry
    GET  /v1/slow       the slow-query log ring buffer, newest first
    POST /v1/discover   one DiscoveryRequest; the response body is the
                        stable SessionResult JSON envelope of
                        :meth:`repro.api.results.SessionResult.to_dict`

Tracing: ``POST /v1/discover`` accepts an ``X-Trace-Id`` request header
(joining the caller's trace) and always echoes the request's trace id back
in the ``X-Trace-Id`` response header, so a client can grep the server's
span file / slow log for exactly its request.

``POST /v1/discover`` carries the query table inline::

    {"query": {"name": "q", "columns": ["a", "b"], "rows": [["1", "x"]]},
     "key_columns": ["a", "b"], "k": 10, "engine": "mate",
     "deadline_seconds": 2.5, "max_pl_fetches": 10000}

The optional ``X-Tenant`` header attributes the request to a tenant for
quota accounting (default tenant otherwise).  Backpressure is explicit:
an admission refusal answers ``429`` with a ``Retry-After`` header (or
``503`` while draining) *before* any engine work happens, and the tenant
quota's per-request fetch cap is clamped onto the request budget so an
over-ask is bounded rather than rejected.

Every response closes its connection (``Connection: close``): serving
clients are expected to pool at a load balancer, and one-shot connections
keep the drain logic exact — when the listener closes and in-flight tickets
reach zero, the process owns no client state.
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import time
from typing import TYPE_CHECKING

from ..api.request import DiscoveryRequest
from ..datamodel import QueryTable, Table
from ..exceptions import MateError
from ..telemetry.trace import TraceContext
from .quotas import AdmissionController

if TYPE_CHECKING:  # pragma: no cover - imported for annotations only
    from ..api.session import DiscoverySession

#: Largest accepted ``POST /v1/discover`` body, in bytes.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Content type of the ``GET /metrics`` Prometheus exposition.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _HttpError(Exception):
    """Internal: maps straight to an error response."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class DiscoveryHTTPServer:
    """The serving front end: asyncio listener + admission + session."""

    def __init__(
        self,
        session: "DiscoverySession",
        admission: AdmissionController | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        default_engine: str = "mate",
        drain_timeout: float = 30.0,
    ):
        self.session = session
        self.admission = admission or AdmissionController()
        self.host = host
        self.port = port
        self.default_engine = default_engine
        self.drain_timeout = drain_timeout
        self._server: asyncio.AbstractServer | None = None
        # The server's counters live in the session's telemetry registry
        # (the same one GET /metrics renders); admission counters join it
        # through scrape-time callbacks.
        self.telemetry = session.telemetry
        registry = self.telemetry.metrics
        self._requests_total = registry.counter(
            "repro_http_requests_total", "Completed POST /v1/discover requests"
        )
        self._request_latency = registry.histogram(
            "repro_http_request_latency_seconds",
            "POST /v1/discover latency (admission to response)",
        )
        self.admission.register_metrics(registry)

    @property
    def requests_served(self) -> int:
        """Completed discovery requests (now backed by the registry)."""
        return int(self._requests_total.value)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start serving; ``port=0`` resolves to an ephemeral port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def drain_and_stop(self) -> None:
        """Graceful shutdown: refuse new work, finish in-flight, unbind.

        New admissions are refused (503) immediately; the listener stops
        accepting; in-flight requests get up to ``drain_timeout`` seconds to
        finish before the server closes anyway.
        """
        self.admission.begin_drain()
        if self._server is not None:
            self._server.close()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, self.admission.wait_drained, self.drain_timeout
        )
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, target, headers, body = await self._read_request(reader)
            except _HttpError as error:
                await self._respond(
                    writer, error.status, {"error": error.message}
                )
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            status, payload, extra_headers = await self._route(
                method, target, headers, body
            )
            await self._respond(writer, status, payload, extra_headers)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        request_line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
        if not request_line:
            raise _HttpError(400, "empty request")
        parts = request_line.split(" ")
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line: {request_line!r}")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                raise _HttpError(400, f"bad Content-Length: {length!r}") from None
            if n > MAX_BODY_BYTES:
                raise _HttpError(
                    413, f"body of {n} bytes exceeds {MAX_BODY_BYTES}"
                )
            body = await reader.readexactly(n)
        return method, target, headers, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: "dict | str",
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        # A dict payload is a JSON route; a str payload is pre-rendered text
        # (the Prometheus exposition of GET /metrics).
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = PROMETHEUS_CONTENT_TYPE
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        lines = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(
        self, method: str, target: str, headers: dict[str, str], body: bytes
    ):
        path = target.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET-only"}, None
            draining = self.admission.draining
            return (
                503 if draining else 200,
                {"status": "draining" if draining else "serving"},
                None,
            )
        if path == "/v1/engines":
            if method != "GET":
                return 405, {"error": "engines is GET-only"}, None
            return 200, {"engines": self.session.registry.names()}, None
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "metrics is GET-only"}, None
            return 200, self.telemetry.metrics.render_prometheus(), None
        if path == "/v1/stats":
            if method != "GET":
                return 405, {"error": "stats is GET-only"}, None
            return 200, self._stats(), None
        if path == "/v1/slow":
            if method != "GET":
                return 405, {"error": "slow is GET-only"}, None
            slow_log = self.telemetry.slow_log
            return 200, {
                "threshold_seconds": slow_log.threshold_seconds,
                "capacity": slow_log.capacity,
                "recorded_total": slow_log.recorded_total,
                "slow_queries": slow_log.entries(),
            }, None
        if path == "/v1/discover":
            if method != "POST":
                return 405, {"error": "discover is POST-only"}, None
            return await self._discover(headers, body)
        return 404, {"error": f"unknown path {path!r}"}, None

    def _stats(self) -> dict:
        stats: dict[str, object] = {
            "requests_served": self.requests_served,
            "admission": self.admission.stats(),
            "engines": self.session.engines(),
            "execution": getattr(self.session, "execution", "thread"),
            # The registry snapshot is the same data GET /metrics renders as
            # Prometheus text — /v1/stats is rebuilt on top of it while the
            # legacy fields above keep their shape.
            "metrics": self.telemetry.metrics.snapshot(),
        }
        # Surface pool statistics when a process pool is among the cached
        # engines (scatter/gather stage totals, hedge counters, workers).
        pools = [
            engine.statistics()
            for engine in self.session.cached_engines()
            if hasattr(engine, "statistics")
        ]
        if pools:
            stats["pools"] = pools
        return stats

    async def _discover(self, headers: dict[str, str], body: bytes):
        tenant = headers.get("x-tenant", "default")
        decision = self.admission.try_acquire(tenant)
        if not decision.admitted:
            extra = None
            if decision.retry_after_seconds is not None:
                extra = {
                    "Retry-After": str(
                        max(1, math.ceil(decision.retry_after_seconds))
                    )
                }
            return decision.status, {"error": decision.reason}, extra
        try:
            try:
                request = self._parse_request(body)
            except _HttpError as error:
                return error.status, {"error": error.message}, None
            # Join the caller's trace when it sent X-Trace-Id; otherwise a
            # fresh root is opened (when tracing is enabled).  The trace id
            # is always echoed back so the client can correlate.
            trace_header = headers.get("x-trace-id", "").strip()
            parent = TraceContext(trace_id=trace_header) if trace_header else None
            started = time.perf_counter()
            tracer = self.telemetry.tracer
            with tracer.span(
                "http.discover",
                parent=parent,
                attributes={"tenant": tenant, "engine": request.engine},
            ) as span:
                try:
                    result = await self.session.asubmit(request)
                except MateError as error:
                    span.set_attribute("error", str(error))
                    return 500, {"error": str(error)}, self._trace_headers(
                        span, trace_header
                    )
            self._request_latency.observe(time.perf_counter() - started)
            self._requests_total.inc()
            return 200, result.to_dict(), self._trace_headers(span, trace_header)
        finally:
            assert decision.ticket is not None
            self.admission.release(decision.ticket)

    @staticmethod
    def _trace_headers(span, trace_header: str) -> dict[str, str] | None:
        trace_id = span.trace_id or trace_header
        return {"X-Trace-Id": trace_id} if trace_id else None

    def _parse_request(self, body: bytes) -> DiscoveryRequest:
        try:
            document = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"body is not valid JSON: {exc}") from exc
        if not isinstance(document, dict):
            raise _HttpError(400, "body must be a JSON object")
        query_doc = document.get("query")
        if not isinstance(query_doc, dict):
            raise _HttpError(400, 'body needs a "query" object')
        key_columns = document.get("key_columns")
        if not isinstance(key_columns, list) or not key_columns:
            raise _HttpError(400, 'body needs a non-empty "key_columns" list')
        try:
            table = Table(
                table_id=0,
                name=str(query_doc.get("name", "query")),
                columns=[str(c) for c in query_doc.get("columns", [])],
                rows=[
                    [str(cell) for cell in row]
                    for row in query_doc.get("rows", [])
                ],
            )
            query = QueryTable(
                table=table, key_columns=[str(c) for c in key_columns]
            )
        except MateError as exc:
            raise _HttpError(400, f"invalid query table: {exc}") from exc
        max_pl_fetches = document.get("max_pl_fetches")
        quota = self.admission.tenant_quota
        max_pl_fetches = quota.clamp_fetches(
            None if max_pl_fetches is None else int(max_pl_fetches)
        )
        deadline = document.get("deadline_seconds")
        try:
            return DiscoveryRequest(
                query=query,
                k=None if document.get("k") is None else int(document["k"]),
                engine=str(document.get("engine", self.default_engine)),
                deadline_seconds=None if deadline is None else float(deadline),
                max_pl_fetches=max_pl_fetches,
                request_id=str(document.get("request_id") or ""),
            )
        except MateError as exc:
            raise _HttpError(400, f"invalid request: {exc}") from exc


async def _serve_until_signalled(server: DiscoveryHTTPServer) -> None:
    await server.start()
    # The smoke scripts parse this exact line to find the ephemeral port.
    print(f"serving on http://{server.host}:{server.port}", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-Unix event loops; rely on KeyboardInterrupt
    await stop.wait()
    print("draining...", flush=True)
    await server.drain_and_stop()
    print("drained, bye", flush=True)


def run_server(server: DiscoveryHTTPServer) -> int:
    """Serve until SIGINT/SIGTERM, drain gracefully, return the exit code."""
    try:
        asyncio.run(_serve_until_signalled(server))
    except KeyboardInterrupt:  # pragma: no cover - non-Unix fallback
        pass
    return 0


__all__ = [
    "DiscoveryHTTPServer",
    "MAX_BODY_BYTES",
    "run_server",
]
