"""The IPC protocol between the pool parent and its shard worker processes.

One message class per interaction, all plain picklable dataclasses sent over
:mod:`multiprocessing` pipe connections.  The protocol is deliberately tiny —
a worker owns exactly one shard and answers one kind of question — and
versioned so a parent never talks to a worker built from different code (a
stale spawn snapshot, a partially upgraded deployment).

Wire flow::

    parent                              worker (one per shard, + mirrors)
      |  -- WorkerReady? ---------------  sends WorkerReady on startup
      |  -- ShardQuery(task_id, ...) -->  runs MateDiscovery on its shard
      |  <-- ShardResult(task_id, ...) -  (or ShardError on failure)
      |  -- Shutdown() --------------->   closes its segment and exits

``ShardQuery`` carries the per-shard slice of the request budget (the fetch
share computed by :func:`repro.serve.pool.split_budget` and the remaining
wall-clock allowance measured at scatter time); ``ShardResult`` reports the
ledger state back so the parent can reconcile the global
:class:`~repro.api.request.RequestBudget` on gather.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.results import DiscoveryResult
from ..datamodel import QueryTable
from ..telemetry.trace import TraceContext

#: Version of the parent/worker wire protocol; bumped on any message change.
#: v2 added the planner/sketch fields of :class:`ShardQuery` (the
#: approximate candidate tier running inside each shard worker).
#: v3 added distributed tracing: the ``trace`` context on
#: :class:`ShardQuery` and the finished worker ``spans`` shipped back on
#: :class:`ShardResult`, so one exporter file reconstructs the full
#: cross-process span tree.
PROTOCOL_VERSION: int = 3


@dataclass(frozen=True)
class WorkerReady:
    """Handshake a worker sends once its segment is mapped and engine built."""

    shard_index: int
    pid: int
    protocol_version: int = PROTOCOL_VERSION
    num_tables: int = 0
    num_postings: int = 0


@dataclass(frozen=True)
class ShardQuery:
    """One scattered top-k probe against a single shard."""

    task_id: int
    query: QueryTable
    k: int
    #: This shard's slice of the request's posting-list fetch budget
    #: (``None`` when the request is unlimited).
    max_pl_fetches: int | None = None
    #: Remaining wall-clock allowance at scatter time (``None`` = no deadline).
    deadline_seconds: float | None = None
    #: Per-request planner options (``None`` = the engine's classic
    #: selector path), forwarded verbatim to each shard's engine.
    planner: object | None = None
    #: Per-request sketch options of planner mode ``"sketch"`` (``None`` =
    #: no approximate tier); each worker prunes against its own shard's
    #: persisted sketch store.
    sketch: object | None = None
    #: Distributed-tracing context (trace id + parent span id) of the
    #: scattering request; ``None`` when tracing is off.  The worker opens
    #: its ``shard.discover`` span under this parent.
    trace: TraceContext | None = None


@dataclass(frozen=True)
class ShardResult:
    """A worker's answer to one :class:`ShardQuery`."""

    task_id: int
    shard_index: int
    result: DiscoveryResult
    #: Which replica answered: 0 is the shard's primary owner, 1 its hedge
    #: mirror (both map the same segment file; first reply wins).
    replica: int = 0
    #: Fetches actually consumed out of the granted share (0 when unlimited).
    consumed_pl_fetches: int = 0
    #: Whether the shard's local fetch share ran out mid-initialization.
    exhausted: bool = False
    #: Whether the shard observed its deadline slice as expired.
    expired: bool = False
    #: Wall-clock seconds the worker spent inside the engine.
    seconds: float = 0.0
    #: Finished span dictionaries collected in the worker for this task
    #: (empty when the query carried no trace context); the parent
    #: re-exports them so the cross-process tree lands in one file.
    spans: tuple = ()


@dataclass(frozen=True)
class ShardError:
    """A worker-side failure, relayed instead of a :class:`ShardResult`."""

    task_id: int
    shard_index: int
    kind: str
    message: str


@dataclass(frozen=True)
class Shutdown:
    """Ask a worker to close its mapped segment and exit cleanly."""

    reason: str = "close"


#: Message classes a parent may receive from a worker.
WORKER_MESSAGES = (WorkerReady, ShardResult, ShardError)

#: Message classes a worker may receive from its parent.
PARENT_MESSAGES = (ShardQuery, Shutdown)


@dataclass
class ProtocolStats:
    """Per-connection message accounting (exposed via pool statistics)."""

    sent: int = 0
    received: int = 0
    errors: int = 0

    def as_dict(self) -> dict[str, int]:
        """Return the accounting as a plain dictionary."""
        return {"sent": self.sent, "received": self.received, "errors": self.errors}


__all__ = [
    "PROTOCOL_VERSION",
    "PARENT_MESSAGES",
    "WORKER_MESSAGES",
    "ProtocolStats",
    "ShardError",
    "ShardQuery",
    "ShardResult",
    "Shutdown",
    "WorkerReady",
]
