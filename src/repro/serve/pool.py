"""Process-pool shard execution: one worker process per corpus shard.

The in-process :class:`~repro.core.parallel.ShardedMateDiscovery` fans a
query out over per-shard engines on *threads*, so the CPU-bound parts of
Algorithm 1 serialise on the GIL.  :class:`ProcessShardPool` keeps the exact
same sharding (:func:`~repro.core.parallel.shard_corpus`) and the exact same
merge (:func:`~repro.core.parallel.merge_discovery_results`) — so its top-k
is byte-identical to ``engine="sharded"`` — but runs every shard in its own
worker *process*:

* the pool builds one columnar index per shard, persists it as a binary
  ``.seg`` file (:func:`~repro.storage.paged.write_segment`), and each worker
  reopens its file via :func:`~repro.storage.paged.reopen_segment` /
  :class:`~repro.storage.paged.MappedSegmentIndex` — the mmap'd pages are
  shared between processes, so per-worker opens cost only the directory
  parse and hedge mirrors add no index memory;
* scatter/gather runs over pipe connections with the typed messages of
  :mod:`repro.serve.protocol`; a per-worker receiver thread resolves replies
  into task slots, so concurrent ``discover`` calls (the serving front end
  runs many) interleave safely on the same pool;
* a per-request :class:`~repro.api.request.RequestBudget` is *split* across
  shards at scatter time (:func:`split_budget`: floor share plus one of the
  remainder to the lowest shard indexes — deterministic) and *reconciled* on
  gather: consumed fetches are charged back to the caller's ledger and the
  latched ``exhausted`` / ``expired`` flags are ORed across shards;
* optional hedged requests: with ``hedge_after_seconds`` set, every shard
  also gets a mirror worker mapping the same segment; a shard that has not
  answered within the hedge delay is re-sent to its mirror and the first
  reply wins (replicas are deterministic replays of the same work, so
  hedging never changes the result, only the tail latency).

The pool exposes ``discover(query, k, budget=)`` — the engine surface the
:class:`~repro.api.session.DiscoverySession` dispatches to — and is what
``DiscoverySession(..., execution="process")`` builds behind
``engine="sharded"``.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import shutil
import signal
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from ..config import MateConfig
from ..core.parallel import (
    ShardStatistics,
    merge_discovery_results,
    shard_corpus,
)
from ..core.results import DiscoveryResult
from ..datamodel import QueryTable, TableCorpus
from ..exceptions import ConfigurationError, DiscoveryError
from ..index import IndexBuilder
from ..metrics.serving import ServeMetrics
from ..metrics.timing import StageStats
from ..telemetry import trace as _trace
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolStats,
    ShardError,
    ShardQuery,
    ShardResult,
    Shutdown,
    WorkerReady,
)


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the process-pool execution mode.

    Parameters
    ----------
    num_shards:
        Worker processes (= corpus shards) the pool runs.
    hedge_after_seconds:
        Tail-latency hedging: a shard that has not answered within this many
        seconds is re-sent to a mirror worker mapping the same segment, and
        the first reply wins.  ``None`` disables hedging (no mirrors are
        started).
    mp_context:
        :mod:`multiprocessing` start method (``"fork"`` / ``"spawn"`` /
        ``"forkserver"``); ``None`` uses the platform default.  The worker
        entry point is a module-level function, so every method works.
    segments_dir:
        Directory the per-shard ``.seg`` files are written to.  ``None``
        uses a private temporary directory removed on :meth:`close`; a given
        directory is left in place (segments can be inspected or reused).
    worker_start_timeout:
        Seconds to wait for each worker's startup handshake.
    """

    num_shards: int = 4
    hedge_after_seconds: float | None = None
    mp_context: str | None = None
    segments_dir: str | Path | None = None
    worker_start_timeout: float = 60.0

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ConfigurationError(
                f"num_shards must be positive, got {self.num_shards}"
            )
        if self.hedge_after_seconds is not None and self.hedge_after_seconds < 0:
            raise ConfigurationError(
                "hedge_after_seconds must be non-negative, got "
                f"{self.hedge_after_seconds}"
            )


def split_budget(total: int | None, num_shards: int) -> list[int | None]:
    """Split a fetch budget into deterministic per-shard shares.

    Every shard gets the floor share; the remainder goes to the lowest shard
    indexes, one fetch each, so the split is reproducible and the shares sum
    exactly to ``total``.  ``None`` (unlimited) stays ``None`` everywhere.
    """
    if num_shards <= 0:
        raise DiscoveryError(f"num_shards must be positive, got {num_shards}")
    if total is None:
        return [None] * num_shards
    if total < 0:
        raise DiscoveryError(f"budget must be non-negative, got {total}")
    base, remainder = divmod(total, num_shards)
    return [
        base + (1 if shard_index < remainder else 0)
        for shard_index in range(num_shards)
    ]


def _worker_main(
    conn,
    shard_index: int,
    replica: int,
    segment_path: str,
    corpus: TableCorpus,
    config: MateConfig,
    hash_function_name: str,
    column_selector,
    row_filter_mode: str,
    use_table_filters: bool,
) -> None:
    """Worker entry point: own one shard, answer scattered probes.

    Module-level (not a closure) so it pickles under the ``spawn`` start
    method.  The worker maps its shard's segment read-only, builds the
    standard per-shard :class:`~repro.core.discovery.MateDiscovery` engine
    over it, and loops on the pipe until a :class:`Shutdown` (or EOF — the
    parent died) arrives.  SIGINT is ignored: on Ctrl-C the parent drives a
    graceful drain and shuts workers down explicitly.
    """
    from contextlib import nullcontext

    from ..api.request import RequestBudget
    from ..core.discovery import MateDiscovery
    from ..exceptions import MateError
    from ..sketch import SketchIndex
    from ..storage.paged import reopen_segment
    from ..telemetry.trace import CollectingExporter, Tracer

    # Lazy worker-side tracer: built on the first traced query (protocol v3
    # puts a TraceContext on the ShardQuery), collects finished spans in
    # memory and ships them back on each ShardResult.  Untraced workloads
    # never pay for it.
    worker_exporter: CollectingExporter | None = None
    worker_tracer: Tracer | None = None

    try:  # pragma: no cover - signal wiring is exercised via the CLI smoke
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        # A fork()ed worker inherits whatever SIGTERM handler the parent had
        # installed (the serve CLI's asyncio loop registers one); restore the
        # default so terminate() — including multiprocessing's atexit cleanup
        # of daemon children — actually kills the worker instead of feeding a
        # meaningless callback.
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):
        pass
    index = reopen_segment(
        segment_path,
        hash_function_name=hash_function_name,
        hash_size=config.hash_size,
    )
    # The parent persisted this shard's sketch store next to its segment
    # (same stem, ``.json``/``.bin``); loading is deferred until the first
    # sketch-mode query so exact-only workloads never pay for it.
    segment = Path(segment_path)
    engine = MateDiscovery(
        corpus,
        index,
        config=config,
        hash_function_name=hash_function_name,
        column_selector=column_selector,
        row_filter_mode=row_filter_mode,
        use_table_filters=use_table_filters,
        sketch_provider=lambda: SketchIndex.load(segment.parent, segment.stem),
    )
    conn.send(
        WorkerReady(
            shard_index=shard_index,
            pid=os.getpid(),
            num_tables=len(corpus),
            num_postings=index.num_posting_items(),
        )
    )
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if isinstance(message, Shutdown):
                break
            if not isinstance(message, ShardQuery):
                continue
            try:
                budget = None
                if (
                    message.max_pl_fetches is not None
                    or message.deadline_seconds is not None
                ):
                    if (
                        message.deadline_seconds is not None
                        and message.deadline_seconds <= 0
                    ):
                        # The global deadline already passed at scatter time:
                        # answer with an immediately expired ledger instead
                        # of rejecting the (valid) request.
                        budget = RequestBudget(
                            max_pl_fetches=message.max_pl_fetches
                        )
                        budget.cancel()
                    else:
                        budget = RequestBudget(
                            deadline_seconds=message.deadline_seconds,
                            max_pl_fetches=message.max_pl_fetches,
                        )
                run_kwargs = {}
                if message.planner is not None:
                    run_kwargs["planner"] = message.planner
                if message.sketch is not None:
                    run_kwargs["sketch"] = message.sketch
                if message.trace is not None:
                    if worker_tracer is None:
                        worker_exporter = CollectingExporter()
                        worker_tracer = Tracer(worker_exporter)
                    span_cm = worker_tracer.span(
                        "shard.discover",
                        parent=message.trace,
                        attributes={
                            "shard_index": shard_index,
                            "replica": replica,
                        },
                    )
                else:
                    span_cm = nullcontext()
                with span_cm as span:
                    started = time.perf_counter()
                    result = engine.discover(
                        message.query, k=message.k, budget=budget, **run_kwargs
                    )
                    result.counters.runtime_seconds = (
                        time.perf_counter() - started
                    )
                    consumed = 0
                    exhausted = expired = False
                    if budget is not None:
                        if message.max_pl_fetches is not None:
                            consumed = message.max_pl_fetches - (
                                budget.remaining_pl_fetches or 0
                            )
                        exhausted = budget.exhausted
                        expired = budget.expired
                    if span is not None:
                        span.set_attribute("tables", len(result.tables))
                        span.set_attribute("consumed_pl_fetches", consumed)
                spans: tuple = ()
                if message.trace is not None and worker_exporter is not None:
                    spans = tuple(worker_exporter.drain())
                reply = ShardResult(
                    task_id=message.task_id,
                    shard_index=shard_index,
                    result=result,
                    replica=replica,
                    consumed_pl_fetches=consumed,
                    exhausted=exhausted,
                    expired=expired,
                    seconds=result.counters.runtime_seconds,
                    spans=spans,
                )
            except MateError as error:
                reply = ShardError(
                    task_id=message.task_id,
                    shard_index=shard_index,
                    kind=type(error).__name__,
                    message=str(error),
                )
            except Exception as error:  # noqa: BLE001 - relayed to the parent
                reply = ShardError(
                    task_id=message.task_id,
                    shard_index=shard_index,
                    kind=type(error).__name__,
                    message=str(error),
                )
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        index.close()
        conn.close()


class _Worker:
    """Parent-side handle of one worker process (primary or mirror)."""

    def __init__(self, shard_index: int, replica: int, process, conn):
        self.shard_index = shard_index
        self.replica = replica
        self.process = process
        self.conn = conn
        self.alive = True
        self.stats = ProtocolStats()
        self._send_lock = threading.Lock()
        self.ready: WorkerReady | None = None

    @property
    def label(self) -> str:
        role = "mirror" if self.replica else "primary"
        return f"shard {self.shard_index} ({role})"

    def send(self, message) -> bool:
        """Send one message; returns ``False`` when the worker is gone."""
        if not self.alive:
            return False
        try:
            with self._send_lock:
                self.conn.send(message)
        except (BrokenPipeError, OSError):
            return False
        self.stats.sent += 1
        return True


class _TaskSlot:
    """One scattered shard probe awaiting its first (winning) reply."""

    __slots__ = ("shard_index", "event", "reply", "errors", "outstanding",
                 "hedged", "workers", "message")

    def __init__(self, shard_index: int):
        self.shard_index = shard_index
        self.event = threading.Event()
        self.reply: ShardResult | None = None
        self.errors: list[ShardError] = []
        self.outstanding = 0
        self.hedged = False
        self.workers: list[_Worker] = []
        self.message: ShardQuery | None = None


class ProcessShardPool:
    """Corpus-sharded discovery over a pool of shard-owning processes.

    The engine surface matches :class:`~repro.core.parallel.ShardedMateDiscovery`
    (``discover(query, k)`` plus ``last_shard_statistics``) and additionally
    accepts the ``budget=`` keyword — the pool is registered capable of
    per-request limits even though its *spec* (shared with the thread-mode
    engine) is not, via the instance-level ``supports_budget`` flag the
    session consults.
    """

    system_name = "mate-sharded"
    #: Instance-level capability flags (see DiscoverySession._run_kwargs):
    #: budgets are split across shards and reconciled on gather; planner and
    #: sketch options travel verbatim inside each ShardQuery and run inside
    #: every shard worker (each pruning against its own persisted sketch
    #: store, so ``SketchOptions.max_candidates`` caps per shard).
    supports_budget = True
    supports_planner = True
    supports_sketch = True

    def __init__(
        self,
        corpus: TableCorpus,
        config: MateConfig | None = None,
        hash_function_name: str = "xash",
        column_selector="cardinality",
        row_filter_mode: str = "superkey",
        use_table_filters: bool = True,
        serve_config: ServeConfig | None = None,
        telemetry=None,
    ):
        self.config = config or MateConfig()
        if self.config.index_layout != "columnar":
            raise ConfigurationError(
                'execution="process" requires the columnar index layout '
                f"(segments are columnar; got {self.config.index_layout!r})"
            )
        self.serve_config = serve_config or ServeConfig()
        self.hash_function_name = hash_function_name
        self.column_selector = column_selector
        self.row_filter_mode = row_filter_mode
        self.use_table_filters = use_table_filters
        self.shards = shard_corpus(corpus, self.serve_config.num_shards)
        self.last_shard_statistics: list[ShardStatistics] = []
        self.metrics = ServeMetrics()
        self.telemetry = telemetry
        if telemetry is not None:
            self._register_metrics(telemetry.metrics)
        self._tasks: dict[int, _TaskSlot] = {}
        self._tasks_lock = threading.Lock()
        self._task_ids = itertools.count(1)
        self._closed = False
        self._receivers: list[threading.Thread] = []

        if self.serve_config.segments_dir is None:
            self._segments_dir = Path(tempfile.mkdtemp(prefix="mate-serve-"))
            self._owns_segments_dir = True
        else:
            self._segments_dir = Path(self.serve_config.segments_dir)
            self._segments_dir.mkdir(parents=True, exist_ok=True)
            self._owns_segments_dir = False

        try:
            self._segment_paths = self._write_shard_segments()
            self._context = multiprocessing.get_context(
                self.serve_config.mp_context
            )
            self._primaries = [
                self._start_worker(shard_index, replica=0)
                for shard_index in range(self.num_shards)
            ]
            self._mirrors: list[_Worker | None]
            if self.serve_config.hedge_after_seconds is not None:
                self._mirrors = [
                    self._start_worker(shard_index, replica=1)
                    for shard_index in range(self.num_shards)
                ]
            else:
                self._mirrors = [None] * self.num_shards
            for worker in self._all_workers():
                self._await_ready(worker)
            for worker in self._all_workers():
                self._start_receiver(worker)
        except BaseException:
            self.close()
            raise

    def _register_metrics(self, registry) -> None:
        """Expose the pool's :class:`ServeMetrics` through the registry.

        Scrape-time callbacks keep :class:`ServeMetrics` the single source
        of truth (the pool keeps mutating its plain fields on the hot path)
        while ``GET /metrics`` and ``/v1/stats`` read everything from one
        place.
        """
        metrics = self.metrics
        for name, fn, help_text in (
            ("repro_pool_requests_total", lambda: metrics.requests,
             "Scatter/gather requests served by the process pool"),
            ("repro_pool_hedges_sent_total", lambda: metrics.hedges_sent,
             "Duplicate shard probes sent past the hedge delay"),
            ("repro_pool_hedge_wins_total", lambda: metrics.hedge_wins,
             "Hedged probes where the mirror answered first"),
            ("repro_pool_replies_discarded_total",
             lambda: metrics.replies_discarded,
             "Late or duplicate shard replies dropped"),
            ("repro_pool_scatter_seconds_total", lambda: metrics.scatter.seconds,
             "Cumulative scatter-side seconds"),
            ("repro_pool_gather_seconds_total", lambda: metrics.gather.seconds,
             "Cumulative gather-side seconds"),
            ("repro_pool_shard_seconds_total", lambda: metrics.shard_seconds,
             "Cumulative worker-side engine seconds across shards"),
            ("repro_pool_straggler_seconds_total",
             lambda: metrics.straggler_seconds,
             "Cumulative slowest-shard seconds per request"),
        ):
            registry.counter_callback(name, fn, help_text)
        registry.gauge_callback(
            "repro_pool_num_shards",
            lambda: self.num_shards,
            "Worker processes (= corpus shards) of the pool",
        )

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of corpus shards (= primary worker processes)."""
        return len(self.shards)

    def _write_shard_segments(self) -> list[Path]:
        """Build one columnar index per shard and persist it as a ``.seg``."""
        from ..storage.paged import write_segment

        builder = IndexBuilder(
            config=self.config, hash_function_name=self.hash_function_name
        )
        paths = []
        for shard_index, shard in enumerate(self.shards):
            path = self._segments_dir / f"shard_{shard_index:02d}.seg"
            index, sketch_index = builder.build_with_sketches(shard)
            write_segment(index, path, fsync=False)
            # The shard's sketch store lands next to its segment under the
            # same stem; workers lazily load it for sketch-mode requests.
            sketch_index.save(self._segments_dir, stem=path.stem)
            paths.append(path)
        return paths

    def _start_worker(self, shard_index: int, replica: int) -> _Worker:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(
                child_conn,
                shard_index,
                replica,
                str(self._segment_paths[shard_index]),
                self.shards[shard_index],
                self.config,
                self.hash_function_name,
                self.column_selector,
                self.row_filter_mode,
                self.use_table_filters,
            ),
            name=f"mate-shard-{shard_index}" + ("-mirror" if replica else ""),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(shard_index, replica, process, parent_conn)

    def _await_ready(self, worker: _Worker) -> None:
        timeout = self.serve_config.worker_start_timeout
        if not worker.conn.poll(timeout):
            raise DiscoveryError(
                f"worker for {worker.label} did not report ready within "
                f"{timeout}s"
            )
        try:
            ready = worker.conn.recv()
        except (EOFError, OSError) as exc:
            raise DiscoveryError(
                f"worker for {worker.label} died during startup"
            ) from exc
        if not isinstance(ready, WorkerReady):
            raise DiscoveryError(
                f"worker for {worker.label} sent {type(ready).__name__} "
                "instead of the ready handshake"
            )
        if ready.protocol_version != PROTOCOL_VERSION:
            raise ConfigurationError(
                f"worker for {worker.label} speaks protocol "
                f"{ready.protocol_version}, parent speaks {PROTOCOL_VERSION}"
            )
        worker.ready = ready

    def _all_workers(self):
        for worker in self._primaries:
            yield worker
        for worker in self._mirrors:
            if worker is not None:
                yield worker

    def _start_receiver(self, worker: _Worker) -> None:
        thread = threading.Thread(
            target=self._receive_loop,
            args=(worker,),
            name=f"mate-recv-{worker.shard_index}-{worker.replica}",
            daemon=True,
        )
        thread.start()
        self._receivers.append(thread)

    # ------------------------------------------------------------------
    # Reply routing
    # ------------------------------------------------------------------
    def _receive_loop(self, worker: _Worker) -> None:
        while True:
            try:
                message = worker.conn.recv()
            except (EOFError, OSError):
                self._worker_died(worker)
                return
            worker.stats.received += 1
            if isinstance(message, (ShardResult, ShardError)):
                self._deliver(message)

    def _deliver(self, message) -> None:
        with self._tasks_lock:
            slot = self._tasks.get(message.task_id)
            if slot is None:
                self.metrics.replies_discarded += 1
                return
            slot.outstanding -= 1
            if isinstance(message, ShardResult):
                if slot.reply is None:
                    slot.reply = message
                    slot.event.set()
                else:
                    self.metrics.replies_discarded += 1
            else:
                slot.errors.append(message)
                if slot.reply is None and slot.outstanding <= 0:
                    # No worker left to answer: wake the waiter with the
                    # error (slot.reply stays None).
                    slot.event.set()

    def _worker_died(self, worker: _Worker) -> None:
        worker.alive = False
        worker.stats.errors += 1
        with self._tasks_lock:
            pending = [
                (task_id, slot)
                for task_id, slot in self._tasks.items()
                if worker in slot.workers and slot.reply is None
            ]
        for task_id, slot in pending:
            self._deliver(
                ShardError(
                    task_id=task_id,
                    shard_index=slot.shard_index,
                    kind="WorkerCrash",
                    message=f"worker process for {worker.label} exited "
                    "before answering",
                )
            )

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def discover(
        self,
        query: QueryTable,
        k: int | None = None,
        *,
        budget=None,
        planner=None,
        sketch=None,
    ) -> DiscoveryResult:
        """Scatter ``query`` across the shard workers and merge the top-k.

        Identical output to :meth:`ShardedMateDiscovery.discover
        <repro.core.parallel.ShardedMateDiscovery.discover>` on the same
        corpus and shard count; additionally honours a per-request
        :class:`~repro.api.request.RequestBudget` by splitting the fetch
        share deterministically across shards and reconciling the ledger on
        gather.  ``planner`` / ``sketch`` options are forwarded verbatim to
        every shard worker: each runs the full planner pipeline on its own
        shard, with sketch-mode pruning against the shard's persisted
        sketch store (a ``max_candidates`` cap therefore applies per
        shard).
        """
        if self._closed:
            raise DiscoveryError("the process pool is closed")
        if k is None:
            k = self.config.k
        if k <= 0:
            raise DiscoveryError(f"k must be positive, got {k}")

        # Distributed tracing: when the caller runs under a span (the
        # session's root), open a pool span beneath it and ride its context
        # on every ShardQuery; the workers' finished spans come back on the
        # ShardResults and are re-exported here so the whole cross-process
        # tree lands in the caller's exporter.  One global-int check when
        # tracing is off.
        tracer = pool_span = trace_context = None
        if _trace._ACTIVE:
            entry = _trace.current_entry()
            if entry is not None:
                tracer = entry[0]
                pool_span = tracer.start_span(
                    "pool.discover",
                    attributes={"num_shards": self.num_shards, "k": k},
                )
                trace_context = pool_span.context()
        try:
            return self._discover_traced(
                query, k, budget, planner, sketch, tracer, trace_context
            )
        finally:
            if tracer is not None and pool_span is not None:
                tracer.end_span(pool_span)

    def _discover_traced(
        self, query, k, budget, planner, sketch, tracer, trace_context
    ) -> DiscoveryResult:
        shares = split_budget(
            budget.remaining_pl_fetches if budget is not None else None,
            self.num_shards,
        )
        deadline_left = (
            budget.remaining_seconds() if budget is not None else None
        )

        scatter = StageStats()
        slots: list[_TaskSlot] = []
        with scatter.measure():
            for shard_index in range(self.num_shards):
                slots.append(
                    self._scatter_one(
                        shard_index,
                        query,
                        k,
                        shares[shard_index],
                        deadline_left,
                        planner,
                        sketch,
                        trace_context,
                    )
                )
        scatter.add_items(self.num_shards, self.num_shards)

        gather = StageStats()
        replies: list[ShardResult] = []
        try:
            with gather.measure():
                for slot in slots:
                    replies.append(self._gather_one(slot))
        finally:
            with self._tasks_lock:
                for slot in slots:
                    if slot.message is not None:
                        self._tasks.pop(slot.message.task_id, None)

        if tracer is not None:
            for reply in replies:
                tracer.export_foreign(reply.spans)
        merged = self._merge(replies, k, budget)
        gather.add_items(
            sum(len(reply.result.tables) for reply in replies),
            len(merged.tables),
        )
        merged.counters.stages["scatter"] = scatter
        merged.counters.stages["gather"] = gather
        self.metrics.record(scatter, gather, [r.seconds for r in replies])
        hedged = sum(1 for slot in slots if slot.hedged)
        wins = sum(1 for reply in replies if reply.replica == 1)
        self.metrics.hedges_sent += hedged
        self.metrics.hedge_wins += wins
        if self.serve_config.hedge_after_seconds is not None:
            merged.counters.extra["hedged_requests"] = float(hedged)
            merged.counters.extra["hedge_wins"] = float(wins)
        return merged

    def _scatter_one(
        self,
        shard_index: int,
        query: QueryTable,
        k: int,
        share: int | None,
        deadline_left: float | None,
        planner=None,
        sketch=None,
        trace_context=None,
    ) -> _TaskSlot:
        task_id = next(self._task_ids)
        message = ShardQuery(
            task_id=task_id,
            query=query,
            k=k,
            max_pl_fetches=share,
            deadline_seconds=deadline_left,
            planner=planner,
            sketch=sketch,
            trace=trace_context,
        )
        slot = _TaskSlot(shard_index)
        slot.message = message
        primary = self._primaries[shard_index]
        mirror = self._mirrors[shard_index]
        with self._tasks_lock:
            self._tasks[task_id] = slot
        target = primary
        if not primary.alive and mirror is not None and mirror.alive:
            # Fail over at scatter time: the mirror owns the same segment.
            target, slot.hedged = mirror, True
        with self._tasks_lock:
            slot.outstanding += 1
            slot.workers.append(target)
        if not target.send(message):
            self._worker_died(target)
        return slot

    def _hedge(self, slot: _TaskSlot) -> None:
        mirror = self._mirrors[slot.shard_index]
        if mirror is None or not mirror.alive:
            return
        with self._tasks_lock:
            if slot.hedged or slot.reply is not None:
                return
            slot.hedged = True
            slot.outstanding += 1
            slot.workers.append(mirror)
            slot.event.clear()
        if not mirror.send(slot.message):
            self._worker_died(mirror)

    def _gather_one(self, slot: _TaskSlot) -> ShardResult:
        hedge_after = self.serve_config.hedge_after_seconds
        if hedge_after is not None and not slot.hedged:
            if not slot.event.wait(hedge_after):
                self._hedge(slot)
        slot.event.wait()
        if slot.reply is None and not slot.hedged:
            # The primary failed (error or crash) before the hedge delay even
            # applied; retry once on the mirror when one exists.
            mirror = self._mirrors[slot.shard_index]
            if mirror is not None and mirror.alive:
                self._hedge(slot)
                slot.event.wait()
        reply = slot.reply
        if reply is None:
            error = slot.errors[0] if slot.errors else None
            detail = (
                f"{error.kind}: {error.message}"
                if error is not None
                else "no worker answered"
            )
            raise DiscoveryError(
                f"shard {slot.shard_index} failed in the process pool "
                f"({detail})"
            )
        return reply

    def _merge(
        self, replies: list[ShardResult], k: int, budget
    ) -> DiscoveryResult:
        ordered = sorted(replies, key=lambda reply: reply.shard_index)
        merged = merge_discovery_results(
            [reply.result for reply in ordered], k, system=self.system_name
        )
        merged.complete = all(reply.result.complete for reply in ordered)
        # Additive merging is right for counts but not for the sketch-tier
        # recall estimate (identical on every shard — same config, same
        # threshold); restore it to the per-shard value.
        recalls = [
            reply.result.counters.extra["sketch_estimated_recall"]
            for reply in ordered
            if "sketch_estimated_recall" in reply.result.counters.extra
        ]
        if recalls:
            merged.counters.extra["sketch_estimated_recall"] = max(recalls)
        self.last_shard_statistics = [
            ShardStatistics(
                shard_index=reply.shard_index,
                num_tables=len(self.shards[reply.shard_index]),
                pl_items_fetched=reply.result.counters.pl_items_fetched,
                rows_checked=reply.result.counters.rows_checked,
                runtime_seconds=reply.result.counters.runtime_seconds,
            )
            for reply in ordered
        ]
        if budget is not None:
            consumed = sum(reply.consumed_pl_fetches for reply in ordered)
            if budget.remaining_pl_fetches is not None and consumed:
                budget.take_pl_fetches(consumed)
            if any(reply.exhausted for reply in ordered):
                budget.exhausted = True
            if any(reply.expired for reply in ordered):
                budget.expired = True
        return merged

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def work_imbalance(self) -> float:
        """Busiest-to-average shard ratio of the last run (see the thread engine)."""
        if not self.last_shard_statistics:
            return 0.0
        rows = [s.rows_checked for s in self.last_shard_statistics]
        average = sum(rows) / len(rows)
        if average == 0:
            return 1.0
        return max(rows) / average

    def statistics(self) -> dict[str, object]:
        """Pool-lifetime serving statistics (the ``/v1/stats`` payload part)."""
        workers = []
        for worker in self._all_workers():
            entry: dict[str, object] = {
                "shard": worker.shard_index,
                "replica": worker.replica,
                "alive": worker.alive and worker.process.is_alive(),
            }
            entry.update(worker.stats.as_dict())
            if worker.ready is not None:
                entry["tables"] = worker.ready.num_tables
                entry["postings"] = worker.ready.num_postings
            workers.append(entry)
        return {
            "num_shards": self.num_shards,
            "hedging": self.serve_config.hedge_after_seconds is not None,
            "serve": self.metrics.as_dict(),
            "workers": workers,
        }

    def close(self) -> None:
        """Shut every worker down and remove owned segment files (idempotent)."""
        if self._closed:
            return
        self._closed = True
        workers = list(self._all_workers()) if hasattr(self, "_primaries") else []
        for worker in workers:
            worker.send(Shutdown())
        for worker in workers:
            worker.process.join(timeout=5)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5)
            worker.alive = False
            try:
                worker.conn.close()
            except OSError:
                pass
        with self._tasks_lock:
            pending = list(self._tasks.values())
            self._tasks.clear()
        for slot in pending:
            slot.event.set()
        if self._owns_segments_dir:
            shutil.rmtree(self._segments_dir, ignore_errors=True)

    def __enter__(self) -> "ProcessShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
