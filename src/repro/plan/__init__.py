"""Query planning: explicit pipeline stages, cost-based seed selection.

The :mod:`repro.plan` package decomposes Algorithm 1 into four composable
operators with a uniform ``run(PlanContext) -> StageResult`` contract
(:mod:`~repro.plan.stages`), a :class:`Planner` that picks the cheapest
initiator column from index statistics, and an :class:`Executor` that runs
the plan under budget/deadline enforcement with optional adaptive
re-planning.  :class:`~repro.core.discovery.MateDiscovery` (and through it
the sharded, SCR, and live engines) is a thin shell over this pipeline.
"""

from .context import PlanContext, StageResult
from .executor import Executor
from .options import DEFAULT_PLANNER_OPTIONS, PLANNER_MODES, PlannerOptions
from .planner import (
    PIPELINE_STAGES,
    SKETCH_PIPELINE_STAGES,
    STAGE_SKETCH_PRUNE,
    PlanReport,
    Planner,
    QueryPlan,
    ReplanEvent,
    SeedCandidate,
)
from .stages import (
    CandidateGeneration,
    PlanStage,
    RowVerification,
    SketchPrune,
    SuperKeyPrefilter,
    TopKMaintenance,
)

__all__ = [
    "CandidateGeneration",
    "DEFAULT_PLANNER_OPTIONS",
    "Executor",
    "PIPELINE_STAGES",
    "PLANNER_MODES",
    "PlanContext",
    "PlanReport",
    "PlanStage",
    "Planner",
    "PlannerOptions",
    "QueryPlan",
    "ReplanEvent",
    "RowVerification",
    "SKETCH_PIPELINE_STAGES",
    "STAGE_SKETCH_PRUNE",
    "SeedCandidate",
    "SketchPrune",
    "StageResult",
    "SuperKeyPrefilter",
    "TopKMaintenance",
]
