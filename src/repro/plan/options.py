"""Planner knobs carried per request (:attr:`DiscoveryRequest.planner`).

:class:`PlannerOptions` is deliberately tiny and frozen: it travels on the
immutable :class:`~repro.api.request.DiscoveryRequest`, is excluded from the
engine-cache signature (planning is a per-run decision, not engine
configuration), and defaults to the legacy behaviour — seed the run with the
request's column selector, no re-planning — so an unconfigured request is
byte-identical to the pre-planner engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError

#: Seed-selection modes of the planner.
#:
#: * ``selector`` — the request's classic column selector picks the seed
#:   (byte-identical to the pre-planner engine; the default);
#: * ``cost``     — the planner's cost model picks the cheapest seed column;
#: * ``adaptive`` — ``cost`` plus chunked fetching with mid-run re-planning
#:   when the observed fetch cost blows past the estimate;
#: * ``sketch``   — ``selector`` seeding plus the approximate candidate
#:   tier: the MinHash-LSH ``SketchPrune`` stage (:mod:`repro.sketch`)
#:   shrinks the fetch universe ahead of candidate generation, governed by
#:   the request's :class:`~repro.sketch.SketchOptions`.
PLANNER_MODES: tuple[str, ...] = ("selector", "cost", "adaptive", "sketch")


@dataclass(frozen=True)
class PlannerOptions:
    """Per-request planning knobs.

    Parameters
    ----------
    mode:
        One of :data:`PLANNER_MODES`.
    replan_factor:
        Adaptive mode only: re-plan once the observed PL items of the seed
        column exceed ``replan_factor`` times the (prorated) estimate.
    replan_check_every:
        Adaptive mode only: number of probe values fetched per chunk; the
        cost check runs between chunks.
    sample_size:
        Posting-list lengths measured per candidate seed column when
        estimating its fetch volume (see
        :func:`repro.index.statistics.estimate_posting_volume`).
    verification_weight:
        Cost units charged per predicted fetched PL item (each fetched item
        is a candidate row the filter/verification stages must look at).
    fetch_weight:
        Cost units charged per probe value (one posting-list fetch each).
    """

    mode: str = "selector"
    replan_factor: float = 4.0
    replan_check_every: int = 64
    sample_size: int = 32
    verification_weight: float = 1.0
    fetch_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in PLANNER_MODES:
            raise ConfigurationError(
                f"unknown planner mode {self.mode!r}; "
                f"expected one of {PLANNER_MODES}"
            )
        if self.replan_factor < 1.0:
            raise ConfigurationError(
                f"replan_factor must be >= 1, got {self.replan_factor}"
            )
        if self.replan_check_every <= 0:
            raise ConfigurationError(
                "replan_check_every must be positive, "
                f"got {self.replan_check_every}"
            )
        if self.sample_size <= 0:
            raise ConfigurationError(
                f"sample_size must be positive, got {self.sample_size}"
            )
        if self.verification_weight < 0 or self.fetch_weight < 0:
            raise ConfigurationError(
                "cost weights must be non-negative, got "
                f"verification_weight={self.verification_weight}, "
                f"fetch_weight={self.fetch_weight}"
            )

    @property
    def cost_based(self) -> bool:
        """Whether seed selection runs through the cost model."""
        return self.mode in ("cost", "adaptive")

    @property
    def adaptive(self) -> bool:
        """Whether mid-run re-planning is enabled."""
        return self.mode == "adaptive"


#: The default options every request starts with (legacy behaviour).
DEFAULT_PLANNER_OPTIONS = PlannerOptions()
