"""The four pipeline operators discovery decomposes into.

Each stage implements the uniform ``run(PlanContext) -> StageResult``
contract and accumulates its own wall-clock / volume accounting under
``counters.stages[<name>]``:

* :class:`CandidateGeneration` — seed-column posting fetch (Section 6.1):
  builds ``superkey_map_Q``, charges the request budget, fetches the seed
  column's posting lists (in one shot, or chunked with adaptive re-planning),
  and groups + sorts the candidate tables;
* :class:`SuperKeyPrefilter` — the XASH reject (Section 6.3): scans one
  candidate table's packed block, applying table-filtering rule 2 and the
  super-key subsumption check per row;
* :class:`RowVerification` — exact verification of the surviving rows and
  the Eq. 2 best-mapping score;
* :class:`TopKMaintenance` — offers the scored table to the top-k heap and
  fires the streaming snapshot hook on accepted updates.

The composition of these stages under the
:class:`~repro.plan.executor.Executor` is line-for-line equivalent to the
pre-refactor monolithic loop when re-planning is disabled — the equivalence
the plan-equivalence test suite pins down byte-for-byte.
"""

from __future__ import annotations

from time import perf_counter

from ..core.filters import should_abandon_table
from ..core.joinability import joinability_from_matches, row_contains_key
from ..index import kernels
from ..index.columnar import (
    TableBlock,
    fetch_table_blocks,
    group_into_table_blocks,
    group_items_into_table_blocks,
    pack_super_keys,
)
from .context import PlanContext, StageResult
from .planner import (
    ReplanEvent,
    STAGE_CANDIDATE_GENERATION,
    STAGE_ROW_VERIFICATION,
    STAGE_SKETCH_PRUNE,
    STAGE_SUPERKEY_PREFILTER,
    STAGE_TOPK_MAINTENANCE,
)


class PlanStage:
    """Base operator: timing + volume accounting around ``_execute``."""

    name = "stage"

    def run(self, context: PlanContext) -> StageResult:
        """Run the stage once, recording wall clock and item counts.

        Timing is inlined (no context manager): the per-table stages run
        once per candidate table, so wrapper cost is hot-path cost.
        """
        stats = context.counters.stage_stats(self.name)
        stats.calls += 1
        started = perf_counter()
        try:
            result = self._execute(context)
        finally:
            stats.seconds += perf_counter() - started
        stats.items_in += result.items_in
        stats.items_out += result.items_out
        return result

    def _execute(self, context: PlanContext) -> StageResult:
        raise NotImplementedError


class SketchPrune(PlanStage):
    """Approximate candidate pruning ahead of the exact pipeline.

    Queries the engine's :class:`~repro.sketch.SketchIndex` with the seed
    column's probe values and restricts the fetch universe
    (``context.allowed_tables``) to tables whose estimated containment
    clears the request's :class:`~repro.sketch.SketchOptions` threshold.
    With exhaustive settings (``threshold=0``, no candidate cap) the stage
    records its pass-through and changes nothing — the run stays
    byte-identical to the exact engine; it writes the
    ``sketch_candidates`` / ``sketch_estimated_recall`` extra counters only
    when it actually prunes.
    """

    name = STAGE_SKETCH_PRUNE

    def _execute(self, context: PlanContext) -> StageResult:
        sketch_index = context.sketch_index
        options = context.sketch
        total = sketch_index.num_tables if sketch_index is not None else 0
        if sketch_index is None or options is None or not options.enabled:
            return StageResult(
                self.name, items_in=total, items_out=total, detail="exhaustive"
            )
        query = context.query
        column = context.plan.seed.column
        position = query.key_columns.index(column)
        values = {
            key_tuple[position]
            for key_tuple in context.engine._complete_key_tuples(query)
        }
        scored = sketch_index.query(
            values,
            threshold=options.threshold,
            max_candidates=options.max_candidates,
        )
        context.allowed_tables = {table_id for table_id, _ in scored}
        counters = context.counters
        counters.extra["sketch_candidates"] = float(len(scored))
        counters.extra["sketch_estimated_recall"] = sketch_index.estimated_recall(
            options.threshold
        )
        return StageResult(
            self.name,
            items_in=total,
            items_out=len(scored),
            detail=f"threshold={options.threshold:g}",
        )


class CandidateGeneration(PlanStage):
    """Fetch the seed column's posting lists and group candidate tables."""

    name = STAGE_CANDIDATE_GENERATION

    def _execute(self, context: PlanContext) -> StageResult:
        if context.options.adaptive and context.plan.alternatives:
            values_charged, seed_values, detail = self._generate_adaptive(context)
        else:
            values_charged = seed_values = self._generate(
                context, context.plan.seed.column
            )
            detail = ""
        counters = context.counters
        counters.candidate_tables = len(context.candidates)
        # Legacy semantics: the (truncated) probe-list cardinality of the
        # *executed* seed column.  The stage's items_in additionally covers
        # the probe values charged for abandoned seed attempts.
        counters.extra["initial_column_cardinality"] = float(seed_values)
        return StageResult(
            self.name,
            items_in=values_charged,
            items_out=sum(len(block) for _, block in context.candidates),
            detail=detail,
        )

    # ------------------------------------------------------------------
    # One-shot path (modes "selector" and "cost"): the legacy fetch.
    # ------------------------------------------------------------------
    def _generate(self, context: PlanContext, column: str) -> int:
        engine = context.engine
        budget = context.budget
        context.key_map = engine._build_key_super_key_map(context.query, column)
        probe_values = list(context.key_map)

        if budget is not None:
            # Each probe value costs one posting-list fetch; a short budget
            # truncates the (deterministically ordered) probe list.  A
            # pre-expired deadline skips the fetch entirely.
            if budget.deadline_expired():
                probe_values = []
            else:
                granted = budget.take_pl_fetches(len(probe_values))
                probe_values = probe_values[:granted]

        grouped = fetch_table_blocks(engine.index, probe_values)
        fetched = sum(len(block) for block in grouped.values())
        context.counters.pl_items_fetched = fetched
        context.report.seed_column = column
        context.report.observed_postings += fetched
        self._sort_candidates(context, grouped)
        return len(probe_values)

    # ------------------------------------------------------------------
    # Adaptive path: chunked fetch with mid-run seed switching.
    # ------------------------------------------------------------------
    def _generate_adaptive(self, context: PlanContext) -> tuple[int, int, str]:
        engine = context.engine
        budget = context.budget
        options = context.options
        report = context.report
        attempts = [context.plan.seed, *context.plan.alternatives]
        attempt_index = 0
        total_observed = 0
        total_charged = 0

        while True:
            candidate = attempts[attempt_index]
            column = candidate.column
            context.key_map = engine._build_key_super_key_map(
                context.query, column
            )
            probe_values = list(context.key_map)
            grouped: dict[int, TableBlock] = {}
            observed = 0
            values_fetched = 0
            replanned = False
            curtailed = False

            for start in range(0, len(probe_values), options.replan_check_every):
                chunk = probe_values[start : start + options.replan_check_every]
                if budget is not None:
                    if budget.deadline_expired():
                        curtailed = True
                        break
                    granted = budget.take_pl_fetches(len(chunk))
                    if granted < len(chunk):
                        curtailed = True
                    chunk = chunk[:granted]
                observed += self._fetch_into(engine.index, chunk, grouped)
                values_fetched += len(chunk)
                total_charged += len(chunk)
                if curtailed:
                    # The ledger is spent: answer from what this column
                    # fetched — a re-plan could not pay for fresh fetches.
                    break
                remaining = attempts[attempt_index + 1 :]
                if start + options.replan_check_every < len(probe_values) and remaining:
                    # The noise floor of one posting per probe value keeps a
                    # near-zero estimate from triggering pointless switches.
                    prorated = candidate.estimate.scaled(values_fetched)
                    threshold = (
                        max(prorated, float(values_fetched)) * options.replan_factor
                    )
                    if observed > threshold:
                        report.replans.append(
                            ReplanEvent(
                                from_column=column,
                                to_column=remaining[0].column,
                                observed_postings=observed,
                                estimated_postings=prorated,
                                values_fetched=values_fetched,
                            )
                        )
                        report.discarded_postings += observed
                        total_observed += observed
                        attempt_index += 1
                        replanned = True
                        break
            if replanned:
                continue

            total_observed += observed
            context.counters.pl_items_fetched = total_observed
            report.seed_column = column
            report.observed_postings = total_observed
            if report.replans:
                context.counters.extra["replans"] = float(len(report.replans))
                context.counters.extra["discarded_pl_items"] = float(
                    report.discarded_postings
                )
            self._sort_candidates(context, grouped)
            return (
                total_charged,
                values_fetched,
                "replanned" if report.replans else "",
            )

    @staticmethod
    def _fetch_into(
        index, values: list[str], grouped: dict[int, TableBlock]
    ) -> int:
        """Fetch one chunk and merge it into the per-table grouping.

        Chunks arrive in probe order, so the accumulated grouping is
        identical to a single-shot :func:`fetch_table_blocks` over the same
        final value list.  Returns the number of PL items fetched.
        """
        if not values:
            return 0
        fetch_batch = getattr(index, "fetch_batch", None)
        if fetch_batch is not None:
            blocks = fetch_batch(values)
            group_into_table_blocks(blocks, into=grouped)
            return sum(len(block) for block in blocks)
        items = index.fetch(values)
        group_items_into_table_blocks(items, into=grouped)
        return len(items)

    @staticmethod
    def _sort_candidates(
        context: PlanContext, grouped: dict[int, TableBlock]
    ) -> None:
        # The sketch tier's verdict: only tables it let through enter the
        # exact pipeline (``None`` = no pruning happened).
        allowed = context.allowed_tables
        items = grouped.items()
        if allowed is not None:
            items = [entry for entry in items if entry[0] in allowed]
        # Sort candidate tables by decreasing PL-item count (line 5).
        context.candidates = sorted(
            items, key=lambda entry: (-len(entry[1]), entry[0])
        )


class SuperKeyPrefilter(PlanStage):
    """Row filtering of one candidate table (lines 14-19 of Algorithm 1).

    The hot path runs as a vectorized kernel
    (:mod:`repro.index.kernels`) directly over the block's packed
    super-key buffer — one batched reject test per distinct probe value
    instead of a Python iteration per PL item — and falls back to the
    verbatim per-row loop (:meth:`_execute_rows`) when kernels are off,
    the row-filter mode needs corpus rows (``oracle``), or the block's
    super keys cannot be packed.  Both paths produce bit-identical
    survivors, counters, and stage statistics (pinned by the differential
    kernel suite).
    """

    name = STAGE_SUPERKEY_PREFILTER

    def _execute(self, context: PlanContext) -> StageResult:
        mode = context.engine.row_filter.mode
        if mode != "oracle" and kernels.active_kernel() is not None:
            result = self._execute_kernel(context, mode)
            if result is not None:
                return result
        return self._execute_rows(context)

    def _execute_kernel(
        self, context: PlanContext, mode: str
    ) -> StageResult | None:
        """Kernel path; ``None`` when the block cannot be packed."""
        engine = context.engine
        block = context.current_block
        packed = None
        width = 0
        length_shift = None
        if mode == "superkey":
            generator = engine.row_filter.super_key_generator
            packed = block.super_key_bytes
            width = block.key_width or 0
            length_shift = generator.length_segment_shift
        topk = context.topk
        min_joinability = (
            topk.min_joinability()
            if engine.use_table_filters and topk.is_full
            else None
        )
        result = None
        if mode == "superkey":
            result = self._prefilter_mapped(
                context, block, length_shift, min_joinability
            )
        if result is None:
            if mode == "superkey" and packed is None:
                width = max(1, (generator.hash_size + 7) // 8)
                packed = pack_super_keys(block.super_keys, width)
                if packed is None:
                    return None
            result = kernels.prefilter_block(
                values=block.values,
                row_indexes=block.row_indexes,
                key_map=context.key_map,
                posting_count=len(block),
                value_runs=getattr(block, "value_runs", None),
                packed=packed,
                width=width,
                mode=mode,
                length_shift=length_shift,
                min_joinability=min_joinability,
            )
        counters = context.counters
        counters.rows_checked += result.rows_checked
        counters.superkey_checks += result.superkey_checks
        counters.short_circuit_hits += result.short_circuit_hits
        detail = ""
        if result.abandoned:
            counters.tables_pruned_by_rule2 += 1
            detail = "abandoned"
        context.surviving = result.surviving
        return StageResult(
            self.name,
            items_in=len(block),
            items_out=len(result.surviving),
            detail=detail,
        )

    @staticmethod
    def _prefilter_mapped(
        context: PlanContext,
        block,
        length_shift: int | None,
        min_joinability: int | None,
    ) -> "kernels.PrefilterResult | None":
        """Coverage-splicing fast path; ``None`` without run provenance.

        The reject test runs once per ``(probe value, key entry)`` over the
        *whole* per-value fetch block (memoised there) and this table's
        slice of the resulting bitmaps is evaluated with plain byte
        operations — so the vector pass is amortised across every candidate
        table sharing the value, which is what beats the row loop on the
        few-row blocks per-table grouping produces.
        """
        sources = getattr(block, "cov_sources", None)
        if sources is None:
            return None
        kernel = kernels.active_kernel() or "fallback"
        key_map_get = context.key_map.get
        run_cov = []
        for source, fetch_start, table_start, count in sources:
            entries = key_map_get(source.value, ())
            if not entries:
                continue
            per_level = source.query_coverage(entries, length_shift, kernel)
            run_cov.append((table_start, fetch_start, count, entries, per_level))
        return kernels.prefilter_table_block(
            row_indexes=block.row_indexes,
            run_cov=run_cov,
            posting_count=len(block),
            min_joinability=min_joinability,
        )

    def _execute_rows(self, context: PlanContext) -> StageResult:
        """The scalar per-row loop, kept verbatim (the kernels' oracle)."""
        engine = context.engine
        counters = context.counters
        topk = context.topk
        table_id = context.current_table_id
        block = context.current_block
        posting_count = len(block)
        rows_checked = 0
        rows_matched = 0
        surviving: list[tuple[int, tuple[str, ...]]] = []
        detail = ""

        use_table_filters = engine.use_table_filters
        key_map_get = context.key_map.get
        get_row = engine.corpus.get_row
        passes = engine.row_filter.passes
        for value, row_index, super_key in zip(
            block.values, block.row_indexes, block.super_keys
        ):
            if use_table_filters and should_abandon_table(
                posting_count, rows_checked, rows_matched, topk
            ):
                counters.tables_pruned_by_rule2 += 1
                detail = "abandoned"
                break
            rows_checked += 1
            counters.rows_checked += 1
            row = get_row(table_id, row_index)
            row_survived = False
            for key_tuple, key_super_key in key_map_get(value, ()):
                if passes(super_key, key_super_key, row, key_tuple, counters):
                    surviving.append((row_index, key_tuple))
                    row_survived = True
            if row_survived:
                rows_matched += 1

        context.surviving = surviving
        return StageResult(
            self.name,
            items_in=posting_count,
            items_out=len(surviving),
            detail=detail,
        )


class RowVerification(PlanStage):
    """Exact verification of surviving rows and Eq. 2 scoring (line 21)."""

    name = STAGE_ROW_VERIFICATION

    def _execute(self, context: PlanContext) -> StageResult:
        engine = context.engine
        counters = context.counters
        table_id = context.current_table_id
        verified: list[tuple[tuple[str, ...], tuple[str, ...]]] = []
        row_outcome: dict[tuple[int, int], bool] = {}
        for row_index, key_tuple in context.surviving:
            row = engine.corpus.get_row(table_id, row_index)
            counters.value_comparisons += len(row) * len(key_tuple)
            location = (table_id, row_index)
            if row_contains_key(row, key_tuple):
                verified.append((row, key_tuple))
                row_outcome[location] = True
            else:
                row_outcome.setdefault(location, False)

        counters.rows_passed_filter += len(row_outcome)
        counters.true_positive_rows += sum(1 for hit in row_outcome.values() if hit)
        counters.false_positive_rows += sum(
            1 for hit in row_outcome.values() if not hit
        )
        context.joinability, context.mapping = joinability_from_matches(verified)
        return StageResult(
            self.name,
            items_in=len(context.surviving),
            items_out=len(verified),
        )


class TopKMaintenance(PlanStage):
    """Offer the scored table to the heap; fire the streaming hook."""

    name = STAGE_TOPK_MAINTENANCE

    def _execute(self, context: PlanContext) -> StageResult:
        kept = context.topk.update(context.current_table_id, context.joinability)
        if kept:
            context.mappings[context.current_table_id] = context.mapping
            if context.on_snapshot is not None:
                context.on_snapshot(context.topk.result_tuples())
        return StageResult(self.name, items_in=1, items_out=int(kept))
