"""The plan executor: runs the stage pipeline with budget enforcement.

The :class:`Executor` owns the control flow the stages deliberately do not:
the candidate-table loop with its deadline checks and table-filtering rule 1
(the sorted-order early exit), the completeness flags, and the final result
assembly.  Running the pipeline with re-planning disabled is byte-identical
to the pre-refactor monolithic ``MateDiscovery.discover`` loop; enabling
adaptive re-planning only changes *which* posting lists get fetched — the
exact verification stages keep every reported score correct regardless of
the seed column.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable

from ..core.filters import should_prune_table
from ..core.results import DiscoveryResult
from ..metrics import DiscoveryCounters
from ..telemetry import trace as _trace
from .context import PlanContext
from .options import PlannerOptions
from .planner import PlanReport, QueryPlan, STAGE_SKETCH_PRUNE
from .stages import (
    CandidateGeneration,
    RowVerification,
    SketchPrune,
    SuperKeyPrefilter,
    TopKMaintenance,
)

if TYPE_CHECKING:  # pragma: no cover - imported for annotations only
    from ..api.request import RequestBudget
    from ..datamodel import QueryTable
    from ..sketch import SketchIndex, SketchOptions


class Executor:
    """Runs a :class:`~repro.plan.planner.QueryPlan` to a result."""

    def __init__(self, engine, options: PlannerOptions | None = None):
        self.engine = engine
        self.options = options or PlannerOptions()
        self.sketch_prune = SketchPrune()
        self.candidate_generation = CandidateGeneration()
        self.superkey_prefilter = SuperKeyPrefilter()
        self.row_verification = RowVerification()
        self.topk_maintenance = TopKMaintenance()

    def execute(
        self,
        plan: QueryPlan,
        query: "QueryTable",
        k: int,
        *,
        budget: "RequestBudget | None" = None,
        on_snapshot: Callable[[list[tuple[int, int]]], None] | None = None,
        sketch: "SketchOptions | None" = None,
        sketch_index: "SketchIndex | None" = None,
    ) -> DiscoveryResult:
        """Run the pipeline and assemble the :class:`DiscoveryResult`."""
        engine = self.engine
        counters = DiscoveryCounters()
        started = time.perf_counter()
        context = PlanContext(
            engine=engine,
            query=query,
            k=k,
            plan=plan,
            options=self.options,
            budget=budget,
            on_snapshot=on_snapshot,
            sketch=sketch,
            sketch_index=sketch_index,
            counters=counters,
            report=PlanReport(plan=plan, seed_column=plan.seed.column),
        )

        # ---------------- Approximate tier (sketch mode only) ----------------
        if STAGE_SKETCH_PRUNE in plan.stages:
            self.sketch_prune.run(context)

        # ---------------- Initialization (lines 3-6) ----------------
        self.candidate_generation.run(context)

        # ---------------- Candidate-table loop (lines 7-22) ----------------
        for position, (table_id, block) in enumerate(context.candidates):
            if budget is not None and budget.deadline_expired():
                break
            if engine.use_table_filters and should_prune_table(
                len(block), context.topk
            ):
                counters.tables_pruned_by_rule1 += (
                    len(context.candidates) - position
                )
                break
            context.set_current(table_id, block)
            self.superkey_prefilter.run(context)
            self.row_verification.run(context)
            counters.tables_evaluated += 1
            self.topk_maintenance.run(context)

        complete = True
        if budget is not None:
            counters.budget_exhausted = int(budget.exhausted)
            counters.deadline_expired = int(budget.expired)
            complete = budget.complete
        counters.runtime_seconds = time.perf_counter() - started
        # One aggregate span per executed stage, synthesized from the
        # StageStats the (hot) stage loop already collects — the tracer adds
        # no per-candidate work, and when no tracer is enabled anywhere this
        # whole block is a single global-int check.
        if _trace._ACTIVE:
            self._emit_spans(context, counters, k)
        names = {
            table_id: engine.corpus.get_table(table_id).name
            for table_id, _ in context.topk.result_tuples()
        }
        return DiscoveryResult.from_ranked(
            system=engine.system_name,
            k=k,
            ranked=context.topk.results(),
            counters=counters,
            mappings=context.mappings,
            names=names,
            complete=complete,
            plan=context.report,
        )

    @staticmethod
    def _emit_spans(context: PlanContext, counters: DiscoveryCounters, k: int) -> None:
        """Export a ``plan.execute`` span plus one child span per stage.

        The stage spans absorb each stage's :class:`StageStats` — calls,
        accumulated seconds, items in/out — as span attributes, so the
        per-stage timing that used to live only in the counters is part of
        the trace tree.
        """
        entry = _trace.current_entry()
        if entry is None:
            return
        tracer, parent = entry
        exec_span = tracer.emit(
            "plan.execute",
            parent,
            duration=counters.runtime_seconds,
            attributes={
                "seed_column": context.plan.seed.column,
                "k": k,
                "pl_items_fetched": counters.pl_items_fetched,
                "tables_evaluated": counters.tables_evaluated,
            },
        )
        for name, stats in counters.stages.items():
            tracer.emit(
                f"stage.{name}",
                exec_span,
                duration=stats.seconds,
                attributes={
                    "calls": stats.calls,
                    "items_in": stats.items_in,
                    "items_out": stats.items_out,
                },
                start=exec_span.start,
            )
