"""The shared mutable state the pipeline stages operate on.

A :class:`PlanContext` is created per run by the
:class:`~repro.plan.executor.Executor` and threaded through every stage's
``run(context) -> StageResult`` call.  It carries the immutable run inputs
(engine, query, ``k``, plan, budget, hooks), the evolving result state
(top-k heap, column mappings, candidate list), and the per-table scratch
slots the per-table stages hand to each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..core.topk import TopKHeap
from ..metrics import DiscoveryCounters

if TYPE_CHECKING:  # pragma: no cover - imported for annotations only
    from ..api.request import RequestBudget
    from ..datamodel import QueryTable
    from ..index.columnar import TableBlock
    from ..sketch import SketchOptions
    from .options import PlannerOptions
    from .planner import PlanReport, QueryPlan


@dataclass(slots=True)
class StageResult:
    """Uniform outcome of one stage invocation.

    A plain (slotted) dataclass: one is built per stage invocation — three
    per candidate table on the hot path — so construction cost matters.
    """

    stage: str
    #: Work items the invocation received (stage-specific unit).
    items_in: int = 0
    #: Work items the invocation let through.
    items_out: int = 0
    #: Free-form annotation (e.g. ``"abandoned"`` for a rule-2 exit,
    #: ``"replanned"`` after an adaptive seed switch).  Not consumed by the
    #: built-in executor — it exists for the operator contract: external
    #: stage implementations and debugging hooks report through it.
    detail: str = ""


@dataclass
class PlanContext:
    """Everything one discovery run's stages share."""

    # ---------------- Immutable run inputs ----------------
    engine: object
    query: "QueryTable"
    k: int
    plan: "QueryPlan"
    options: "PlannerOptions"
    budget: "RequestBudget | None" = None
    on_snapshot: Callable[[list[tuple[int, int]]], None] | None = None
    #: Per-request knobs of the approximate tier (``planner.mode="sketch"``).
    sketch: "SketchOptions | None" = None
    #: The engine's :class:`~repro.sketch.SketchIndex` (sketch mode only).
    sketch_index: object | None = None

    # ---------------- Evolving run state ----------------
    counters: DiscoveryCounters = field(default_factory=DiscoveryCounters)
    topk: TopKHeap = field(default=None)  # type: ignore[assignment]
    mappings: dict[int, tuple[int, ...] | None] = field(default_factory=dict)
    report: "PlanReport" = None  # type: ignore[assignment]
    #: ``superkey_map_Q``: seed value -> (key tuple, aggregated hash) pairs.
    key_map: dict[str, list[tuple[tuple[str, ...], int]]] = field(
        default_factory=dict
    )
    #: Candidate tables sorted by decreasing PL-item count (line 5).
    candidates: list[tuple[int, "TableBlock"]] = field(default_factory=list)
    #: Fetch universe left by the ``SketchPrune`` stage: ``None`` means
    #: exhaustive (no pruning); a set restricts candidate generation to it.
    allowed_tables: set[int] | None = None

    # ---------------- Per-table scratch (stage hand-off) ----------------
    current_table_id: int = -1
    current_block: "TableBlock | None" = None
    surviving: list[tuple[int, tuple[str, ...]]] = field(default_factory=list)
    joinability: int = 0
    mapping: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.topk is None:
            self.topk = TopKHeap(self.k)

    def set_current(self, table_id: int, block: "TableBlock") -> None:
        """Point the per-table stages at the next candidate table."""
        self.current_table_id = table_id
        self.current_block = block
        self.surviving = []
        self.joinability = 0
        self.mapping = None
