"""Cost-based seed selection: build one :class:`QueryPlan` per request.

MATE's single biggest lever is fetching fewer, cheaper posting lists: the
whole run is ordered around *one* initiator (seed) column whose posting
lists seed the candidate tables, and every other key column is pruned via
the XASH super-key prefilter.  The classic engine picks that column with a
corpus-side heuristic (lowest cardinality); the :class:`Planner` instead
asks the *index* what each choice would cost:

    cost(column) = fetch_weight * |probe values|
                 + verification_weight * estimated posting volume

where the posting volume comes from a bounded, deterministic sample of
posting-list lengths (:func:`repro.index.statistics.estimate_posting_volume`).
The cheapest column wins; the runners-up are kept on the plan as re-planning
alternatives for the adaptive executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..exceptions import DiscoveryError
from ..index.statistics import PostingVolumeEstimate, estimate_posting_volume
from .options import PlannerOptions

if TYPE_CHECKING:  # pragma: no cover - imported for annotations only
    from ..datamodel import QueryTable

#: Stage names of the discovery pipeline, in execution order.
STAGE_SKETCH_PRUNE = "sketch_prune"
STAGE_CANDIDATE_GENERATION = "candidate_generation"
STAGE_SUPERKEY_PREFILTER = "superkey_prefilter"
STAGE_ROW_VERIFICATION = "row_verification"
STAGE_TOPK_MAINTENANCE = "topk_maintenance"

PIPELINE_STAGES: tuple[str, ...] = (
    STAGE_CANDIDATE_GENERATION,
    STAGE_SUPERKEY_PREFILTER,
    STAGE_ROW_VERIFICATION,
    STAGE_TOPK_MAINTENANCE,
)

#: The pipeline with the approximate candidate tier in front
#: (``planner.mode="sketch"``).
SKETCH_PIPELINE_STAGES: tuple[str, ...] = (
    STAGE_SKETCH_PRUNE,
    *PIPELINE_STAGES,
)


@dataclass(frozen=True)
class SeedCandidate:
    """One key column considered as the run's initiator column."""

    column: str
    #: Distinct probe values the initialization step would fetch.
    probe_count: int
    #: The sampled posting-volume estimate behind :attr:`cost`.
    estimate: PostingVolumeEstimate
    #: Modelled cost (fetches + predicted verification volume, weighted).
    cost: float

    def as_dict(self) -> dict[str, object]:
        """Return the candidate as a plain dictionary (for ``--explain``)."""
        return {
            "column": self.column,
            "probe_count": self.probe_count,
            "estimated_postings": self.estimate.estimated_postings,
            "sampled_values": self.estimate.sampled,
            "estimate_exact": self.estimate.exact,
            "cost": self.cost,
        }


@dataclass(frozen=True)
class ReplanEvent:
    """One adaptive seed switch, recorded on the plan report."""

    from_column: str
    to_column: str
    #: PL items observed from the abandoned column before the switch.
    observed_postings: int
    #: The (prorated) estimate those observations blew past.
    estimated_postings: float
    #: Probe values already fetched (and charged) for the abandoned column.
    values_fetched: int

    def as_dict(self) -> dict[str, object]:
        return {
            "from_column": self.from_column,
            "to_column": self.to_column,
            "observed_postings": self.observed_postings,
            "estimated_postings": self.estimated_postings,
            "values_fetched": self.values_fetched,
        }


@dataclass
class QueryPlan:
    """The planner's decision for one request: seed column + alternatives."""

    mode: str
    seed: SeedCandidate
    #: Remaining key columns in increasing modelled cost — the order the
    #: adaptive executor tries them in when re-planning.
    alternatives: list[SeedCandidate] = field(default_factory=list)
    stages: tuple[str, ...] = PIPELINE_STAGES

    def explain(self) -> dict[str, object]:
        """Return the pre-execution plan as a plain dictionary."""
        return {
            "mode": self.mode,
            "seed_column": self.seed.column,
            "stages": list(self.stages),
            "seed": self.seed.as_dict(),
            "alternatives": [entry.as_dict() for entry in self.alternatives],
        }


@dataclass
class PlanReport:
    """What actually happened: the plan plus its execution trace.

    Attached to :attr:`DiscoveryResult.plan
    <repro.core.results.DiscoveryResult.plan>` by the executor and surfaced
    as ``plan_explain`` on session results and via the CLI ``--explain``
    flag.
    """

    plan: QueryPlan
    #: The seed column the run finally used (differs from the planned seed
    #: after an adaptive re-plan).
    seed_column: str = ""
    #: PL items actually fetched, including fetches discarded by re-plans.
    observed_postings: int = 0
    #: PL items fetched for abandoned seed columns and thrown away.
    discarded_postings: int = 0
    replans: list[ReplanEvent] = field(default_factory=list)

    def as_dict(self) -> dict[str, object]:
        """The JSON-facing plan explanation."""
        document = self.plan.explain()
        document.update(
            {
                "executed_seed_column": self.seed_column,
                "observed_postings": self.observed_postings,
                "discarded_postings": self.discarded_postings,
                "replans": [event.as_dict() for event in self.replans],
            }
        )
        return document


class Planner:
    """Builds a :class:`QueryPlan` for one query against one engine.

    ``engine`` is the :class:`~repro.core.discovery.MateDiscovery` (or
    subclass) whose corpus/index/selector the plan is for; the planner only
    reads from it.
    """

    def __init__(self, engine, options: PlannerOptions | None = None):
        self.engine = engine
        self.options = options or PlannerOptions()

    # ------------------------------------------------------------------
    # Probe-value enumeration (shared with the execution stages)
    # ------------------------------------------------------------------
    def probe_values_for(
        self,
        query: "QueryTable",
        column: str,
        key_tuples: list[tuple[str, ...]] | None = None,
    ) -> list[str]:
        """The deduplicated probe values ``column`` would fetch, in order.

        Exactly the keys of the ``superkey_map_Q`` dictionary the
        candidate-generation stage builds for that column, so estimates and
        execution can never disagree on what gets probed.  ``key_tuples``
        lets a caller reuse one ``_complete_key_tuples`` enumeration (an
        O(rows log rows) sort) across all key columns of a plan.
        """
        position = query.key_columns.index(column)
        if key_tuples is None:
            key_tuples = self.engine._complete_key_tuples(query)
        return list(
            dict.fromkeys(key_tuple[position] for key_tuple in key_tuples)
        )

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def estimate_seed(
        self,
        query: "QueryTable",
        column: str,
        key_tuples: list[tuple[str, ...]] | None = None,
    ) -> SeedCandidate:
        """Model the cost of seeding the run with ``column``."""
        values = self.probe_values_for(query, column, key_tuples)
        estimate = estimate_posting_volume(
            self.engine.index, values, sample_size=self.options.sample_size
        )
        cost = (
            self.options.fetch_weight * len(values)
            + self.options.verification_weight * estimate.estimated_postings
        )
        return SeedCandidate(
            column=column, probe_count=len(values), estimate=estimate, cost=cost
        )

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, query: "QueryTable") -> QueryPlan:
        """Pick the seed column per the configured mode and build the plan."""
        if self.options.cost_based:
            key_tuples = self.engine._complete_key_tuples(query)
            ranked = sorted(
                (
                    self.estimate_seed(query, column, key_tuples)
                    for column in query.key_columns
                ),
                key=lambda candidate: (candidate.cost, candidate.column),
            )
            return QueryPlan(
                mode=self.options.mode, seed=ranked[0], alternatives=ranked[1:]
            )
        # Legacy mode: the engine's column selector decides.  No cost
        # estimate is sampled — this is the default hot path (every batch
        # request), and the estimate would only ever feed explain output;
        # the zeroed estimate is marked ``exact=False`` there.  ``sketch``
        # mode seeds the same way (the prune happens ahead of candidate
        # generation, not at seed selection), so an exhaustive sketch run
        # is byte-identical to ``selector``.
        chosen = self.engine.column_selector(query, self.engine.index)
        if chosen not in query.key_columns:
            raise DiscoveryError(
                f"initial column {chosen!r} is not a key column of the query"
            )
        unsampled = PostingVolumeEstimate(
            values=0, sampled=0, estimated_postings=0.0, exact=False
        )
        return QueryPlan(
            mode=self.options.mode,
            seed=SeedCandidate(
                column=chosen, probe_count=0, estimate=unsampled, cost=0.0
            ),
            stages=(
                SKETCH_PIPELINE_STAGES
                if self.options.mode == "sketch"
                else PIPELINE_STAGES
            ),
        )
