"""Columnar (struct-of-arrays) posting-list layout.

The classic layout of :class:`~repro.index.inverted.InvertedIndex` stores one
Python :class:`~repro.index.posting.PostingListItem` NamedTuple per PL item
and materialises a :class:`~repro.index.posting.FetchedItem` per item on every
fetch — per-row object overhead that in-memory analytics engines eliminate
with columnar, array-packed layouts.  This module provides the packed
equivalent used by the index's (default) ``columnar`` layout:

* :class:`ColumnarPostingList` — the postings of one value as three parallel
  flat integer arrays (``array('q')`` table ids, ``array('i')`` column
  indexes, ``array('q')`` row indexes) plus memoised *table runs* and
  *super-key columns* so repeated fetches do no per-item work;
* :class:`PackedSuperKeys` — the per-row super keys packed into one
  fixed-width byte buffer (``hash_size / 8`` bytes per row) instead of a
  dictionary of arbitrary-precision integers (with a spill map for keys that
  exceed the configured width);
* :class:`DictSuperKeys` — the legacy dictionary store behind the same
  interface, so both layouts share one code path;
* :class:`FetchBlock` — the struct-of-arrays result of ``fetch_batch``: one
  block per probed value, referencing the packed columns directly (zero-copy)
  with the super-key column attached;
* :class:`TableBlock` — the per-candidate-table view Algorithm 1's filtering
  loop iterates (lines 4-9): parallel plain lists assembled run-by-run with
  C-level slice copies instead of per-item tuple construction.

Every structure can still round-trip to the classic per-item records
(:meth:`FetchBlock.items`, :meth:`ColumnarPostingList.items`), which is what
keeps ``InvertedIndex.fetch`` byte-compatible across layouts.
"""

from __future__ import annotations

from array import array
from itertools import repeat
from typing import Callable, Iterable, Iterator, Sequence

from ..config import INDEX_LAYOUTS
from .posting import FetchedItem, PostingListItem

#: Supported posting-list layouts of the inverted index (the canonical
#: definition lives in :mod:`repro.config`, next to its validation).
LAYOUTS: tuple[str, ...] = INDEX_LAYOUTS

#: A run of consecutive postings of one value that share a table id:
#: ``(table_id, start, end)`` half-open positions into the packed columns.
TableRun = tuple[int, int, int]

#: A run of consecutive postings that share a probe value:
#: ``(value, start, end)`` half-open positions into a table block's columns.
ValueRun = tuple[str, int, int]


def pack_super_keys(super_keys: Iterable[int], width_bytes: int) -> bytes | None:
    """Pack integer super keys into one fixed-width big-endian buffer.

    Returns ``None`` when any key does not fit ``width_bytes`` (oversize or
    negative) — callers then stay on the per-integer path; correctness never
    depends on the declared width.
    """
    out = bytearray()
    try:
        for super_key in super_keys:
            out += super_key.to_bytes(width_bytes, "big")
    except (AttributeError, OverflowError):
        return None
    return bytes(out)


def unpack_super_keys(packed, width_bytes: int) -> list[int]:
    """Materialise a packed super-key buffer back into a list of integers."""
    from_bytes = int.from_bytes
    return [
        from_bytes(packed[position : position + width_bytes], "big")
        for position in range(0, len(packed), width_bytes)
    ]


def compute_table_runs(table_ids: Sequence[int]) -> list[TableRun]:
    """Return the maximal runs of equal consecutive table ids.

    Postings are appended in corpus-scan order (table by table), so a value's
    ``table_ids`` column consists of few long runs; grouping by table then
    costs one slice copy per run instead of one append per item.
    """
    runs: list[TableRun] = []
    start = 0
    previous: int | None = None
    position = 0
    for position, table_id in enumerate(table_ids):
        if table_id != previous:
            if previous is not None:
                runs.append((previous, start, position))
            previous = table_id
            start = position
    if previous is not None:
        runs.append((previous, start, position + 1))
    return runs


class DictSuperKeys:
    """Row super keys in a plain dictionary (the ``legacy`` layout's store).

    Exposes the same interface as :class:`PackedSuperKeys` — including the
    ``epoch`` counter the memoised super-key columns are validated against —
    so the index code is layout-agnostic.
    """

    __slots__ = ("epoch", "_entries")

    def __init__(self) -> None:
        #: Bumped on every mutation; consumers key memoised data on it.
        self.epoch = 0
        self._entries: dict[tuple[int, int], int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._entries

    def get(self, key: tuple[int, int], default: int | None = 0) -> int | None:
        """Return the super key stored under ``key`` (or ``default``)."""
        return self._entries.get(key, default)

    def set(self, key: tuple[int, int], value: int) -> None:
        """Store (or replace) one super key."""
        self.epoch += 1
        self._entries[key] = value

    def or_into(self, key: tuple[int, int], value_hash: int) -> int:
        """OR ``value_hash`` into the stored key (0 when absent); return it."""
        self.epoch += 1
        updated = self._entries.get(key, 0) | value_hash
        self._entries[key] = updated
        return updated

    def pop(self, key: tuple[int, int]) -> None:
        """Drop one super key (no-op when absent)."""
        self.epoch += 1
        self._entries.pop(key, None)

    def items(self) -> Iterator[tuple[tuple[int, int], int]]:
        """Iterate over ``((table_id, row_index), super_key)`` pairs."""
        return iter(self._entries.items())

    def get_many(
        self, table_ids: Sequence[int], row_indexes: Sequence[int]
    ) -> list[int]:
        """Return the super keys of the given rows (0 when absent), in order."""
        get = self._entries.get
        return [get(key, 0) for key in zip(table_ids, row_indexes)]

    def get_many_packed(
        self, table_ids: Sequence[int], row_indexes: Sequence[int]
    ) -> bytes | None:
        """Packed column of the given rows — always ``None`` here.

        The dictionary store has no declared key width, so there is nothing
        to pack zero-copy; consumers that want a packed buffer pack the
        integer column themselves (:func:`pack_super_keys`).
        """
        return None


class PackedSuperKeys:
    """Row super keys packed into one fixed-width byte buffer.

    Each row owns one ``width_bytes`` slot in a shared :class:`bytearray`
    (big-endian), addressed through a ``(table_id, row_index) -> slot``
    dictionary; freed slots are recycled.  Keys too wide for the configured
    hash size spill into a plain dictionary so that correctness never depends
    on the declared width.
    """

    __slots__ = ("width_bytes", "epoch", "_slots", "_buffer", "_free", "_spill")

    def __init__(self, hash_size_bits: int = 128):
        #: Bytes per packed super key (the configured hash width).
        self.width_bytes = max(1, (int(hash_size_bits) + 7) // 8)
        #: Bumped on every mutation; consumers key memoised data on it.
        self.epoch = 0
        self._slots: dict[tuple[int, int], int] = {}
        self._buffer = bytearray()
        self._free: list[int] = []
        self._spill: dict[tuple[int, int], int] = {}

    def __len__(self) -> int:
        return len(self._slots) + len(self._spill)

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._slots or key in self._spill

    def _fits(self, value: int) -> bool:
        return 0 <= value < (1 << (8 * self.width_bytes))

    def get(self, key: tuple[int, int], default: int | None = 0) -> int | None:
        """Return the super key stored under ``key`` (or ``default``)."""
        slot = self._slots.get(key)
        if slot is None:
            return self._spill.get(key, default)
        offset = slot * self.width_bytes
        return int.from_bytes(
            self._buffer[offset : offset + self.width_bytes], "big"
        )

    def set(self, key: tuple[int, int], value: int) -> None:
        """Store (or replace) one super key in its packed slot."""
        self.epoch += 1
        if not self._fits(value):
            slot = self._slots.pop(key, None)
            if slot is not None:
                self._free.append(slot)
            self._spill[key] = value
            return
        slot = self._slots.get(key)
        if slot is None:
            self._spill.pop(key, None)
            if self._free:
                slot = self._free.pop()
            else:
                slot = len(self._buffer) // self.width_bytes
                self._buffer.extend(bytes(self.width_bytes))
            self._slots[key] = slot
        offset = slot * self.width_bytes
        self._buffer[offset : offset + self.width_bytes] = value.to_bytes(
            self.width_bytes, "big"
        )

    def or_into(self, key: tuple[int, int], value_hash: int) -> int:
        """OR ``value_hash`` into the stored key (0 when absent); return it."""
        updated = (self.get(key, 0) or 0) | value_hash
        self.set(key, updated)
        return updated

    def pop(self, key: tuple[int, int]) -> None:
        """Drop one super key, recycling its packed slot (no-op when absent)."""
        self.epoch += 1
        slot = self._slots.pop(key, None)
        if slot is not None:
            self._free.append(slot)
        else:
            self._spill.pop(key, None)

    def items(self) -> Iterator[tuple[tuple[int, int], int]]:
        """Iterate over ``((table_id, row_index), super_key)`` pairs."""
        width = self.width_bytes
        buffer = self._buffer
        for key, slot in self._slots.items():
            offset = slot * width
            yield key, int.from_bytes(buffer[offset : offset + width], "big")
        yield from self._spill.items()

    def get_many(
        self, table_ids: Sequence[int], row_indexes: Sequence[int]
    ) -> list[int]:
        """Return the super keys of the given rows (0 when absent), in order."""
        slots = self._slots
        spill = self._spill
        buffer = self._buffer
        width = self.width_bytes
        from_bytes = int.from_bytes
        out: list[int] = []
        append = out.append
        for key in zip(table_ids, row_indexes):
            slot = slots.get(key)
            if slot is None:
                append(spill.get(key, 0))
            else:
                offset = slot * width
                append(from_bytes(buffer[offset : offset + width], "big"))
        return out

    def get_many_packed(
        self, table_ids: Sequence[int], row_indexes: Sequence[int]
    ) -> bytes | None:
        """Return the packed super-key column of the given rows, in order.

        One ``width_bytes`` big-endian slot per row (zeros when absent),
        assembled with C-level slice copies from the shared buffer — the
        input of the vectorized prefilter kernels.  ``None`` when any
        requested row spilled (a key wider than the configured hash size):
        the packed representation would be lossy, so consumers fall back to
        the integer column.
        """
        width = self.width_bytes
        slots = self._slots
        spill = self._spill
        buffer = self._buffer
        out = bytearray(len(table_ids) * width)
        position = 0
        for key in zip(table_ids, row_indexes):
            slot = slots.get(key)
            if slot is None:
                if spill and key in spill:
                    return None
            else:
                offset = slot * width
                out[position : position + width] = buffer[offset : offset + width]
            position += width
        return bytes(out)


class ColumnarPostingList:
    """The postings of one value as three parallel packed integer arrays.

    ``table_ids`` and ``row_indexes`` are 64-bit (``'q'``), ``column_indexes``
    32-bit (``'i'``).  Two memoisations make repeated fetches cheap: the table
    *runs* (keyed by the item count, which only changes when postings change)
    and the *super-key column* (keyed additionally by the identity and epoch
    of the super-key store it was computed from, so shard-local and central
    stores never cross-contaminate).
    """

    __slots__ = (
        "table_ids",
        "column_indexes",
        "row_indexes",
        "_runs_cache",
        "_super_keys_cache",
        "_packed_cache",
    )

    def __init__(self) -> None:
        self.table_ids = array("q")
        self.column_indexes = array("i")
        self.row_indexes = array("q")
        self._runs_cache: tuple[int, list[TableRun]] | None = None
        self._super_keys_cache: tuple[object, int, int, list[int]] | None = None
        self._packed_cache: tuple[object, int, int, bytes | None] | None = None

    def __len__(self) -> int:
        return len(self.table_ids)

    def __getstate__(self):
        # The memo caches are derived data; a pickled/deep-copied posting
        # list must not drag (dead) super-key stores along with it.
        return (self.table_ids, self.column_indexes, self.row_indexes)

    def __setstate__(self, state) -> None:
        self.table_ids, self.column_indexes, self.row_indexes = state
        self._runs_cache = None
        self._super_keys_cache = None
        self._packed_cache = None

    def append(self, table_id: int, column_index: int, row_index: int) -> None:
        """Append one posting to the packed columns."""
        self.table_ids.append(table_id)
        self.column_indexes.append(column_index)
        self.row_indexes.append(row_index)

    def item(self, position: int) -> PostingListItem:
        """Materialise the posting at ``position`` as a classic record."""
        return PostingListItem(
            table_id=self.table_ids[position],
            column_index=self.column_indexes[position],
            row_index=self.row_indexes[position],
        )

    def items(self) -> list[PostingListItem]:
        """Materialise every posting as a classic per-item record."""
        return [
            PostingListItem(table_id, column_index, row_index)
            for table_id, column_index, row_index in zip(
                self.table_ids, self.column_indexes, self.row_indexes
            )
        ]

    def runs(self) -> list[TableRun]:
        """The memoised table runs of this posting list."""
        count = len(self.table_ids)
        cached = self._runs_cache
        if cached is not None and cached[0] == count:
            return cached[1]
        runs = compute_table_runs(self.table_ids)
        self._runs_cache = (count, runs)
        return runs

    def super_key_column(
        self, store: DictSuperKeys | PackedSuperKeys
    ) -> list[int]:
        """The memoised super-key column of this posting list under ``store``.

        Valid while the store object, its epoch, and the item count are
        unchanged; any posting append or super-key mutation recomputes.
        """
        count = len(self.table_ids)
        cached = self._super_keys_cache
        if (
            cached is not None
            and cached[0] is store
            and cached[1] == store.epoch
            and cached[2] == count
        ):
            return cached[3]
        column = store.get_many(self.table_ids, self.row_indexes)
        self._super_keys_cache = (store, store.epoch, count, column)
        return column

    def super_key_packed(self, store: DictSuperKeys | PackedSuperKeys):
        """The memoised *packed* super-key column of this list under ``store``.

        ``None`` when the store cannot pack (legacy dictionary store, or a
        spilled oversize key) — the negative answer is memoised too, so
        cache-wrapped indexes re-serving the same block never re-materialise
        the column, and the kernel path always sees one stable buffer per
        (posting list, store, epoch) triple.
        """
        count = len(self.table_ids)
        cached = self._packed_cache
        if (
            cached is not None
            and cached[0] is store
            and cached[1] == store.epoch
            and cached[2] == count
        ):
            return cached[3]
        packed = store.get_many_packed(self.table_ids, self.row_indexes)
        self._packed_cache = (store, store.epoch, count, packed)
        return packed

    def filtered(
        self, keep: Callable[[int, int, int], bool]
    ) -> tuple["ColumnarPostingList", int]:
        """Return ``(kept postings, removed count)`` under the predicate.

        Returns ``self`` unchanged (and 0) when nothing is removed, so the
        memoised runs and super-key columns survive no-op maintenance.
        """
        kept = ColumnarPostingList()
        removed = 0
        for table_id, column_index, row_index in zip(
            self.table_ids, self.column_indexes, self.row_indexes
        ):
            if keep(table_id, column_index, row_index):
                kept.append(table_id, column_index, row_index)
            else:
                removed += 1
        if removed == 0:
            return self, 0
        return kept, removed

    def copy(self) -> "ColumnarPostingList":
        """Return an independent copy of the packed columns (C-level memcpy)."""
        copied = ColumnarPostingList()
        copied.table_ids = array("q", self.table_ids)
        copied.column_indexes = array("i", self.column_indexes)
        copied.row_indexes = array("q", self.row_indexes)
        return copied

    @classmethod
    def from_columns(
        cls,
        table_ids: Iterable[int],
        column_indexes: Iterable[int],
        row_indexes: Iterable[int],
    ) -> "ColumnarPostingList":
        """Build a posting list directly from packed (or packable) columns."""
        columns = cls()
        columns.table_ids.extend(table_ids)
        columns.column_indexes.extend(column_indexes)
        columns.row_indexes.extend(row_indexes)
        if not (
            len(columns.table_ids)
            == len(columns.column_indexes)
            == len(columns.row_indexes)
        ):
            raise ValueError("posting columns must have equal lengths")
        return columns


class FetchBlock:
    """Struct-of-arrays fetch result of one probe value.

    The posting columns reference the index's packed arrays directly (no
    copy); ``super_keys`` is the per-posting super-key column and ``runs`` the
    table runs used to regroup the block by candidate table.  Blocks are
    snapshots: index mutations invalidate them (callers such as the
    posting-list cache drop blocks on mutation).

    When the index's super-key store can pack, the block instead carries the
    fixed-width buffer (``super_key_bytes`` / ``key_width``) that the
    vectorized prefilter kernels consume directly; the integer
    ``super_keys`` column is then materialised lazily on first access, so
    the kernel hot path never converts a single key.
    """

    __slots__ = ("value", "table_ids", "column_indexes", "row_indexes",
                 "_super_keys", "super_key_bytes", "key_width", "runs",
                 "_cov_cache")

    def __init__(
        self,
        value: str,
        table_ids: Sequence[int],
        column_indexes: Sequence[int],
        row_indexes: Sequence[int],
        super_keys: Sequence[int] | None,
        runs: Sequence[TableRun],
        *,
        super_key_bytes=None,
        key_width: int | None = None,
    ):
        self.value = value
        self.table_ids = table_ids
        self.column_indexes = column_indexes
        self.row_indexes = row_indexes
        if super_keys is None and super_key_bytes is None:
            raise ValueError(
                "a FetchBlock needs super_keys or a packed super_key_bytes buffer"
            )
        self._super_keys = super_keys
        self.super_key_bytes = super_key_bytes
        self.key_width = key_width
        self.runs = runs
        self._cov_cache: dict | None = None

    def entry_coverage(
        self, key_super_key: int, length_shift: int | None, kernel: str
    ) -> tuple[bytes, bytes | None]:
        """Memoised :func:`~repro.index.kernels.entry_coverage` of this block.

        The vector pass over the whole posting column runs once per
        ``(key entry, kernel)`` and every per-table block spliced out of
        this fetch block reuses the bitmaps — that amortisation is what
        makes the kernel path beat the row loop even on few-row candidate
        tables.  Requires the packed buffer (``super_key_bytes``).
        """
        cache = self._cov_cache
        if cache is None:
            cache = self._cov_cache = {}
        token = (key_super_key, length_shift, kernel)
        hit = cache.get(token)
        if hit is None:
            from .kernels import entry_coverage

            hit = cache[token] = entry_coverage(
                self.super_key_bytes,
                self.key_width,
                key_super_key,
                length_shift,
                kernel,
            )
        return hit

    def query_coverage(
        self, entries, length_shift: int | None, kernel: str
    ) -> list[tuple[bytes, bytes | None]]:
        """All of a query value's entry bitmaps, memoised as one list.

        ``entries`` is the query key map's entry list for this block's value;
        the memo keeps a reference to it and matches by identity (safe: a
        held reference cannot be recycled), so the per-run cost inside one
        query drops to a single dict hit even for multi-entry values.
        """
        cache = self._cov_cache
        if cache is None:
            cache = self._cov_cache = {}
        token = ("query", length_shift, kernel)
        hit = cache.get(token)
        if hit is not None and hit[0] is entries:
            return hit[1]
        per_level = [
            self.entry_coverage(key_super_key, length_shift, kernel)
            for _key_tuple, key_super_key in entries
        ]
        cache[token] = (entries, per_level)
        return per_level

    @property
    def super_keys(self) -> Sequence[int]:
        """The integer super-key column (materialised lazily when packed)."""
        column = self._super_keys
        if column is None:
            column = self._super_keys = unpack_super_keys(
                self.super_key_bytes, self.key_width
            )
        return column

    def __len__(self) -> int:
        return len(self.row_indexes)

    def __iter__(self) -> Iterator[FetchedItem]:
        value = self.value
        for table_id, column_index, row_index, super_key in zip(
            self.table_ids, self.column_indexes, self.row_indexes, self.super_keys
        ):
            yield FetchedItem(value, table_id, column_index, row_index, super_key)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FetchBlock):
            return NotImplemented
        return self.value == other.value and self.items() == other.items()

    def __repr__(self) -> str:
        return f"FetchBlock(value={self.value!r}, items={len(self)})"

    def items(self) -> list[FetchedItem]:
        """Materialise the block as classic per-item fetch records."""
        return list(self)

    @classmethod
    def empty(cls, value: str) -> "FetchBlock":
        """An empty block (used to cache negative fetch results)."""
        return cls(value, (), (), (), (), ())

    @classmethod
    def from_fetched_items(
        cls, value: str, items: Sequence[FetchedItem]
    ) -> "FetchBlock":
        """Build a block from classic fetch records (legacy-layout bridge)."""
        table_ids = [item.table_id for item in items]
        return cls(
            value=value,
            table_ids=table_ids,
            column_indexes=[item.column_index for item in items],
            row_indexes=[item.row_index for item in items],
            super_keys=[item.super_key for item in items],
            runs=compute_table_runs(table_ids),
        )


def blocks_from_fetch(items: Iterable[FetchedItem]) -> list[FetchBlock]:
    """Group classic per-item fetch results into per-value blocks.

    The bridge from any per-item ``fetch`` to the struct-of-arrays world:
    one block per value in first-seen order, items in fetch order, values
    without postings yielding no block — exactly the ``fetch_batch``
    contract.
    """
    grouped: dict[str, list[FetchedItem]] = {}
    for item in items:
        grouped.setdefault(item.value, []).append(item)
    return [
        FetchBlock.from_fetched_items(value, value_items)
        for value, value_items in grouped.items()
    ]


class TableBlock:
    """All fetched postings of one candidate table, as parallel plain lists.

    This is what the discovery engine's filtering loop (Algorithm 1 lines
    4-9) iterates: ``zip(values, row_indexes, super_keys)`` touches no
    per-item objects.  Blocks are assembled run-by-run with slice copies from
    the packed fetch blocks.

    For the vectorized prefilter kernels the block additionally tracks
    ``value_runs`` (maximal runs of equal consecutive probe values, known
    for free at assembly time) and — when every contributing fetch block
    carries one — the packed fixed-width super-key buffer
    (``super_key_bytes`` / ``key_width``), spliced together with slice
    copies.  The integer ``super_keys`` column is materialised lazily, so
    the kernel path never converts keys it does not read.
    """

    __slots__ = ("table_id", "values", "column_indexes", "row_indexes",
                 "value_runs", "key_width", "super_key_bytes",
                 "_super_keys", "_sk_sources", "cov_sources")

    def __init__(self, table_id: int):
        self.table_id = table_id
        self.values: list[str] = []
        self.column_indexes: list[int] = []
        self.row_indexes: list[int] = []
        #: Maximal runs of equal consecutive probe values.
        self.value_runs: list[ValueRun] = []
        self.key_width: int | None = None
        #: Packed super-key buffer; degrades to ``None`` once any
        #: contributing block lacks one (or widths disagree).
        self.super_key_bytes: bytearray | None = bytearray()
        self._super_keys: list[int] | None = None
        self._sk_sources: list[tuple[FetchBlock, int, int]] = []
        #: Provenance of every appended run — ``(fetch block, fetch start,
        #: table start, count)`` — for the coverage-splicing prefilter path;
        #: degrades to ``None`` when a run arrives without a packed source
        #: (spilled keys, per-item bridge).
        self.cov_sources: list[tuple[FetchBlock, int, int, int]] | None = []

    def __len__(self) -> int:
        return len(self.values)

    @property
    def super_keys(self) -> list[int]:
        """The integer super-key column (materialised lazily on first use)."""
        column = self._super_keys
        if column is None:
            column = []
            for block, start, end in self._sk_sources:
                column.extend(block.super_keys[start:end])
            self._super_keys = column
            self._sk_sources = []
        return column

    def _note_run(self, value: str, position: int, count: int) -> None:
        runs = self.value_runs
        if runs and runs[-1][0] == value and runs[-1][2] == position:
            runs[-1] = (value, runs[-1][1], position + count)
        else:
            runs.append((value, position, position + count))

    def extend_run(self, block: FetchBlock, start: int, end: int) -> None:
        """Append one table run of ``block`` (C-level slice copies)."""
        count = end - start
        position = len(self.row_indexes)
        self.values.extend(repeat(block.value, count))
        self.column_indexes.extend(block.column_indexes[start:end])
        self.row_indexes.extend(block.row_indexes[start:end])
        self._note_run(block.value, position, count)
        if self.cov_sources is not None:
            if block.super_key_bytes is not None:
                self.cov_sources.append((block, start, position, count))
            else:
                self.cov_sources = None
        packed = self.super_key_bytes
        if packed is not None:
            source = block.super_key_bytes
            width = block.key_width
            if source is not None and (
                self.key_width is None or self.key_width == width
            ):
                self.key_width = width
                packed += source[start * width : end * width]
            else:
                self.super_key_bytes = None
                self.key_width = None
        if self._super_keys is not None:
            self._super_keys.extend(block.super_keys[start:end])
        else:
            self._sk_sources.append((block, start, end))

    def append_item(
        self, value: str, column_index: int, row_index: int, super_key: int
    ) -> None:
        """Append one classic per-item posting (the legacy-``fetch`` bridge)."""
        position = len(self.row_indexes)
        self.values.append(value)
        self.column_indexes.append(column_index)
        self.row_indexes.append(row_index)
        self._note_run(value, position, 1)
        self.super_key_bytes = None
        self.key_width = None
        self.cov_sources = None
        self.super_keys.append(super_key)

    def items(self) -> list[FetchedItem]:
        """Materialise the block as classic per-item fetch records."""
        return [
            FetchedItem(value, self.table_id, column_index, row_index, super_key)
            for value, column_index, row_index, super_key in zip(
                self.values, self.column_indexes, self.row_indexes, self.super_keys
            )
        ]


def group_into_table_blocks(
    blocks: Iterable[FetchBlock],
    into: dict[int, TableBlock] | None = None,
) -> dict[int, TableBlock]:
    """Regroup per-value fetch blocks into per-table blocks (line 5 of Alg. 1).

    Preserves the fetch order exactly: per probed value in first-seen order,
    per posting in insertion order — the grouping the legacy
    ``fetch_grouped_by_table`` produced, minus the per-item records.
    ``into`` merges incrementally into an existing grouping (the chunked
    fetch path of the adaptive executor); blocks must then arrive in probe
    order for the result to equal a single-shot call.
    """
    grouped: dict[int, TableBlock] = {} if into is None else into
    for block in blocks:
        for table_id, start, end in block.runs:
            table_block = grouped.get(table_id)
            if table_block is None:
                table_block = grouped[table_id] = TableBlock(table_id)
            table_block.extend_run(block, start, end)
    return grouped


def group_items_into_table_blocks(
    items: Iterable[FetchedItem],
    into: dict[int, TableBlock] | None = None,
) -> dict[int, TableBlock]:
    """Per-item fallback of :func:`group_into_table_blocks`.

    Used when an index only exposes the classic ``fetch`` surface (no
    struct-of-arrays ``fetch_batch``); same ordering contract.
    """
    grouped: dict[int, TableBlock] = {} if into is None else into
    for item in items:
        table_block = grouped.get(item.table_id)
        if table_block is None:
            table_block = grouped[item.table_id] = TableBlock(item.table_id)
        table_block.append_item(
            item.value, item.column_index, item.row_index, item.super_key
        )
    return grouped


def fetch_table_blocks(index, values: Iterable[str]) -> dict[int, TableBlock]:
    """Fetch ``values`` from any index and group the postings by table.

    Uses the batched struct-of-arrays path when the index provides
    ``fetch_batch`` (all indexes in this repository do) and falls back to the
    classic per-item ``fetch`` otherwise, so the discovery engine runs
    unchanged on third-party index objects.
    """
    fetch_batch = getattr(index, "fetch_batch", None)
    if fetch_batch is not None:
        return group_into_table_blocks(fetch_batch(values))
    return group_items_into_table_blocks(index.fetch(values))
