"""Columnar (struct-of-arrays) posting-list layout.

The classic layout of :class:`~repro.index.inverted.InvertedIndex` stores one
Python :class:`~repro.index.posting.PostingListItem` NamedTuple per PL item
and materialises a :class:`~repro.index.posting.FetchedItem` per item on every
fetch — per-row object overhead that in-memory analytics engines eliminate
with columnar, array-packed layouts.  This module provides the packed
equivalent used by the index's (default) ``columnar`` layout:

* :class:`ColumnarPostingList` — the postings of one value as three parallel
  flat integer arrays (``array('q')`` table ids, ``array('i')`` column
  indexes, ``array('q')`` row indexes) plus memoised *table runs* and
  *super-key columns* so repeated fetches do no per-item work;
* :class:`PackedSuperKeys` — the per-row super keys packed into one
  fixed-width byte buffer (``hash_size / 8`` bytes per row) instead of a
  dictionary of arbitrary-precision integers (with a spill map for keys that
  exceed the configured width);
* :class:`DictSuperKeys` — the legacy dictionary store behind the same
  interface, so both layouts share one code path;
* :class:`FetchBlock` — the struct-of-arrays result of ``fetch_batch``: one
  block per probed value, referencing the packed columns directly (zero-copy)
  with the super-key column attached;
* :class:`TableBlock` — the per-candidate-table view Algorithm 1's filtering
  loop iterates (lines 4-9): parallel plain lists assembled run-by-run with
  C-level slice copies instead of per-item tuple construction.

Every structure can still round-trip to the classic per-item records
(:meth:`FetchBlock.items`, :meth:`ColumnarPostingList.items`), which is what
keeps ``InvertedIndex.fetch`` byte-compatible across layouts.
"""

from __future__ import annotations

from array import array
from itertools import repeat
from typing import Callable, Iterable, Iterator, Sequence

from ..config import INDEX_LAYOUTS
from .posting import FetchedItem, PostingListItem

#: Supported posting-list layouts of the inverted index (the canonical
#: definition lives in :mod:`repro.config`, next to its validation).
LAYOUTS: tuple[str, ...] = INDEX_LAYOUTS

#: A run of consecutive postings of one value that share a table id:
#: ``(table_id, start, end)`` half-open positions into the packed columns.
TableRun = tuple[int, int, int]


def compute_table_runs(table_ids: Sequence[int]) -> list[TableRun]:
    """Return the maximal runs of equal consecutive table ids.

    Postings are appended in corpus-scan order (table by table), so a value's
    ``table_ids`` column consists of few long runs; grouping by table then
    costs one slice copy per run instead of one append per item.
    """
    runs: list[TableRun] = []
    start = 0
    previous: int | None = None
    position = 0
    for position, table_id in enumerate(table_ids):
        if table_id != previous:
            if previous is not None:
                runs.append((previous, start, position))
            previous = table_id
            start = position
    if previous is not None:
        runs.append((previous, start, position + 1))
    return runs


class DictSuperKeys:
    """Row super keys in a plain dictionary (the ``legacy`` layout's store).

    Exposes the same interface as :class:`PackedSuperKeys` — including the
    ``epoch`` counter the memoised super-key columns are validated against —
    so the index code is layout-agnostic.
    """

    __slots__ = ("epoch", "_entries")

    def __init__(self) -> None:
        #: Bumped on every mutation; consumers key memoised data on it.
        self.epoch = 0
        self._entries: dict[tuple[int, int], int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._entries

    def get(self, key: tuple[int, int], default: int | None = 0) -> int | None:
        """Return the super key stored under ``key`` (or ``default``)."""
        return self._entries.get(key, default)

    def set(self, key: tuple[int, int], value: int) -> None:
        """Store (or replace) one super key."""
        self.epoch += 1
        self._entries[key] = value

    def or_into(self, key: tuple[int, int], value_hash: int) -> int:
        """OR ``value_hash`` into the stored key (0 when absent); return it."""
        self.epoch += 1
        updated = self._entries.get(key, 0) | value_hash
        self._entries[key] = updated
        return updated

    def pop(self, key: tuple[int, int]) -> None:
        """Drop one super key (no-op when absent)."""
        self.epoch += 1
        self._entries.pop(key, None)

    def items(self) -> Iterator[tuple[tuple[int, int], int]]:
        """Iterate over ``((table_id, row_index), super_key)`` pairs."""
        return iter(self._entries.items())

    def get_many(
        self, table_ids: Sequence[int], row_indexes: Sequence[int]
    ) -> list[int]:
        """Return the super keys of the given rows (0 when absent), in order."""
        get = self._entries.get
        return [get(key, 0) for key in zip(table_ids, row_indexes)]


class PackedSuperKeys:
    """Row super keys packed into one fixed-width byte buffer.

    Each row owns one ``width_bytes`` slot in a shared :class:`bytearray`
    (big-endian), addressed through a ``(table_id, row_index) -> slot``
    dictionary; freed slots are recycled.  Keys too wide for the configured
    hash size spill into a plain dictionary so that correctness never depends
    on the declared width.
    """

    __slots__ = ("width_bytes", "epoch", "_slots", "_buffer", "_free", "_spill")

    def __init__(self, hash_size_bits: int = 128):
        #: Bytes per packed super key (the configured hash width).
        self.width_bytes = max(1, (int(hash_size_bits) + 7) // 8)
        #: Bumped on every mutation; consumers key memoised data on it.
        self.epoch = 0
        self._slots: dict[tuple[int, int], int] = {}
        self._buffer = bytearray()
        self._free: list[int] = []
        self._spill: dict[tuple[int, int], int] = {}

    def __len__(self) -> int:
        return len(self._slots) + len(self._spill)

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._slots or key in self._spill

    def _fits(self, value: int) -> bool:
        return 0 <= value < (1 << (8 * self.width_bytes))

    def get(self, key: tuple[int, int], default: int | None = 0) -> int | None:
        """Return the super key stored under ``key`` (or ``default``)."""
        slot = self._slots.get(key)
        if slot is None:
            return self._spill.get(key, default)
        offset = slot * self.width_bytes
        return int.from_bytes(
            self._buffer[offset : offset + self.width_bytes], "big"
        )

    def set(self, key: tuple[int, int], value: int) -> None:
        """Store (or replace) one super key in its packed slot."""
        self.epoch += 1
        if not self._fits(value):
            slot = self._slots.pop(key, None)
            if slot is not None:
                self._free.append(slot)
            self._spill[key] = value
            return
        slot = self._slots.get(key)
        if slot is None:
            self._spill.pop(key, None)
            if self._free:
                slot = self._free.pop()
            else:
                slot = len(self._buffer) // self.width_bytes
                self._buffer.extend(bytes(self.width_bytes))
            self._slots[key] = slot
        offset = slot * self.width_bytes
        self._buffer[offset : offset + self.width_bytes] = value.to_bytes(
            self.width_bytes, "big"
        )

    def or_into(self, key: tuple[int, int], value_hash: int) -> int:
        """OR ``value_hash`` into the stored key (0 when absent); return it."""
        updated = (self.get(key, 0) or 0) | value_hash
        self.set(key, updated)
        return updated

    def pop(self, key: tuple[int, int]) -> None:
        """Drop one super key, recycling its packed slot (no-op when absent)."""
        self.epoch += 1
        slot = self._slots.pop(key, None)
        if slot is not None:
            self._free.append(slot)
        else:
            self._spill.pop(key, None)

    def items(self) -> Iterator[tuple[tuple[int, int], int]]:
        """Iterate over ``((table_id, row_index), super_key)`` pairs."""
        width = self.width_bytes
        buffer = self._buffer
        for key, slot in self._slots.items():
            offset = slot * width
            yield key, int.from_bytes(buffer[offset : offset + width], "big")
        yield from self._spill.items()

    def get_many(
        self, table_ids: Sequence[int], row_indexes: Sequence[int]
    ) -> list[int]:
        """Return the super keys of the given rows (0 when absent), in order."""
        slots = self._slots
        spill = self._spill
        buffer = self._buffer
        width = self.width_bytes
        from_bytes = int.from_bytes
        out: list[int] = []
        append = out.append
        for key in zip(table_ids, row_indexes):
            slot = slots.get(key)
            if slot is None:
                append(spill.get(key, 0))
            else:
                offset = slot * width
                append(from_bytes(buffer[offset : offset + width], "big"))
        return out


class ColumnarPostingList:
    """The postings of one value as three parallel packed integer arrays.

    ``table_ids`` and ``row_indexes`` are 64-bit (``'q'``), ``column_indexes``
    32-bit (``'i'``).  Two memoisations make repeated fetches cheap: the table
    *runs* (keyed by the item count, which only changes when postings change)
    and the *super-key column* (keyed additionally by the identity and epoch
    of the super-key store it was computed from, so shard-local and central
    stores never cross-contaminate).
    """

    __slots__ = (
        "table_ids",
        "column_indexes",
        "row_indexes",
        "_runs_cache",
        "_super_keys_cache",
    )

    def __init__(self) -> None:
        self.table_ids = array("q")
        self.column_indexes = array("i")
        self.row_indexes = array("q")
        self._runs_cache: tuple[int, list[TableRun]] | None = None
        self._super_keys_cache: tuple[object, int, int, list[int]] | None = None

    def __len__(self) -> int:
        return len(self.table_ids)

    def __getstate__(self):
        # The memo caches are derived data; a pickled/deep-copied posting
        # list must not drag (dead) super-key stores along with it.
        return (self.table_ids, self.column_indexes, self.row_indexes)

    def __setstate__(self, state) -> None:
        self.table_ids, self.column_indexes, self.row_indexes = state
        self._runs_cache = None
        self._super_keys_cache = None

    def append(self, table_id: int, column_index: int, row_index: int) -> None:
        """Append one posting to the packed columns."""
        self.table_ids.append(table_id)
        self.column_indexes.append(column_index)
        self.row_indexes.append(row_index)

    def item(self, position: int) -> PostingListItem:
        """Materialise the posting at ``position`` as a classic record."""
        return PostingListItem(
            table_id=self.table_ids[position],
            column_index=self.column_indexes[position],
            row_index=self.row_indexes[position],
        )

    def items(self) -> list[PostingListItem]:
        """Materialise every posting as a classic per-item record."""
        return [
            PostingListItem(table_id, column_index, row_index)
            for table_id, column_index, row_index in zip(
                self.table_ids, self.column_indexes, self.row_indexes
            )
        ]

    def runs(self) -> list[TableRun]:
        """The memoised table runs of this posting list."""
        count = len(self.table_ids)
        cached = self._runs_cache
        if cached is not None and cached[0] == count:
            return cached[1]
        runs = compute_table_runs(self.table_ids)
        self._runs_cache = (count, runs)
        return runs

    def super_key_column(
        self, store: DictSuperKeys | PackedSuperKeys
    ) -> list[int]:
        """The memoised super-key column of this posting list under ``store``.

        Valid while the store object, its epoch, and the item count are
        unchanged; any posting append or super-key mutation recomputes.
        """
        count = len(self.table_ids)
        cached = self._super_keys_cache
        if (
            cached is not None
            and cached[0] is store
            and cached[1] == store.epoch
            and cached[2] == count
        ):
            return cached[3]
        column = store.get_many(self.table_ids, self.row_indexes)
        self._super_keys_cache = (store, store.epoch, count, column)
        return column

    def filtered(
        self, keep: Callable[[int, int, int], bool]
    ) -> tuple["ColumnarPostingList", int]:
        """Return ``(kept postings, removed count)`` under the predicate.

        Returns ``self`` unchanged (and 0) when nothing is removed, so the
        memoised runs and super-key columns survive no-op maintenance.
        """
        kept = ColumnarPostingList()
        removed = 0
        for table_id, column_index, row_index in zip(
            self.table_ids, self.column_indexes, self.row_indexes
        ):
            if keep(table_id, column_index, row_index):
                kept.append(table_id, column_index, row_index)
            else:
                removed += 1
        if removed == 0:
            return self, 0
        return kept, removed

    def copy(self) -> "ColumnarPostingList":
        """Return an independent copy of the packed columns (C-level memcpy)."""
        copied = ColumnarPostingList()
        copied.table_ids = array("q", self.table_ids)
        copied.column_indexes = array("i", self.column_indexes)
        copied.row_indexes = array("q", self.row_indexes)
        return copied

    @classmethod
    def from_columns(
        cls,
        table_ids: Iterable[int],
        column_indexes: Iterable[int],
        row_indexes: Iterable[int],
    ) -> "ColumnarPostingList":
        """Build a posting list directly from packed (or packable) columns."""
        columns = cls()
        columns.table_ids.extend(table_ids)
        columns.column_indexes.extend(column_indexes)
        columns.row_indexes.extend(row_indexes)
        if not (
            len(columns.table_ids)
            == len(columns.column_indexes)
            == len(columns.row_indexes)
        ):
            raise ValueError("posting columns must have equal lengths")
        return columns


class FetchBlock:
    """Struct-of-arrays fetch result of one probe value.

    The posting columns reference the index's packed arrays directly (no
    copy); ``super_keys`` is the per-posting super-key column and ``runs`` the
    table runs used to regroup the block by candidate table.  Blocks are
    snapshots: index mutations invalidate them (callers such as the
    posting-list cache drop blocks on mutation).
    """

    __slots__ = ("value", "table_ids", "column_indexes", "row_indexes",
                 "super_keys", "runs")

    def __init__(
        self,
        value: str,
        table_ids: Sequence[int],
        column_indexes: Sequence[int],
        row_indexes: Sequence[int],
        super_keys: Sequence[int],
        runs: Sequence[TableRun],
    ):
        self.value = value
        self.table_ids = table_ids
        self.column_indexes = column_indexes
        self.row_indexes = row_indexes
        self.super_keys = super_keys
        self.runs = runs

    def __len__(self) -> int:
        return len(self.super_keys)

    def __iter__(self) -> Iterator[FetchedItem]:
        value = self.value
        for table_id, column_index, row_index, super_key in zip(
            self.table_ids, self.column_indexes, self.row_indexes, self.super_keys
        ):
            yield FetchedItem(value, table_id, column_index, row_index, super_key)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FetchBlock):
            return NotImplemented
        return self.value == other.value and self.items() == other.items()

    def __repr__(self) -> str:
        return f"FetchBlock(value={self.value!r}, items={len(self)})"

    def items(self) -> list[FetchedItem]:
        """Materialise the block as classic per-item fetch records."""
        return list(self)

    @classmethod
    def empty(cls, value: str) -> "FetchBlock":
        """An empty block (used to cache negative fetch results)."""
        return cls(value, (), (), (), (), ())

    @classmethod
    def from_fetched_items(
        cls, value: str, items: Sequence[FetchedItem]
    ) -> "FetchBlock":
        """Build a block from classic fetch records (legacy-layout bridge)."""
        table_ids = [item.table_id for item in items]
        return cls(
            value=value,
            table_ids=table_ids,
            column_indexes=[item.column_index for item in items],
            row_indexes=[item.row_index for item in items],
            super_keys=[item.super_key for item in items],
            runs=compute_table_runs(table_ids),
        )


def blocks_from_fetch(items: Iterable[FetchedItem]) -> list[FetchBlock]:
    """Group classic per-item fetch results into per-value blocks.

    The bridge from any per-item ``fetch`` to the struct-of-arrays world:
    one block per value in first-seen order, items in fetch order, values
    without postings yielding no block — exactly the ``fetch_batch``
    contract.
    """
    grouped: dict[str, list[FetchedItem]] = {}
    for item in items:
        grouped.setdefault(item.value, []).append(item)
    return [
        FetchBlock.from_fetched_items(value, value_items)
        for value, value_items in grouped.items()
    ]


class TableBlock:
    """All fetched postings of one candidate table, as parallel plain lists.

    This is what the discovery engine's filtering loop (Algorithm 1 lines
    4-9) iterates: ``zip(values, row_indexes, super_keys)`` touches no
    per-item objects.  Blocks are assembled run-by-run with slice copies from
    the packed fetch blocks.
    """

    __slots__ = ("table_id", "values", "column_indexes", "row_indexes",
                 "super_keys")

    def __init__(self, table_id: int):
        self.table_id = table_id
        self.values: list[str] = []
        self.column_indexes: list[int] = []
        self.row_indexes: list[int] = []
        self.super_keys: list[int] = []

    def __len__(self) -> int:
        return len(self.values)

    def extend_run(self, block: FetchBlock, start: int, end: int) -> None:
        """Append one table run of ``block`` (C-level slice copies)."""
        self.values.extend(repeat(block.value, end - start))
        self.column_indexes.extend(block.column_indexes[start:end])
        self.row_indexes.extend(block.row_indexes[start:end])
        self.super_keys.extend(block.super_keys[start:end])

    def items(self) -> list[FetchedItem]:
        """Materialise the block as classic per-item fetch records."""
        return [
            FetchedItem(value, self.table_id, column_index, row_index, super_key)
            for value, column_index, row_index, super_key in zip(
                self.values, self.column_indexes, self.row_indexes, self.super_keys
            )
        ]


def group_into_table_blocks(
    blocks: Iterable[FetchBlock],
    into: dict[int, TableBlock] | None = None,
) -> dict[int, TableBlock]:
    """Regroup per-value fetch blocks into per-table blocks (line 5 of Alg. 1).

    Preserves the fetch order exactly: per probed value in first-seen order,
    per posting in insertion order — the grouping the legacy
    ``fetch_grouped_by_table`` produced, minus the per-item records.
    ``into`` merges incrementally into an existing grouping (the chunked
    fetch path of the adaptive executor); blocks must then arrive in probe
    order for the result to equal a single-shot call.
    """
    grouped: dict[int, TableBlock] = {} if into is None else into
    for block in blocks:
        for table_id, start, end in block.runs:
            table_block = grouped.get(table_id)
            if table_block is None:
                table_block = grouped[table_id] = TableBlock(table_id)
            table_block.extend_run(block, start, end)
    return grouped


def group_items_into_table_blocks(
    items: Iterable[FetchedItem],
    into: dict[int, TableBlock] | None = None,
) -> dict[int, TableBlock]:
    """Per-item fallback of :func:`group_into_table_blocks`.

    Used when an index only exposes the classic ``fetch`` surface (no
    struct-of-arrays ``fetch_batch``); same ordering contract.
    """
    grouped: dict[int, TableBlock] = {} if into is None else into
    for item in items:
        table_block = grouped.get(item.table_id)
        if table_block is None:
            table_block = grouped[item.table_id] = TableBlock(item.table_id)
        table_block.values.append(item.value)
        table_block.column_indexes.append(item.column_index)
        table_block.row_indexes.append(item.row_index)
        table_block.super_keys.append(item.super_key)
    return grouped


def fetch_table_blocks(index, values: Iterable[str]) -> dict[int, TableBlock]:
    """Fetch ``values`` from any index and group the postings by table.

    Uses the batched struct-of-arrays path when the index provides
    ``fetch_batch`` (all indexes in this repository do) and falls back to the
    classic per-item ``fetch`` otherwise, so the discovery engine runs
    unchanged on third-party index objects.
    """
    fetch_batch = getattr(index, "fetch_batch", None)
    if fetch_batch is not None:
        return group_into_table_blocks(fetch_batch(values))
    return group_items_into_table_blocks(index.fetch(values))
