"""Value-partitioned (scale-out) extended inverted index.

:class:`~repro.core.parallel.ShardedMateDiscovery` shards the *corpus* and
runs one full engine per shard.  This module shards the *index* instead —
the architecture a serving deployment of the paper's system would use: one
logical index whose posting lists are partitioned across workers by
``hash(value) % num_shards``, queried by a single engine.

:class:`ShardedInvertedIndex` satisfies the exact query surface
:class:`~repro.core.discovery.MateDiscovery` consumes (``fetch``,
``fetch_batch``, ``fetch_grouped_by_table``, ``posting_count_for_values``,
the posting-list and super-key accessors, and the mutation operations of the
maintenance layer), so the engine runs unchanged on top of it:

* **postings** live in one :class:`~repro.index.inverted.InvertedIndex` per
  shard (columnar packed arrays by default, see
  :mod:`repro.index.columnar`); a value's shard is chosen by
  :func:`shard_of_value`, which is a stable CRC-32 based hash so that shard
  assignment survives persistence and process restarts (Python's builtin
  ``hash`` is salted per process);
* **super keys** are keyed by row, not by value, and are therefore kept in
  one central store shared by all shards — packed fixed-width bytes on the
  columnar layout — and ``fetch_batch`` routes each probe value to its shard
  and attaches the central super-key column, exactly as line 4 of
  Algorithm 1 requires;
* ``fetch``/``fetch_batch`` optionally fan out across shards on a thread
  pool (``max_workers``), the same worker-pool idiom
  :class:`~repro.core.parallel.ShardedMateDiscovery` uses for per-shard
  engines.

Sharded fetch is *bit-identical* to monolithic fetch on the same corpus:
values are deduplicated in first-seen order and each value's posting list
keeps its insertion order, so ``ShardedInvertedIndex.fetch(values) ==
InvertedIndex.fetch(values)`` — the property ``tests/test_service.py``
asserts.
"""

from __future__ import annotations

import json
import zlib
from collections import defaultdict
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from ..config import MateConfig
from ..datamodel import MISSING, TableCorpus
from ..exceptions import IndexError_
from .builder import IndexBuilder
from .columnar import (
    LAYOUTS,
    ColumnarPostingList,
    DictSuperKeys,
    FetchBlock,
    PackedSuperKeys,
    blocks_from_fetch,
)
from .inverted import InvertedIndex
from .posting import FetchedItem, PostingListItem


def shard_of_value(value: str, num_shards: int) -> int:
    """Return the shard owning ``value``'s posting list.

    Uses CRC-32 rather than Python's builtin ``hash`` so the assignment is
    deterministic across processes — a sharded index written through a
    :class:`~repro.storage.backend.StorageBackend` must route the same value
    to the same shard after it is reloaded elsewhere.
    """
    if num_shards == 1:
        return 0
    return zlib.crc32(value.encode("utf-8")) % num_shards


class ShardedInvertedIndex:
    """An extended inverted index partitioned by value hash.

    Drop-in compatible with :class:`~repro.index.inverted.InvertedIndex` for
    every consumer in the repository (discovery engine, column selectors,
    maintenance layer); see the module docstring for the partitioning rules.
    """

    def __init__(
        self,
        num_shards: int = 4,
        hash_function_name: str = "xash",
        hash_size: int = 128,
        max_workers: int | None = None,
        layout: str = "columnar",
    ):
        if num_shards <= 0:
            raise IndexError_(f"num_shards must be positive, got {num_shards}")
        if layout not in LAYOUTS:
            raise IndexError_(
                f"unknown posting layout {layout!r}; expected one of {LAYOUTS}"
            )
        #: Name of the hash function the super keys were generated with.
        self.hash_function_name = hash_function_name
        #: Width of the stored super keys in bits.
        self.hash_size = hash_size
        #: Posting-list storage layout shared by every shard.
        self.layout = layout
        self._columnar = layout == "columnar"
        #: Number of worker threads used to fan ``fetch`` out across shards
        #: (``None`` or 1 fetches serially).
        self.max_workers = max_workers
        self._shards: list[InvertedIndex] = [
            InvertedIndex(
                hash_function_name=hash_function_name,
                hash_size=hash_size,
                layout=layout,
            )
            for _ in range(num_shards)
        ]
        self._super_keys: PackedSuperKeys | DictSuperKeys = (
            PackedSuperKeys(hash_size) if self._columnar else DictSuperKeys()
        )
        self._table_rows: dict[int, set[int]] = defaultdict(set)

    # ------------------------------------------------------------------
    # Shard topology
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of posting-list partitions."""
        return len(self._shards)

    def shard_of(self, value: str) -> int:
        """Return the shard index owning ``value``."""
        return shard_of_value(value, self.num_shards)

    def shard(self, shard_index: int) -> InvertedIndex:
        """Return one posting-list partition (for persistence and tests)."""
        return self._shards[shard_index]

    def shard_sizes(self) -> list[int]:
        """Number of PL items per shard (the balance a deployment watches)."""
        return [shard.num_posting_items() for shard in self._shards]

    # ------------------------------------------------------------------
    # Introspection (mirrors InvertedIndex)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of distinct indexed values (shards are disjoint)."""
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, value: str) -> bool:
        return value in self._shards[self.shard_of(value)]

    def values(self) -> Iterator[str]:
        """Iterate over the distinct indexed values, shard by shard."""
        for shard in self._shards:
            yield from shard.values()

    def num_posting_items(self) -> int:
        """Total number of PL items across all shards."""
        return sum(self.shard_sizes())

    def num_rows(self) -> int:
        """Number of rows that own a super key."""
        return len(self._super_keys)

    def indexed_tables(self) -> set[int]:
        """Return the ids of all tables with at least one indexed row."""
        return set(self._table_rows)

    def posting_list(self, value: str) -> list[PostingListItem]:
        """Return the posting list of ``value`` (empty when not indexed)."""
        return self._shards[self.shard_of(value)].posting_list(value)

    def posting_columns(self, value: str) -> ColumnarPostingList | None:
        """Return the packed posting columns of ``value`` (columnar layout)."""
        return self._shards[self.shard_of(value)].posting_columns(value)

    def posting_list_length(self, value: str) -> int:
        """Return the number of PL items for ``value`` without copying."""
        return self._shards[self.shard_of(value)].posting_list_length(value)

    def super_key(self, table_id: int, row_index: int) -> int:
        """Return the super key of a row."""
        stored = self._super_keys.get((table_id, row_index), None)
        if stored is None:
            raise IndexError_(
                f"no super key stored for table {table_id} row {row_index}"
            )
        return stored

    def has_row(self, table_id: int, row_index: int) -> bool:
        """Return whether a super key is stored for the row."""
        return (table_id, row_index) in self._super_keys

    def iter_super_keys(self) -> Iterator[tuple[int, int, int]]:
        """Iterate over ``(table_id, row_index, super_key)`` triples."""
        for (table_id, row_index), super_key in self._super_keys.items():
            yield table_id, row_index, super_key

    # ------------------------------------------------------------------
    # Mutation (used by IndexBuilder and the maintenance layer)
    # ------------------------------------------------------------------
    def add_posting(
        self, value: str, table_id: int, column_index: int, row_index: int
    ) -> None:
        """Add a single PL item to the shard owning ``value``."""
        if value == MISSING:
            return
        self._shards[self.shard_of(value)].add_posting(
            value, table_id, column_index, row_index
        )
        self._table_rows[table_id].add(row_index)

    def set_posting_columns(
        self, value: str, columns: ColumnarPostingList
    ) -> None:
        """Install pre-packed posting columns on the shard owning ``value``.

        The packed bulk-loading path of :meth:`InvertedIndex.set_posting_columns
        <repro.index.inverted.InvertedIndex.set_posting_columns>`; requires
        the columnar layout.
        """
        if value == MISSING or not len(columns):
            return
        self._shards[self.shard_of(value)].set_posting_columns(value, columns)
        table_rows = self._table_rows
        for table_id, row_index in zip(columns.table_ids, columns.row_indexes):
            table_rows[table_id].add(row_index)

    def set_super_key(self, table_id: int, row_index: int, super_key: int) -> None:
        """Store (or replace) the super key of a row."""
        self._super_keys.set((table_id, row_index), super_key)
        self._table_rows[table_id].add(row_index)

    def or_into_super_key(self, table_id: int, row_index: int, value_hash: int) -> int:
        """OR a new value hash into an existing row super key (column insert)."""
        updated = self._super_keys.or_into((table_id, row_index), value_hash)
        self._table_rows[table_id].add(row_index)
        return updated

    def remove_table(self, table_id: int) -> int:
        """Remove every posting and super key of ``table_id`` from all shards."""
        removed = sum(shard.remove_table(table_id) for shard in self._shards)
        for row_index in self._table_rows.pop(table_id, set()):
            self._super_keys.pop((table_id, row_index))
        return removed

    def remove_row(self, table_id: int, row_index: int) -> int:
        """Remove the postings and super key of a single row."""
        removed = sum(
            shard.remove_row(table_id, row_index) for shard in self._shards
        )
        self._super_keys.pop((table_id, row_index))
        rows = self._table_rows.get(table_id)
        if rows is not None:
            rows.discard(row_index)
            if not rows:
                del self._table_rows[table_id]
        return removed

    def remove_column(self, table_id: int, column_index: int) -> int:
        """Remove the postings of one column (super keys must be rebuilt by the caller)."""
        return sum(
            shard.remove_column(table_id, column_index) for shard in self._shards
        )

    # ------------------------------------------------------------------
    # Discovery-phase retrieval
    # ------------------------------------------------------------------
    def fetch_batch(self, values: Iterable[str]) -> list[FetchBlock]:
        """Fetch the postings of ``values`` as struct-of-arrays blocks.

        Probe values are routed to their owning shard (concurrently when
        ``max_workers`` > 1), each shard hands back its packed posting
        columns, and the blocks are reassembled in the original first-seen
        value order with the *central* super-key column attached — identical
        content to :meth:`InvertedIndex.fetch_batch
        <repro.index.inverted.InvertedIndex.fetch_batch>` on the same corpus.
        """
        ordered = [v for v in dict.fromkeys(values) if v != MISSING]
        by_shard: dict[int, list[str]] = defaultdict(list)
        for value in ordered:
            by_shard[self.shard_of(value)].append(value)

        if self._columnar:
            columns: dict[str, ColumnarPostingList] = {}
            for shard_columns in self._map_shards(
                self._fetch_shard_columns, by_shard
            ):
                columns.update(shard_columns)
            store = self._super_keys
            blocks: list[FetchBlock] = []
            for value in ordered:
                value_columns = columns.get(value)
                if value_columns is None or not len(value_columns):
                    continue
                packed = value_columns.super_key_packed(store)
                if packed is not None:
                    blocks.append(
                        FetchBlock(
                            value,
                            value_columns.table_ids,
                            value_columns.column_indexes,
                            value_columns.row_indexes,
                            None,
                            value_columns.runs(),
                            super_key_bytes=packed,
                            key_width=store.width_bytes,
                        )
                    )
                else:
                    blocks.append(
                        FetchBlock(
                            value,
                            value_columns.table_ids,
                            value_columns.column_indexes,
                            value_columns.row_indexes,
                            value_columns.super_key_column(store),
                            value_columns.runs(),
                        )
                    )
            return blocks

        postings: dict[str, list[PostingListItem]] = {}
        for shard_postings in self._map_shards(
            self._fetch_shard_postings, by_shard
        ):
            postings.update(shard_postings)
        get_super_key = self._super_keys.get
        return blocks_from_fetch(
            FetchedItem.from_posting(
                value, item, get_super_key((item.table_id, item.row_index), 0)
            )
            for value in ordered
            for item in postings.get(value, ())
        )

    def _map_shards(self, worker, by_shard: dict[int, list[str]]):
        """Run ``worker`` over the shard routing, on a pool when configured."""
        entries = list(by_shard.items())
        if self.max_workers and self.max_workers > 1 and len(entries) > 1:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                return list(pool.map(worker, entries))
        return [worker(entry) for entry in entries]

    def _fetch_shard_columns(
        self, entry: tuple[int, list[str]]
    ) -> dict[str, ColumnarPostingList]:
        """Fetch the packed posting columns of one shard (pool worker)."""
        shard_index, shard_values = entry
        shard = self._shards[shard_index]
        columns: dict[str, ColumnarPostingList] = {}
        for value in shard_values:
            value_columns = shard.posting_columns(value)
            if value_columns is not None:
                columns[value] = value_columns
        return columns

    def _fetch_shard_postings(
        self, entry: tuple[int, list[str]]
    ) -> dict[str, list[PostingListItem]]:
        """Fetch the posting lists of one shard's probe values (pool worker)."""
        shard_index, shard_values = entry
        shard = self._shards[shard_index]
        return {value: shard.posting_list(value) for value in shard_values}

    def fetch(self, values: Iterable[str]) -> list[FetchedItem]:
        """Fetch the PL items (with super keys) for every value in ``values``.

        Flattens :meth:`fetch_batch`, so the output is identical to
        :meth:`InvertedIndex.fetch <repro.index.inverted.InvertedIndex.fetch>`
        on the same corpus.
        """
        fetched: list[FetchedItem] = []
        extend = fetched.extend
        for block in self.fetch_batch(values):
            extend(block)
        return fetched

    def fetch_grouped_by_table(
        self, values: Iterable[str]
    ) -> dict[int, list[FetchedItem]]:
        """Fetch PL items and group them by table id (line 5 of Algorithm 1)."""
        grouped: dict[int, list[FetchedItem]] = defaultdict(list)
        for item in self.fetch(values):
            grouped[item.table_id].append(item)
        return dict(grouped)

    def posting_count_for_values(self, values: Sequence[str]) -> int:
        """Total number of PL items the given probe values would fetch."""
        return sum(
            self.posting_list_length(value)
            for value in dict.fromkeys(values)
            if value != MISSING
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_index(
        cls,
        index: InvertedIndex,
        num_shards: int,
        max_workers: int | None = None,
    ) -> "ShardedInvertedIndex":
        """Partition an existing monolithic index into ``num_shards`` shards."""
        sharded = cls(
            num_shards=num_shards,
            hash_function_name=index.hash_function_name,
            hash_size=index.hash_size,
            max_workers=max_workers,
            layout=index.layout,
        )
        if index.layout == "columnar":
            # Wholesale per-value moves: every posting of a value lands on one
            # shard, so the packed columns transfer without materialising
            # per-item records (copied — the source index stays independent).
            for value in index.values():
                columns = index.posting_columns(value)
                if columns is not None:
                    sharded.set_posting_columns(value, columns.copy())
        else:
            for value in index.values():
                for item in index.posting_list(value):
                    sharded.add_posting(
                        value, item.table_id, item.column_index, item.row_index
                    )
        for table_id, row_index, super_key in index.iter_super_keys():
            sharded.set_super_key(table_id, row_index, super_key)
        return sharded


#: Name of the per-directory manifest describing a saved sharded index.
SHARD_MANIFEST_NAME = "manifest.json"


def save_shard_segments(
    index: ShardedInvertedIndex, directory: str | Path
) -> Path:
    """Persist every shard of a columnar sharded index as a ``.seg`` file.

    Writes ``shard_NN.seg`` per posting-list partition plus a
    ``manifest.json`` recording the topology (shard count, hash function and
    size, segment names), so :func:`open_shard_segments` can reconstruct the
    exact same value routing — CRC-based :func:`shard_of_value` assignment
    only holds if the shard count matches.

    Shards store postings only; the super keys live in the index's central
    per-row store.  Each shard segment is written *with* that central row
    table (the store is temporarily attached to the shard during the write),
    so every worker mapping a single shard still resolves any row's super
    key — the property the process-per-shard serving mode relies on.
    """
    from ..storage.paged import write_segment

    if index.layout != "columnar":
        raise IndexError_(
            "shard segments require the columnar layout "
            f"(got {index.layout!r})"
        )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    names = []
    for shard_index in range(index.num_shards):
        shard = index.shard(shard_index)
        name = f"shard_{shard_index:02d}.seg"
        own_store = shard._super_keys
        shard._super_keys = index._super_keys
        try:
            write_segment(shard, directory / name)
        finally:
            shard._super_keys = own_store
        names.append(name)
    manifest = {
        "num_shards": index.num_shards,
        "hash_function": index.hash_function_name,
        "hash_size": index.hash_size,
        "segments": names,
    }
    (directory / SHARD_MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2), encoding="utf-8"
    )
    return directory


def open_shard_segments(
    directory: str | Path,
    max_workers: int | None = None,
) -> "MappedShardedIndex":
    """Map a directory written by :func:`save_shard_segments` (read-only)."""
    directory = Path(directory)
    manifest_path = directory / SHARD_MANIFEST_NAME
    if not manifest_path.is_file():
        raise IndexError_(
            f"no {SHARD_MANIFEST_NAME} in {directory}; not a saved "
            "sharded index"
        )
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    segments = [directory / name for name in manifest["segments"]]
    if len(segments) != int(manifest["num_shards"]):
        raise IndexError_(
            f"manifest in {directory} names {len(segments)} segments for "
            f"{manifest['num_shards']} shards"
        )
    return MappedShardedIndex(segments, manifest, max_workers=max_workers)


class MappedShardedIndex(ShardedInvertedIndex):
    """A read-only sharded index whose shards are mmap'd ``.seg`` segments.

    Same value routing and fetch surface as a live
    :class:`ShardedInvertedIndex` (bit-identical ``fetch_batch``), but every
    posting-list partition is a zero-copy
    :class:`~repro.storage.paged.MappedSegmentIndex` whose pages the OS
    shares across processes mapping the same files.  Mutations raise — the
    mapped segments are immutable; route writes through the ingestion
    subsystem and re-save.
    """

    def __init__(
        self,
        segment_paths: Sequence[str | Path],
        manifest: dict,
        max_workers: int | None = None,
    ):
        from ..storage.paged import reopen_segment

        hash_function = manifest["hash_function"]
        hash_size = int(manifest["hash_size"])
        super().__init__(
            num_shards=max(len(segment_paths), 1),
            hash_function_name=hash_function,
            hash_size=hash_size,
            max_workers=max_workers,
            layout="columnar",
        )
        opened = []
        try:
            for path in segment_paths:
                opened.append(
                    reopen_segment(
                        path,
                        hash_function_name=hash_function,
                        hash_size=hash_size,
                    )
                )
        except BaseException:
            for segment in opened:
                segment.close()
            raise
        # Replace the freshly-built empty shards with the mapped segments.
        # Every segment carries the full central row table (see
        # save_shard_segments), so any of them can serve as the central
        # super-key store; point lookups bind to the first.
        self._shards = opened
        if opened:
            self._super_keys = opened[0]._super_keys

    def indexed_tables(self) -> set[int]:
        """Table ids present in the central row table (mutation-free source)."""
        if not self._shards:
            return set()
        return self._shards[0].indexed_tables()

    def fetch_batch(self, values: Iterable[str]) -> list[FetchBlock]:
        """Route each probe value to its shard's own pre-memoised fetch.

        Unlike the live index (central store attached on assembly), each
        mapped shard resolves super keys against its *own* store so the
        pre-memoised packed columns from the file are served zero-copy; the
        blocks are reassembled in first-seen probe order, identical content
        to the live index on the same corpus.
        """
        ordered = [v for v in dict.fromkeys(values) if v != MISSING]
        by_shard: dict[int, list[str]] = defaultdict(list)
        for value in ordered:
            by_shard[self.shard_of(value)].append(value)
        blocks: dict[str, FetchBlock] = {}
        for shard_blocks in self._map_shards(self._fetch_shard_blocks, by_shard):
            blocks.update(shard_blocks)
        return [blocks[value] for value in ordered if value in blocks]

    def _fetch_shard_blocks(
        self, entry: tuple[int, list[str]]
    ) -> dict[str, FetchBlock]:
        shard_index, shard_values = entry
        return {
            block.value: block
            for block in self._shards[shard_index].fetch_batch(shard_values)
        }

    def _read_only(self, operation: str) -> None:
        raise IndexError_(
            f"cannot {operation}: this sharded index maps read-only segment "
            "files"
        )

    def add_posting(self, *args, **kwargs) -> None:
        self._read_only("add postings")

    def set_posting_columns(self, *args, **kwargs) -> None:
        self._read_only("install posting columns")

    def set_super_key(self, *args, **kwargs) -> None:
        self._read_only("set super keys")

    def or_into_super_key(self, *args, **kwargs) -> int:
        self._read_only("update super keys")
        raise AssertionError  # pragma: no cover - _read_only always raises

    def remove_table(self, *args, **kwargs) -> int:
        self._read_only("remove tables")
        raise AssertionError  # pragma: no cover - _read_only always raises

    def remove_row(self, *args, **kwargs) -> int:
        self._read_only("remove rows")
        raise AssertionError  # pragma: no cover - _read_only always raises

    def remove_column(self, *args, **kwargs) -> int:
        self._read_only("remove columns")
        raise AssertionError  # pragma: no cover - _read_only always raises

    def close(self) -> None:
        """Unmap every shard segment (idempotent)."""
        for segment in self._shards:
            segment.close()

    def __enter__(self) -> "MappedShardedIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def build_sharded_index(
    corpus: TableCorpus,
    num_shards: int = 4,
    config: MateConfig | None = None,
    hash_function_name: str = "xash",
    max_workers: int | None = None,
    layout: str | None = None,
) -> ShardedInvertedIndex:
    """Build a :class:`ShardedInvertedIndex` for ``corpus`` in one call.

    The offline walk is the standard
    :class:`~repro.index.builder.IndexBuilder` pass; only the destination
    differs (postings land in their value shard instead of one dictionary).
    """
    config = config or MateConfig()
    builder = IndexBuilder(config=config, hash_function_name=hash_function_name)
    index = ShardedInvertedIndex(
        num_shards=num_shards,
        hash_function_name=hash_function_name,
        hash_size=config.hash_size,
        max_workers=max_workers,
        layout=layout or config.index_layout,
    )
    for table in corpus:
        builder.add_table(index, table)
    return index
