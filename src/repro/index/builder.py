"""Offline index construction (the "Indexing step" of Figure 2).

:class:`IndexBuilder` walks a corpus once, emits one PL item per non-missing
cell value and one super key per row, and records the timing/size statistics
reported in Section 7.1 ("Index generation").
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from typing import TYPE_CHECKING

from ..config import MateConfig
from ..datamodel import MISSING, Table, TableCorpus
from ..hashing import SuperKeyGenerator
from .inverted import InvertedIndex

if TYPE_CHECKING:  # pragma: no cover - imported for annotations only
    from ..sketch import SketchIndex, SketchIndexConfig


@dataclass(frozen=True)
class IndexBuildReport:
    """Summary of one offline index build."""

    hash_function: str
    hash_size: int
    num_tables: int
    num_rows: int
    num_posting_items: int
    num_distinct_values: int
    build_seconds: float

    def as_dict(self) -> dict[str, float]:
        """Return the report as a plain dictionary (for reporting)."""
        return {
            "hash_function": self.hash_function,
            "hash_size": self.hash_size,
            "tables": self.num_tables,
            "rows": self.num_rows,
            "posting_items": self.num_posting_items,
            "distinct_values": self.num_distinct_values,
            "build_seconds": self.build_seconds,
        }


class IndexBuilder:
    """Builds the extended inverted index for a corpus."""

    def __init__(
        self,
        config: MateConfig | None = None,
        hash_function_name: str = "xash",
        super_key_generator: SuperKeyGenerator | None = None,
        layout: str | None = None,
        sketch_config: "SketchIndexConfig | None" = None,
    ):
        self.config = config or MateConfig()
        self.hash_function_name = hash_function_name
        #: Posting layout of built indexes; defaults to the configured one
        #: (``"columnar"`` unless overridden), so postings land directly in
        #: the packed arrays.
        self.layout = layout or self.config.index_layout
        self.super_key_generator = super_key_generator or SuperKeyGenerator.from_name(
            hash_function_name, self.config
        )
        #: MinHash-LSH parameters of :meth:`build_with_sketches`; ``None``
        #: uses :data:`repro.sketch.DEFAULT_SKETCH_CONFIG`.
        self.sketch_config = sketch_config
        self.last_report: IndexBuildReport | None = None
        #: The sketch store of the last :meth:`build_with_sketches` call.
        self.last_sketch_index: "SketchIndex | None" = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self, corpus: TableCorpus) -> InvertedIndex:
        """Build the index for every table in ``corpus``."""
        started = time.perf_counter()
        index = InvertedIndex(
            hash_function_name=self.hash_function_name,
            hash_size=self.config.hash_size,
            layout=self.layout,
        )
        num_rows = 0
        for table in corpus:
            num_rows += self.add_table(index, table)
        elapsed = time.perf_counter() - started
        self.last_report = IndexBuildReport(
            hash_function=self.hash_function_name,
            hash_size=self.config.hash_size,
            num_tables=len(corpus),
            num_rows=num_rows,
            num_posting_items=index.num_posting_items(),
            num_distinct_values=len(index),
            build_seconds=elapsed,
        )
        return index

    def build_with_sketches(
        self, corpus: TableCorpus
    ) -> "tuple[InvertedIndex, SketchIndex]":
        """Build the inverted index *and* its MinHash-LSH sketch store.

        The offline analogue of the live index's incrementally-fresh
        sketches: one bulk pass per table emits both the exact postings and
        the per-column :class:`~repro.sketch.minhash.ColumnSketch` entries,
        so an offline build can persist the pair
        (:meth:`~repro.sketch.index.SketchIndex.save`) next to its
        segments and serve sketch-mode requests without any rebuild.
        """
        from ..sketch import SketchIndex

        index = InvertedIndex(
            hash_function_name=self.hash_function_name,
            hash_size=self.config.hash_size,
            layout=self.layout,
        )
        sketch_index = SketchIndex(self.sketch_config)
        started = time.perf_counter()
        num_rows = 0
        for table in corpus:
            num_rows += self.add_table(index, table)
            sketch_index.add_table(table)
        elapsed = time.perf_counter() - started
        self.last_report = IndexBuildReport(
            hash_function=self.hash_function_name,
            hash_size=self.config.hash_size,
            num_tables=len(corpus),
            num_rows=num_rows,
            num_posting_items=index.num_posting_items(),
            num_distinct_values=len(index),
            build_seconds=elapsed,
        )
        self.last_sketch_index = sketch_index
        return index, sketch_index

    def add_table(self, index: InvertedIndex, table: Table) -> int:
        """Index a single table; returns the number of indexed rows.

        On the columnar layout each ``add_posting`` appends straight into the
        value's packed arrays — the build materialises no per-item records.
        """
        generator = self.super_key_generator
        table_id = table.table_id
        set_super_key = index.set_super_key
        add_posting = index.add_posting
        for row_index, row in enumerate(table.rows):
            set_super_key(table_id, row_index, generator.row_super_key(row))
            for column_index, value in enumerate(row):
                if value == MISSING:
                    continue
                add_posting(value, table_id, column_index, row_index)
        return table.num_rows


def build_index(
    corpus: TableCorpus,
    config: MateConfig | None = None,
    hash_function_name: str = "xash",
    layout: str | None = None,
) -> InvertedIndex:
    """Convenience wrapper: build an index for ``corpus`` in one call."""
    return IndexBuilder(
        config=config, hash_function_name=hash_function_name, layout=layout
    ).build(corpus)
