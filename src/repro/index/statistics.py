"""Index size accounting (the "Index generation" paragraph of Section 7.1).

The paper reports the additional storage the super keys require, contrasting
two layouts:

* **per-cell** storage — a super key attached to every PL item
  (``num_posting_items * hash_size`` bits), the layout the reference system
  uses inside the column store, and
* **per-row** storage — one super key per distinct row
  (``num_rows * hash_size`` bits), the space-efficient variant that needs an
  extra join between super keys and PLs at query time.

It also compares against the extra storage a JOSIE-style set index needs.
This module computes those numbers for any built index so the index-generation
benchmark can print the same rows as the paper.

Beyond storage accounting, the module is the statistics provider of the
query planner (:mod:`repro.plan`): :func:`estimate_posting_volume` predicts
how many PL items a set of probe values would fetch from a bounded sample of
posting-list lengths, so seed-column selection stays O(sample) instead of
touching every probe value's posting list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .inverted import InvertedIndex

#: Rough per-entry overhead (in bytes) of a JOSIE set-index entry: a value id,
#: a set id and a position, stored as three 64-bit integers.  Used only for
#: the relative comparison in the index-generation experiment.
JOSIE_BYTES_PER_ENTRY: int = 24

#: Rough per-entry overhead (in bytes) of a plain SCR posting:
#: table id + column id + row id as three 64-bit integers.
SCR_BYTES_PER_ENTRY: int = 24


def bits_to_bytes(bits: int) -> int:
    """Convert a bit count to bytes, rounding up."""
    return (bits + 7) // 8


@dataclass(frozen=True)
class IndexStorageReport:
    """Storage footprint of one built index, in bytes."""

    hash_size: int
    num_posting_items: int
    num_rows: int
    num_distinct_values: int
    posting_bytes: int
    super_key_bytes_per_cell: int
    super_key_bytes_per_row: int
    josie_extra_bytes: int

    @property
    def total_bytes_per_cell_layout(self) -> int:
        """Total index size when super keys are stored per PL item."""
        return self.posting_bytes + self.super_key_bytes_per_cell

    @property
    def total_bytes_per_row_layout(self) -> int:
        """Total index size when super keys are stored once per row."""
        return self.posting_bytes + self.super_key_bytes_per_row

    def as_dict(self) -> dict[str, int]:
        """Return the report as a plain dictionary (for reporting)."""
        return {
            "hash_size": self.hash_size,
            "posting_items": self.num_posting_items,
            "rows": self.num_rows,
            "distinct_values": self.num_distinct_values,
            "posting_bytes": self.posting_bytes,
            "super_key_bytes_per_cell": self.super_key_bytes_per_cell,
            "super_key_bytes_per_row": self.super_key_bytes_per_row,
            "total_bytes_per_cell_layout": self.total_bytes_per_cell_layout,
            "total_bytes_per_row_layout": self.total_bytes_per_row_layout,
            "josie_extra_bytes": self.josie_extra_bytes,
        }


def sample_positions(count: int, sample_size: int) -> list[int]:
    """Evenly spaced positions for a deterministic sample of ``count`` items.

    Returns all positions when ``count <= sample_size``.  Positions are
    picked with a fractional stride (``position i -> floor(i * count /
    sample_size)``) so the sample spans the whole range — an integer stride
    would never reach the tail and bias estimates toward the head of the
    probe list.  The same ``(count, sample_size)`` pair always samples the
    same positions, so planner estimates are reproducible run over run.
    """
    if count <= 0:
        return []
    if sample_size <= 0:
        raise ValueError(f"sample_size must be positive, got {sample_size}")
    if count <= sample_size:
        return list(range(count))
    return [position * count // sample_size for position in range(sample_size)]


@dataclass(frozen=True)
class PostingVolumeEstimate:
    """Predicted posting-list volume for a set of probe values.

    ``exact`` is true when every value was measured (no extrapolation), which
    happens whenever the value count is within the sample budget.
    """

    #: Number of probe values the estimate covers.
    values: int
    #: Number of values whose posting-list length was actually measured.
    sampled: int
    #: Predicted total PL items across all ``values``.
    estimated_postings: float
    #: Whether the estimate is an exact count rather than an extrapolation.
    exact: bool

    def scaled(self, values_done: int) -> float:
        """The predicted volume for the first ``values_done`` probe values."""
        if self.values <= 0:
            return 0.0
        return self.estimated_postings * min(values_done, self.values) / self.values


def _sampled_lengths(index, sampled_values: list[str]) -> int:
    """Total posting-list length of the sampled values on any index.

    Prefers the batched ``posting_lengths`` surface (one pinned snapshot on
    a :class:`~repro.ingest.live.LiveIndex`), then per-value
    ``posting_list_length``, then the universal ``posting_count_for_values``.
    """
    batched = getattr(index, "posting_lengths", None)
    if batched is not None:
        return sum(batched(sampled_values))
    length = getattr(index, "posting_list_length", None)
    if length is not None:
        return sum(length(value) for value in sampled_values)
    return sum(
        index.posting_count_for_values([value]) for value in sampled_values
    )


def estimate_posting_volume(
    index, values: Sequence[str], sample_size: int = 32
) -> PostingVolumeEstimate:
    """Estimate how many PL items fetching ``values`` would return.

    Measures the posting-list length of an evenly spaced sample of at most
    ``sample_size`` values and extrapolates the mean to the full value list.
    Works against every index surface of the repository (monolithic, sharded,
    caching, live) — length lookups are metadata reads, no postings move.
    """
    positions = sample_positions(len(values), sample_size)
    if not positions:
        return PostingVolumeEstimate(
            values=0, sampled=0, estimated_postings=0.0, exact=True
        )
    sampled_total = _sampled_lengths(
        index, [values[position] for position in positions]
    )
    exact = len(positions) == len(values)
    if exact:
        estimated = float(sampled_total)
    else:
        estimated = sampled_total / len(positions) * len(values)
    return PostingVolumeEstimate(
        values=len(values),
        sampled=len(positions),
        estimated_postings=estimated,
        exact=exact,
    )


def storage_report(index: InvertedIndex) -> IndexStorageReport:
    """Compute the storage footprint of ``index`` under both layouts."""
    num_posting_items = index.num_posting_items()
    num_rows = index.num_rows()
    return IndexStorageReport(
        hash_size=index.hash_size,
        num_posting_items=num_posting_items,
        num_rows=num_rows,
        num_distinct_values=len(index),
        posting_bytes=num_posting_items * SCR_BYTES_PER_ENTRY,
        super_key_bytes_per_cell=bits_to_bytes(num_posting_items * index.hash_size),
        super_key_bytes_per_row=bits_to_bytes(num_rows * index.hash_size),
        josie_extra_bytes=num_posting_items * JOSIE_BYTES_PER_ENTRY,
    )
