"""Index size accounting (the "Index generation" paragraph of Section 7.1).

The paper reports the additional storage the super keys require, contrasting
two layouts:

* **per-cell** storage — a super key attached to every PL item
  (``num_posting_items * hash_size`` bits), the layout the reference system
  uses inside the column store, and
* **per-row** storage — one super key per distinct row
  (``num_rows * hash_size`` bits), the space-efficient variant that needs an
  extra join between super keys and PLs at query time.

It also compares against the extra storage a JOSIE-style set index needs.
This module computes those numbers for any built index so the index-generation
benchmark can print the same rows as the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from .inverted import InvertedIndex

#: Rough per-entry overhead (in bytes) of a JOSIE set-index entry: a value id,
#: a set id and a position, stored as three 64-bit integers.  Used only for
#: the relative comparison in the index-generation experiment.
JOSIE_BYTES_PER_ENTRY: int = 24

#: Rough per-entry overhead (in bytes) of a plain SCR posting:
#: table id + column id + row id as three 64-bit integers.
SCR_BYTES_PER_ENTRY: int = 24


def bits_to_bytes(bits: int) -> int:
    """Convert a bit count to bytes, rounding up."""
    return (bits + 7) // 8


@dataclass(frozen=True)
class IndexStorageReport:
    """Storage footprint of one built index, in bytes."""

    hash_size: int
    num_posting_items: int
    num_rows: int
    num_distinct_values: int
    posting_bytes: int
    super_key_bytes_per_cell: int
    super_key_bytes_per_row: int
    josie_extra_bytes: int

    @property
    def total_bytes_per_cell_layout(self) -> int:
        """Total index size when super keys are stored per PL item."""
        return self.posting_bytes + self.super_key_bytes_per_cell

    @property
    def total_bytes_per_row_layout(self) -> int:
        """Total index size when super keys are stored once per row."""
        return self.posting_bytes + self.super_key_bytes_per_row

    def as_dict(self) -> dict[str, int]:
        """Return the report as a plain dictionary (for reporting)."""
        return {
            "hash_size": self.hash_size,
            "posting_items": self.num_posting_items,
            "rows": self.num_rows,
            "distinct_values": self.num_distinct_values,
            "posting_bytes": self.posting_bytes,
            "super_key_bytes_per_cell": self.super_key_bytes_per_cell,
            "super_key_bytes_per_row": self.super_key_bytes_per_row,
            "total_bytes_per_cell_layout": self.total_bytes_per_cell_layout,
            "total_bytes_per_row_layout": self.total_bytes_per_row_layout,
            "josie_extra_bytes": self.josie_extra_bytes,
        }


def storage_report(index: InvertedIndex) -> IndexStorageReport:
    """Compute the storage footprint of ``index`` under both layouts."""
    num_posting_items = index.num_posting_items()
    num_rows = index.num_rows()
    return IndexStorageReport(
        hash_size=index.hash_size,
        num_posting_items=num_posting_items,
        num_rows=num_rows,
        num_distinct_values=len(index),
        posting_bytes=num_posting_items * SCR_BYTES_PER_ENTRY,
        super_key_bytes_per_cell=bits_to_bytes(num_posting_items * index.hash_size),
        super_key_bytes_per_row=bits_to_bytes(num_rows * index.hash_size),
        josie_extra_bytes=num_posting_items * JOSIE_BYTES_PER_ENTRY,
    )
