"""The extended single-attribute inverted index (Sections 3 and 5).

:class:`InvertedIndex` stores two structures:

* ``postings``: value -> posting list (the classic single-attribute inverted
  index of Eq. 4), and
* ``super_keys``: (table_id, row_index) -> int, the per-row super key that
  turns the index into MATE's extended index.

Two storage layouts are supported (see :mod:`repro.index.columnar`):

* ``columnar`` (the default) — each value's postings live in three parallel
  packed integer arrays and the super keys in a fixed-width packed byte
  buffer; ``fetch_batch`` returns struct-of-arrays
  :class:`~repro.index.columnar.FetchBlock` objects that reference the packed
  columns directly (zero copy), with memoised super-key columns and table
  runs so repeated fetches do no per-item work;
* ``legacy`` — one :class:`~repro.index.posting.PostingListItem` NamedTuple
  per PL item and a dictionary of super keys, the layout of the original
  reproduction (kept for comparison benchmarks and old persisted data).

Both layouts expose the exact same query surface, and ``fetch`` returns
byte-identical :class:`~repro.index.posting.FetchedItem` lists either way.

The index is deliberately storage-backend agnostic: it is an in-memory object
that can be persisted/restored through :mod:`repro.storage`.  Its query
surface is exactly what Algorithm 1 needs:

* ``fetch`` / ``fetch_batch`` — retrieve all PL items (with super keys) for a
  set of probe values (line 4),
* ``posting_list`` / ``posting_columns`` / ``super_key`` accessors,
* mutation operations used by the maintenance layer (Section 5.4).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, Sequence

from ..datamodel import MISSING
from ..exceptions import IndexClosedError, IndexError_
from .columnar import (
    LAYOUTS,
    ColumnarPostingList,
    DictSuperKeys,
    FetchBlock,
    PackedSuperKeys,
    blocks_from_fetch,
)
from .posting import FetchedItem, PostingListItem


class InvertedIndex:
    """Value -> posting-list mapping plus per-row super keys."""

    def __init__(
        self,
        hash_function_name: str = "xash",
        hash_size: int = 128,
        layout: str = "columnar",
    ):
        if layout not in LAYOUTS:
            raise IndexError_(
                f"unknown posting layout {layout!r}; expected one of {LAYOUTS}"
            )
        #: Name of the hash function the super keys were generated with.
        self.hash_function_name = hash_function_name
        #: Width of the stored super keys in bits.
        self.hash_size = hash_size
        #: Posting-list storage layout: ``"columnar"`` or ``"legacy"``.
        self.layout = layout
        self._columnar = layout == "columnar"
        if self._columnar:
            self._postings: dict[str, ColumnarPostingList] = {}
            self._super_keys: PackedSuperKeys | DictSuperKeys = PackedSuperKeys(
                hash_size
            )
        else:
            self._postings = defaultdict(list)  # type: ignore[assignment]
            self._super_keys = DictSuperKeys()
        self._table_rows: dict[int, set[int]] = defaultdict(set)
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called on this index."""
        return self._closed

    def close(self) -> None:
        """Refuse all further fetches and mutations (idempotent).

        The ingestion layer seals write buffers this way; any later
        ``fetch`` / ``fetch_batch`` / mutation raises the typed
        :class:`~repro.exceptions.IndexClosedError` instead of whatever
        incidental error a torn-down index would produce.
        """
        self._closed = True

    def _ensure_open(self, operation: str) -> None:
        if self._closed:
            raise IndexClosedError(
                f"{operation} on a closed index (layout {self.layout!r}); "
                "the index was closed or sealed and no longer serves requests"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of distinct indexed values."""
        return len(self._postings)

    def __contains__(self, value: str) -> bool:
        return value in self._postings

    def values(self) -> Iterator[str]:
        """Iterate over the distinct indexed values."""
        return iter(self._postings)

    def num_posting_items(self) -> int:
        """Total number of PL items across all values."""
        return sum(len(items) for items in self._postings.values())

    def num_rows(self) -> int:
        """Number of rows that own a super key."""
        return len(self._super_keys)

    def indexed_tables(self) -> set[int]:
        """Return the ids of all tables with at least one indexed row."""
        return set(self._table_rows)

    def posting_list(self, value: str) -> list[PostingListItem]:
        """Return the posting list of ``value`` (empty when not indexed)."""
        stored = self._postings.get(value)
        if stored is None:
            return []
        if self._columnar:
            return stored.items()
        return list(stored)

    def posting_columns(self, value: str) -> ColumnarPostingList | None:
        """Return the packed posting columns of ``value`` (columnar layout).

        ``None`` when the value is not indexed.  Raises on the legacy layout,
        which has no packed columns.
        """
        if not self._columnar:
            raise IndexError_(
                "posting_columns requires the columnar layout "
                f"(this index uses {self.layout!r})"
            )
        return self._postings.get(value)

    def posting_list_length(self, value: str) -> int:
        """Return the number of PL items for ``value`` without copying."""
        stored = self._postings.get(value)
        return 0 if stored is None else len(stored)

    def super_key(self, table_id: int, row_index: int) -> int:
        """Return the super key of a row."""
        stored = self._super_keys.get((table_id, row_index), None)
        if stored is None:
            raise IndexError_(
                f"no super key stored for table {table_id} row {row_index}"
            )
        return stored

    def has_row(self, table_id: int, row_index: int) -> bool:
        """Return whether a super key is stored for the row."""
        return (table_id, row_index) in self._super_keys

    def iter_super_keys(self) -> Iterator[tuple[int, int, int]]:
        """Iterate over ``(table_id, row_index, super_key)`` triples."""
        for (table_id, row_index), super_key in self._super_keys.items():
            yield table_id, row_index, super_key

    # ------------------------------------------------------------------
    # Mutation (used by IndexBuilder and the maintenance layer)
    # ------------------------------------------------------------------
    def add_posting(
        self, value: str, table_id: int, column_index: int, row_index: int
    ) -> None:
        """Add a single PL item for ``value``.  Missing values are skipped."""
        self._ensure_open("add_posting")
        if value == MISSING:
            return
        if self._columnar:
            columns = self._postings.get(value)
            if columns is None:
                columns = self._postings[value] = ColumnarPostingList()
            columns.append(table_id, column_index, row_index)
        else:
            self._postings[value].append(
                PostingListItem(
                    table_id=table_id,
                    column_index=column_index,
                    row_index=row_index,
                )
            )
        self._table_rows[table_id].add(row_index)

    def set_posting_columns(
        self, value: str, columns: ColumnarPostingList
    ) -> None:
        """Install pre-packed posting columns for ``value`` (bulk loading).

        Used by storage backends restoring a packed layout; requires the
        columnar layout.
        """
        self._ensure_open("set_posting_columns")
        if not self._columnar:
            raise IndexError_(
                "set_posting_columns requires the columnar layout "
                f"(this index uses {self.layout!r})"
            )
        if value == MISSING or not len(columns):
            return
        self._postings[value] = columns
        table_rows = self._table_rows
        for table_id, row_index in zip(columns.table_ids, columns.row_indexes):
            table_rows[table_id].add(row_index)

    def set_super_key(self, table_id: int, row_index: int, super_key: int) -> None:
        """Store (or replace) the super key of a row."""
        self._ensure_open("set_super_key")
        self._super_keys.set((table_id, row_index), super_key)
        self._table_rows[table_id].add(row_index)

    def or_into_super_key(self, table_id: int, row_index: int, value_hash: int) -> int:
        """OR a new value hash into an existing row super key (column insert)."""
        self._ensure_open("or_into_super_key")
        updated = self._super_keys.or_into((table_id, row_index), value_hash)
        self._table_rows[table_id].add(row_index)
        return updated

    def _remove_postings_where(self, keep) -> int:
        """Filter every posting list by ``keep(table_id, column_index, row_index)``."""
        removed = 0
        empty_values = []
        if self._columnar:
            for value, columns in self._postings.items():
                kept, dropped = columns.filtered(keep)
                removed += dropped
                if len(kept):
                    self._postings[value] = kept
                else:
                    empty_values.append(value)
        else:
            for value, items in self._postings.items():
                kept_items = [
                    item
                    for item in items
                    if keep(item.table_id, item.column_index, item.row_index)
                ]
                removed += len(items) - len(kept_items)
                if kept_items:
                    self._postings[value] = kept_items
                else:
                    empty_values.append(value)
        for value in empty_values:
            del self._postings[value]
        return removed

    def remove_table(self, table_id: int) -> int:
        """Remove every posting and super key of ``table_id``.

        Returns the number of removed PL items.
        """
        self._ensure_open("remove_table")
        removed = self._remove_postings_where(
            lambda item_table, _column, _row: item_table != table_id
        )
        for row_index in self._table_rows.pop(table_id, set()):
            self._super_keys.pop((table_id, row_index))
        return removed

    def remove_row(self, table_id: int, row_index: int) -> int:
        """Remove the postings and super key of a single row."""
        self._ensure_open("remove_row")
        removed = self._remove_postings_where(
            lambda item_table, _column, item_row: not (
                item_table == table_id and item_row == row_index
            )
        )
        self._super_keys.pop((table_id, row_index))
        rows = self._table_rows.get(table_id)
        if rows is not None:
            rows.discard(row_index)
            if not rows:
                del self._table_rows[table_id]
        return removed

    def remove_column(self, table_id: int, column_index: int) -> int:
        """Remove the postings of one column (super keys must be rebuilt by the caller)."""
        self._ensure_open("remove_column")
        return self._remove_postings_where(
            lambda item_table, item_column, _row: not (
                item_table == table_id and item_column == column_index
            )
        )

    # ------------------------------------------------------------------
    # Discovery-phase retrieval
    # ------------------------------------------------------------------
    def fetch_batch(self, values: Iterable[str]) -> list[FetchBlock]:
        """Fetch the postings of ``values`` as struct-of-arrays blocks.

        One block per probed value with at least one PL item, in first-seen
        value order; duplicate and missing probe values are skipped.  On the
        columnar layout the blocks reference the packed columns directly and
        reuse the memoised super-key columns, so a warm ``fetch_batch`` does
        no per-item work at all.
        """
        self._ensure_open("fetch_batch")
        if self._columnar:
            blocks: list[FetchBlock] = []
            append = blocks.append
            postings = self._postings
            store = self._super_keys
            for value in dict.fromkeys(values):
                if value == MISSING:
                    continue
                columns = postings.get(value)
                if columns is None or not len(columns):
                    continue
                # Prefer the memoised packed super-key buffer (the kernel
                # input); the integer column is only built when the store
                # cannot pack (legacy dict store / spilled oversize key).
                packed = columns.super_key_packed(store)
                if packed is not None:
                    append(
                        FetchBlock(
                            value,
                            columns.table_ids,
                            columns.column_indexes,
                            columns.row_indexes,
                            None,
                            columns.runs(),
                            super_key_bytes=packed,
                            key_width=store.width_bytes,
                        )
                    )
                else:
                    append(
                        FetchBlock(
                            value,
                            columns.table_ids,
                            columns.column_indexes,
                            columns.row_indexes,
                            columns.super_key_column(store),
                            columns.runs(),
                        )
                    )
            return blocks
        return blocks_from_fetch(self.fetch(values))

    def fetch(self, values: Iterable[str]) -> list[FetchedItem]:
        """Fetch the PL items (with super keys) for every value in ``values``.

        This is ``fetch_PLs`` of Algorithm 1 (line 4).  Duplicate probe values
        are fetched only once.  The output is identical across layouts.
        """
        self._ensure_open("fetch")
        if not self._columnar:
            fetched: list[FetchedItem] = []
            for value in dict.fromkeys(values):
                if value == MISSING:
                    continue
                for item in self._postings.get(value, ()):
                    super_key = self._super_keys.get(
                        (item.table_id, item.row_index), 0
                    )
                    fetched.append(FetchedItem.from_posting(value, item, super_key))
            return fetched
        fetched = []
        extend = fetched.extend
        for block in self.fetch_batch(values):
            extend(block)
        return fetched

    def fetch_grouped_by_table(
        self, values: Iterable[str]
    ) -> dict[int, list[FetchedItem]]:
        """Fetch PL items and group them by table id (line 5 of Algorithm 1)."""
        grouped: dict[int, list[FetchedItem]] = defaultdict(list)
        for item in self.fetch(values):
            grouped[item.table_id].append(item)
        return dict(grouped)

    def posting_count_for_values(self, values: Sequence[str]) -> int:
        """Total number of PL items the given probe values would fetch."""
        return sum(
            self.posting_list_length(value)
            for value in dict.fromkeys(values)
            if value != MISSING
        )
