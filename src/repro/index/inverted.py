"""The extended single-attribute inverted index (Sections 3 and 5).

:class:`InvertedIndex` stores two structures:

* ``postings``: value -> list of :class:`PostingListItem` (the classic
  single-attribute inverted index of Eq. 4), and
* ``super_keys``: (table_id, row_index) -> int, the per-row super key that
  turns the index into MATE's extended index.

The index is deliberately storage-backend agnostic: it is an in-memory object
that can be persisted/restored through :mod:`repro.storage`.  Its query
surface is exactly what Algorithm 1 needs:

* ``fetch`` — retrieve all PL items (with super keys) for a set of probe
  values (line 4),
* ``posting_list`` / ``super_key`` accessors,
* mutation operations used by the maintenance layer (Section 5.4).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, Sequence

from ..datamodel import MISSING
from ..exceptions import IndexError_
from .posting import FetchedItem, PostingListItem


class InvertedIndex:
    """Value -> posting-list mapping plus per-row super keys."""

    def __init__(self, hash_function_name: str = "xash", hash_size: int = 128):
        #: Name of the hash function the super keys were generated with.
        self.hash_function_name = hash_function_name
        #: Width of the stored super keys in bits.
        self.hash_size = hash_size
        self._postings: dict[str, list[PostingListItem]] = defaultdict(list)
        self._super_keys: dict[tuple[int, int], int] = {}
        self._table_rows: dict[int, set[int]] = defaultdict(set)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of distinct indexed values."""
        return len(self._postings)

    def __contains__(self, value: str) -> bool:
        return value in self._postings

    def values(self) -> Iterator[str]:
        """Iterate over the distinct indexed values."""
        return iter(self._postings)

    def num_posting_items(self) -> int:
        """Total number of PL items across all values."""
        return sum(len(items) for items in self._postings.values())

    def num_rows(self) -> int:
        """Number of rows that own a super key."""
        return len(self._super_keys)

    def indexed_tables(self) -> set[int]:
        """Return the ids of all tables with at least one indexed row."""
        return set(self._table_rows)

    def posting_list(self, value: str) -> list[PostingListItem]:
        """Return the posting list of ``value`` (empty when not indexed)."""
        return list(self._postings.get(value, ()))

    def posting_list_length(self, value: str) -> int:
        """Return the number of PL items for ``value`` without copying."""
        return len(self._postings.get(value, ()))

    def super_key(self, table_id: int, row_index: int) -> int:
        """Return the super key of a row."""
        try:
            return self._super_keys[(table_id, row_index)]
        except KeyError as exc:
            raise IndexError_(
                f"no super key stored for table {table_id} row {row_index}"
            ) from exc

    def has_row(self, table_id: int, row_index: int) -> bool:
        """Return whether a super key is stored for the row."""
        return (table_id, row_index) in self._super_keys

    def iter_super_keys(self) -> Iterator[tuple[int, int, int]]:
        """Iterate over ``(table_id, row_index, super_key)`` triples."""
        for (table_id, row_index), super_key in self._super_keys.items():
            yield table_id, row_index, super_key

    # ------------------------------------------------------------------
    # Mutation (used by IndexBuilder and the maintenance layer)
    # ------------------------------------------------------------------
    def add_posting(
        self, value: str, table_id: int, column_index: int, row_index: int
    ) -> None:
        """Add a single PL item for ``value``.  Missing values are skipped."""
        if value == MISSING:
            return
        self._postings[value].append(
            PostingListItem(table_id=table_id, column_index=column_index,
                            row_index=row_index)
        )
        self._table_rows[table_id].add(row_index)

    def set_super_key(self, table_id: int, row_index: int, super_key: int) -> None:
        """Store (or replace) the super key of a row."""
        self._super_keys[(table_id, row_index)] = super_key
        self._table_rows[table_id].add(row_index)

    def or_into_super_key(self, table_id: int, row_index: int, value_hash: int) -> int:
        """OR a new value hash into an existing row super key (column insert)."""
        key = (table_id, row_index)
        updated = self._super_keys.get(key, 0) | value_hash
        self._super_keys[key] = updated
        self._table_rows[table_id].add(row_index)
        return updated

    def remove_table(self, table_id: int) -> int:
        """Remove every posting and super key of ``table_id``.

        Returns the number of removed PL items.
        """
        removed = 0
        empty_values = []
        for value, items in self._postings.items():
            kept = [item for item in items if item.table_id != table_id]
            removed += len(items) - len(kept)
            if kept:
                self._postings[value] = kept
            else:
                empty_values.append(value)
        for value in empty_values:
            del self._postings[value]
        for row_index in self._table_rows.pop(table_id, set()):
            self._super_keys.pop((table_id, row_index), None)
        return removed

    def remove_row(self, table_id: int, row_index: int) -> int:
        """Remove the postings and super key of a single row."""
        removed = 0
        empty_values = []
        for value, items in self._postings.items():
            kept = [
                item
                for item in items
                if not (item.table_id == table_id and item.row_index == row_index)
            ]
            removed += len(items) - len(kept)
            if kept:
                self._postings[value] = kept
            else:
                empty_values.append(value)
        for value in empty_values:
            del self._postings[value]
        self._super_keys.pop((table_id, row_index), None)
        rows = self._table_rows.get(table_id)
        if rows is not None:
            rows.discard(row_index)
            if not rows:
                del self._table_rows[table_id]
        return removed

    def remove_column(self, table_id: int, column_index: int) -> int:
        """Remove the postings of one column (super keys must be rebuilt by the caller)."""
        removed = 0
        empty_values = []
        for value, items in self._postings.items():
            kept = [
                item
                for item in items
                if not (
                    item.table_id == table_id and item.column_index == column_index
                )
            ]
            removed += len(items) - len(kept)
            if kept:
                self._postings[value] = kept
            else:
                empty_values.append(value)
        for value in empty_values:
            del self._postings[value]
        return removed

    # ------------------------------------------------------------------
    # Discovery-phase retrieval
    # ------------------------------------------------------------------
    def fetch(self, values: Iterable[str]) -> list[FetchedItem]:
        """Fetch the PL items (with super keys) for every value in ``values``.

        This is ``fetch_PLs`` of Algorithm 1 (line 4).  Duplicate probe values
        are fetched only once.
        """
        fetched: list[FetchedItem] = []
        for value in dict.fromkeys(values):
            if value == MISSING:
                continue
            for item in self._postings.get(value, ()):
                super_key = self._super_keys.get((item.table_id, item.row_index), 0)
                fetched.append(FetchedItem.from_posting(value, item, super_key))
        return fetched

    def fetch_grouped_by_table(
        self, values: Iterable[str]
    ) -> dict[int, list[FetchedItem]]:
        """Fetch PL items and group them by table id (line 5 of Algorithm 1)."""
        grouped: dict[int, list[FetchedItem]] = defaultdict(list)
        for item in self.fetch(values):
            grouped[item.table_id].append(item)
        return dict(grouped)

    def posting_count_for_values(self, values: Sequence[str]) -> int:
        """Total number of PL items the given probe values would fetch."""
        return sum(
            self.posting_list_length(value)
            for value in dict.fromkeys(values)
            if value != MISSING
        )
