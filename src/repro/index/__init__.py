"""The extended single-attribute inverted index with per-row super keys."""

from .builder import IndexBuildReport, IndexBuilder, build_index
from .columnar import (
    LAYOUTS,
    ColumnarPostingList,
    DictSuperKeys,
    FetchBlock,
    PackedSuperKeys,
    TableBlock,
    compute_table_runs,
    fetch_table_blocks,
    group_into_table_blocks,
    pack_super_keys,
    unpack_super_keys,
)
from .inverted import InvertedIndex
from .kernels import (
    PrefilterResult,
    active_kernel,
    entry_coverage,
    numpy_available,
    prefilter_block,
    prefilter_table_block,
    set_kernel,
    use_kernel,
)
from .maintenance import IndexMaintainer
from .posting import FetchedItem, PostingListItem
from .sharded import ShardedInvertedIndex, build_sharded_index, shard_of_value
from .statistics import (
    IndexStorageReport,
    JOSIE_BYTES_PER_ENTRY,
    PostingVolumeEstimate,
    SCR_BYTES_PER_ENTRY,
    bits_to_bytes,
    estimate_posting_volume,
    sample_positions,
    storage_report,
)

__all__ = [
    "ColumnarPostingList",
    "DictSuperKeys",
    "FetchBlock",
    "FetchedItem",
    "IndexBuildReport",
    "LAYOUTS",
    "PackedSuperKeys",
    "PrefilterResult",
    "TableBlock",
    "active_kernel",
    "compute_table_runs",
    "entry_coverage",
    "fetch_table_blocks",
    "group_into_table_blocks",
    "numpy_available",
    "pack_super_keys",
    "prefilter_block",
    "prefilter_table_block",
    "set_kernel",
    "unpack_super_keys",
    "use_kernel",
    "IndexBuilder",
    "IndexMaintainer",
    "IndexStorageReport",
    "InvertedIndex",
    "JOSIE_BYTES_PER_ENTRY",
    "PostingListItem",
    "PostingVolumeEstimate",
    "SCR_BYTES_PER_ENTRY",
    "ShardedInvertedIndex",
    "bits_to_bytes",
    "build_index",
    "build_sharded_index",
    "estimate_posting_volume",
    "sample_positions",
    "shard_of_value",
    "storage_report",
]
