"""The extended single-attribute inverted index with per-row super keys."""

from .builder import IndexBuildReport, IndexBuilder, build_index
from .columnar import (
    LAYOUTS,
    ColumnarPostingList,
    DictSuperKeys,
    FetchBlock,
    PackedSuperKeys,
    TableBlock,
    compute_table_runs,
    fetch_table_blocks,
    group_into_table_blocks,
)
from .inverted import InvertedIndex
from .maintenance import IndexMaintainer
from .posting import FetchedItem, PostingListItem
from .sharded import ShardedInvertedIndex, build_sharded_index, shard_of_value
from .statistics import (
    IndexStorageReport,
    JOSIE_BYTES_PER_ENTRY,
    PostingVolumeEstimate,
    SCR_BYTES_PER_ENTRY,
    bits_to_bytes,
    estimate_posting_volume,
    sample_positions,
    storage_report,
)

__all__ = [
    "ColumnarPostingList",
    "DictSuperKeys",
    "FetchBlock",
    "FetchedItem",
    "IndexBuildReport",
    "LAYOUTS",
    "PackedSuperKeys",
    "TableBlock",
    "compute_table_runs",
    "fetch_table_blocks",
    "group_into_table_blocks",
    "IndexBuilder",
    "IndexMaintainer",
    "IndexStorageReport",
    "InvertedIndex",
    "JOSIE_BYTES_PER_ENTRY",
    "PostingListItem",
    "PostingVolumeEstimate",
    "SCR_BYTES_PER_ENTRY",
    "ShardedInvertedIndex",
    "bits_to_bytes",
    "build_index",
    "build_sharded_index",
    "estimate_posting_volume",
    "sample_positions",
    "shard_of_value",
    "storage_report",
]
