"""The extended single-attribute inverted index with per-row super keys."""

from .builder import IndexBuildReport, IndexBuilder, build_index
from .inverted import InvertedIndex
from .maintenance import IndexMaintainer
from .posting import FetchedItem, PostingListItem
from .sharded import ShardedInvertedIndex, build_sharded_index, shard_of_value
from .statistics import (
    IndexStorageReport,
    JOSIE_BYTES_PER_ENTRY,
    SCR_BYTES_PER_ENTRY,
    bits_to_bytes,
    storage_report,
)

__all__ = [
    "FetchedItem",
    "IndexBuildReport",
    "IndexBuilder",
    "IndexMaintainer",
    "IndexStorageReport",
    "InvertedIndex",
    "JOSIE_BYTES_PER_ENTRY",
    "PostingListItem",
    "SCR_BYTES_PER_ENTRY",
    "ShardedInvertedIndex",
    "bits_to_bytes",
    "build_index",
    "build_sharded_index",
    "shard_of_value",
    "storage_report",
]
