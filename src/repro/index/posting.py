"""Posting-list structures for the extended inverted index.

The paper extends the classic value -> (table, column, row) inverted index
(Eq. 4) with one extra element per entry: the *super key* of the row
(Section 5.1).  Two light-weight record types model this:

* :class:`PostingListItem` — what is stored in the index: the location of one
  occurrence of a value.
* :class:`FetchedItem` — what the discovery phase works with after fetching:
  the location plus the value that was probed and the row super key
  (line 4 of Algorithm 1 fetches "PL items including their generated super
  key").
"""

from __future__ import annotations

from typing import NamedTuple


class PostingListItem(NamedTuple):
    """One occurrence of a value inside the corpus (a "PL item")."""

    table_id: int
    column_index: int
    row_index: int

    def location(self) -> tuple[int, int]:
        """Return the (table, row) pair identifying the containing row."""
        return self.table_id, self.row_index


class FetchedItem(NamedTuple):
    """A PL item enriched with the probed value and the row super key."""

    value: str
    table_id: int
    column_index: int
    row_index: int
    super_key: int

    def location(self) -> tuple[int, int]:
        """Return the (table, row) pair identifying the containing row."""
        return self.table_id, self.row_index

    @classmethod
    def from_posting(
        cls, value: str, item: PostingListItem, super_key: int
    ) -> "FetchedItem":
        """Combine a stored posting with its value and row super key."""
        return cls(
            value=value,
            table_id=item.table_id,
            column_index=item.column_index,
            row_index=item.row_index,
            super_key=super_key,
        )
