"""Vectorized prefilter kernels over packed super-key buffers.

The XASH prefilter (line 18 of Algorithm 1) is a pure bitwise test —
``key_super_key & ~row_super_key == 0`` — evaluated for every fetched PL
item.  Walking the packed blocks row by row in Python throttles that test
with interpreter overhead; this module evaluates it over *entire* blocks at
once, directly on the fixed-width packed super-key buffers of
:class:`~repro.index.columnar.PackedSuperKeys` (zero copy), including the
XASH length-segment short-circuit and table-filtering rule 2
(``L_t - r_checked + r_match <= j_k``).

Two kernel implementations share one contract, both batching the whole
block per *entry level* (the i-th key-map entry of every probe value — in
practice one level, since most values map to a single key combination):

* **numpy** — the packed buffer is viewed as an ``(n, width)`` ``uint8``
  matrix via ``numpy.frombuffer`` (no copy) and the reject test for the
  whole block is one broadcasted ``key & ~rows`` pass over a gathered key
  matrix (``np.repeat`` over the block's value runs);
* **fallback** — pure stdlib: the block's key column and super-key buffer
  are joined into two big integers and the reject test becomes a single
  arbitrary-precision ``keys & ~rows`` operation, with per-row zero-slice
  checks only on the miss mask.

Both produce the *identical* survivor list, counter increments, and rule-2
abandon point as the legacy per-row loop — the differential kernel test
suite (``tests/test_kernels.py``) pins that equivalence down, and the
plan-equivalence suite proves end-to-end top-k byte-identity with kernels
forced on and off.

Kernel selection: the ``MATE_KERNEL`` environment variable (``auto``,
``numpy``, ``fallback``, ``off``) sets the process default; tests override
it with :func:`set_kernel` / :func:`use_kernel`.  When numpy is not
installed, ``auto`` and ``numpy`` degrade to the stdlib fallback.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Mapping, Sequence

try:  # numpy is an optional accelerator (the ``accel`` extra), never required
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI entry
    _np = None

#: Recognised kernel selections.
KERNEL_CHOICES: tuple[str, ...] = ("auto", "numpy", "fallback", "off")

#: Environment variable holding the process-wide default selection.
KERNEL_ENV_VAR = "MATE_KERNEL"

#: One key-map entry: the query key tuple and its aggregated super key.
KeyEntry = tuple[tuple[str, ...], int]

_choice = os.environ.get(KERNEL_ENV_VAR, "auto")
if _choice not in KERNEL_CHOICES:
    _choice = "auto"


def numpy_available() -> bool:
    """Whether the numpy kernel can run in this process."""
    return _np is not None


def kernel_choice() -> str:
    """The current (unresolved) kernel selection."""
    return _choice


def active_kernel() -> str | None:
    """The kernel that would execute now: ``"numpy"``, ``"fallback"``, ``None``.

    ``None`` means kernels are switched off and callers must use their
    per-row path.  ``auto`` and ``numpy`` resolve to the fallback when numpy
    is unavailable, so forcing ``numpy`` in a no-numpy environment degrades
    rather than fails (the differential suite skips those cases explicitly).
    """
    if _choice == "off":
        return None
    if _choice == "fallback":
        return "fallback"
    return "numpy" if _np is not None else "fallback"


def set_kernel(choice: str) -> None:
    """Set the process-wide kernel selection."""
    global _choice
    if choice not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown kernel choice {choice!r}; expected one of {KERNEL_CHOICES}"
        )
    _choice = choice


@contextmanager
def use_kernel(choice: str) -> Iterator[None]:
    """Temporarily force a kernel selection (test helper)."""
    previous = _choice
    set_kernel(choice)
    try:
        yield
    finally:
        set_kernel(previous)


class PrefilterResult:
    """Survivors and exact counter deltas of one block prefilter pass."""

    __slots__ = (
        "surviving",
        "rows_checked",
        "rows_matched",
        "superkey_checks",
        "short_circuit_hits",
        "abandoned",
    )

    def __init__(
        self,
        surviving: list[tuple[int, tuple[str, ...]]],
        rows_checked: int,
        rows_matched: int,
        superkey_checks: int,
        short_circuit_hits: int,
        abandoned: bool,
    ):
        #: ``(row_index, key_tuple)`` pairs, in the legacy loop's order
        #: (row-major, key-map entry order within a row).
        self.surviving = surviving
        #: Rows scanned before the rule-2 abandon point (= legacy
        #: ``counters.rows_checked`` delta).
        self.rows_checked = rows_checked
        #: Rows with at least one surviving key entry (rule-2 bookkeeping).
        self.rows_matched = rows_matched
        #: Super-key subsumption checks performed (``superkey`` mode only).
        self.superkey_checks = superkey_checks
        #: Checks answered by the XASH length-segment short-circuit.
        self.short_circuit_hits = short_circuit_hits
        #: Whether table-filtering rule 2 abandoned the scan mid-block.
        self.abandoned = abandoned


def _runs_from_values(values: Sequence[str]) -> list[tuple[str, int, int]]:
    """Maximal runs of equal consecutive probe values (defensive fallback)."""
    runs: list[tuple[str, int, int]] = []
    start = 0
    previous: str | None = None
    position = 0
    for position, value in enumerate(values):
        if value != previous:
            if previous is not None:
                runs.append((previous, start, position))
            previous = value
            start = position
    if previous is not None:
        runs.append((previous, start, position + 1))
    return runs


def _entry_scalar(
    packed, width: int, start: int, end: int, key_super_key: int,
    length_shift: int | None,
) -> tuple[list[bool], list[bool]]:
    """Per-row reject test for a key too wide for the packed width (rare)."""
    covered: list[bool] = []
    short_circuited: list[bool] = []
    from_bytes = int.from_bytes
    for position in range(start, end):
        row = from_bytes(packed[position * width : (position + 1) * width], "big")
        covered.append(key_super_key & ~row == 0)
        if length_shift is not None:
            short_circuited.append(
                (key_super_key >> length_shift) & ~(row >> length_shift) != 0
            )
    return covered, short_circuited


def _coverage_dtype(width: int):
    """Widest lane that tiles the packed slot (zero-tests are endian-safe)."""
    if width % 8 == 0:
        return _np.uint64, width // 8
    if width % 4 == 0:
        return _np.uint32, width // 4
    if width % 2 == 0:
        return _np.uint16, width // 2
    return _np.uint8, width


def _entry_coverage_numpy(packed, width, key_super_key, length_shift, n):
    # The reject test only asks whether ``key & ~row`` has any set bit, so
    # the byte buffer can be reinterpreted in the widest lane that tiles the
    # slot — endianness never matters for an any-bits-set test as long as
    # key, mask, and rows use the same reinterpretation.
    dtype, lanes = _coverage_dtype(width)
    rows2d = _np.frombuffer(packed, dtype=dtype).reshape(n, lanes)
    key_np = _np.frombuffer(key_super_key.to_bytes(width, "big"), dtype=dtype)
    miss = key_np & ~rows2d
    cov = ~miss.any(axis=1)
    sc = None
    if length_shift is not None and length_shift < 8 * width:
        mask = ((1 << (8 * width - length_shift)) - 1) << length_shift
        mask_np = _np.frombuffer(mask.to_bytes(width, "big"), dtype=dtype)
        sc = (miss & mask_np).any(axis=1).tobytes()
    return cov.tobytes(), sc


def _entry_coverage_fallback(packed, width, key_super_key, length_shift, n):
    from_bytes = int.from_bytes
    key_bytes = key_super_key.to_bytes(width, "big")
    miss = from_bytes(key_bytes * n, "big") & ~from_bytes(bytes(packed), "big")
    track_sc = length_shift is not None and length_shift < 8 * width
    if miss == 0:
        return b"\x01" * n, (b"\x00" * n if track_sc else None)
    miss_bytes = miss.to_bytes(n * width, "big")
    zero_slot = bytes(width)
    cov = bytearray(n)
    for position in range(n):
        if miss_bytes[position * width : (position + 1) * width] == zero_slot:
            cov[position] = 1
    sc = None
    if track_sc:
        mask = ((1 << (8 * width - length_shift)) - 1) << length_shift
        sc_hits = miss & from_bytes(mask.to_bytes(width, "big") * n, "big")
        sc = bytearray(n)
        if sc_hits:
            sc_bytes = sc_hits.to_bytes(n * width, "big")
            for position in range(n):
                if (
                    sc_bytes[position * width : (position + 1) * width]
                    != zero_slot
                ):
                    sc[position] = 1
        sc = bytes(sc)
    return bytes(cov), sc


def entry_coverage(
    packed,
    width: int,
    key_super_key: int,
    length_shift: int | None,
    kernel: str | None = None,
) -> tuple[bytes, bytes | None]:
    """Coverage bitmap of one key entry over one packed super-key column.

    This is the whole-posting-list primitive behind the fast prefilter
    path: evaluated once per ``(probe value, key entry)`` on the per-value
    :class:`~repro.index.columnar.FetchBlock` (hundreds to thousands of
    rows), then *sliced* into the per-table blocks — so the vector pass is
    amortised over every candidate table that shares the value.

    Returns ``(covered, short_circuited)`` as one byte per row (``0`` /
    ``1``); ``short_circuited`` is ``None`` when the hash has no length
    segment to pre-check.
    """
    if width <= 0 or len(packed) % width:
        raise ValueError(
            f"packed buffer of {len(packed)} bytes is not a multiple of "
            f"width {width}"
        )
    n = len(packed) // width
    if n == 0:
        track_sc = length_shift is not None and length_shift < 8 * width
        return b"", (b"" if track_sc else None)
    if kernel is None:
        kernel = active_kernel() or "fallback"
    if kernel == "numpy" and _np is None:
        kernel = "fallback"
    try:
        if kernel == "numpy":
            return _entry_coverage_numpy(
                packed, width, key_super_key, length_shift, n
            )
        return _entry_coverage_fallback(
            packed, width, key_super_key, length_shift, n
        )
    except OverflowError:
        # Key wider than the packed slots (oversize escape hatch): per-row
        # arbitrary-precision path.
        track = length_shift is not None and length_shift < 8 * width
        cov_list, sc_list = _entry_scalar(
            packed, width, 0, n, key_super_key, length_shift if track else None
        )
        sc = bytes(bytearray(sc_list)) if track else None
        return bytes(bytearray(cov_list)), sc


def _nth_zero(matched, nth: int, n: int) -> int:
    """Position of the ``nth`` (1-based) zero byte in ``matched``.

    The caller guarantees at least ``nth`` zeros exist.  With numpy this is
    one vectorized pass; the stdlib variant narrows down with chunked
    ``count`` calls so the per-zero Python loop never exceeds one chunk.
    """
    if _np is not None:
        zeros = _np.nonzero(
            _np.frombuffer(bytes(matched), dtype=_np.uint8) == 0
        )[0]
        return int(zeros[nth - 1])
    position = 0
    remaining = nth
    chunk = 256
    while True:
        upper = min(position + chunk, n)
        zeros_here = matched.count(0, position, upper)
        if zeros_here >= remaining:
            index = matched.find(0, position, upper)
            while remaining > 1:
                index = matched.find(0, index + 1, upper)
                remaining -= 1
            return index
        remaining -= zeros_here
        position = upper


def prefilter_table_block(
    *,
    row_indexes: Sequence[int],
    run_cov: Sequence[
        tuple[int, int, int, Sequence[KeyEntry], Sequence[tuple[bytes, bytes | None]]]
    ],
    posting_count: int,
    min_joinability: int | None = None,
) -> PrefilterResult:
    """Prefilter one per-table block from precomputed coverage bitmaps.

    ``run_cov`` holds one entry per contributing fetch-block run:
    ``(table_start, fetch_start, count, entries, per_level)`` where
    ``per_level[i]`` is the :func:`entry_coverage` result of ``entries[i]``
    over the *source* fetch block.  The heavy bitwise work already happened
    there; this function only splices, applies table-filtering rule 2, and
    extracts survivors — all with C-speed ``bytes`` operations, so it is
    kernel-agnostic and fast even on the few-row blocks typical of
    per-table grouping.
    """
    n = len(row_indexes)
    matched = bytearray(n)
    from_bytes = int.from_bytes
    for table_start, fetch_start, count, _entries, per_level in run_cov:
        if len(per_level) == 1:
            matched[table_start : table_start + count] = per_level[0][0][
                fetch_start : fetch_start + count
            ]
        else:
            acc = from_bytes(
                per_level[0][0][fetch_start : fetch_start + count], "big"
            )
            for cov, _sc in per_level[1:]:
                acc |= from_bytes(cov[fetch_start : fetch_start + count], "big")
            matched[table_start : table_start + count] = acc.to_bytes(
                count, "big"
            )

    # Rule 2 asks, before each row, whether even an all-matching remainder
    # could still reach the current minimum joinability.  Algebraically the
    # scan abandons at the first position whose prefix holds
    # ``deficit = posting_count - min_joinability`` unmatched rows — so the
    # cutoff is found with C-speed byte counting instead of a per-row loop.
    if min_joinability is None:
        cutoff, abandoned = n, False
        rows_matched = matched.count(1)
    else:
        deficit = posting_count - min_joinability
        total_matched = matched.count(1)
        if deficit <= 0:
            cutoff, abandoned = 0, n > 0
            rows_matched = 0
        elif n - total_matched - (0 if n == 0 or matched[n - 1] else 1) < deficit:
            # Fewer than ``deficit`` unmatched rows before the last check:
            # the scan runs to completion.
            cutoff, abandoned = n, False
            rows_matched = total_matched
        else:
            cutoff, abandoned = _nth_zero(matched, deficit, n) + 1, True
            rows_matched = cutoff - deficit

    superkey_checks = 0
    short_circuit_hits = 0
    surviving: list[tuple[int, tuple[str, ...]]] = []
    for table_start, fetch_start, count, entries, per_level in run_cov:
        if table_start >= cutoff:
            continue
        overlap = min(count, cutoff - table_start)
        superkey_checks += overlap * len(entries)
        for _cov, sc in per_level:
            if sc is not None:
                short_circuit_hits += sc.count(
                    1, fetch_start, fetch_start + overlap
                )
        if len(per_level) == 1:
            key_tuple = entries[0][0]
            cov = per_level[0][0]
            hit = cov.find(1, fetch_start, fetch_start + overlap)
            while hit >= 0:
                surviving.append(
                    (row_indexes[table_start + hit - fetch_start], key_tuple)
                )
                hit = cov.find(1, hit + 1, fetch_start + overlap)
        else:
            limit = table_start + overlap
            hit = matched.find(1, table_start, limit)
            while hit >= 0:
                offset = fetch_start + hit - table_start
                row_index = row_indexes[hit]
                for (key_tuple, _sk), (cov, _sc) in zip(entries, per_level):
                    if cov[offset]:
                        surviving.append((row_index, key_tuple))
                hit = matched.find(1, hit + 1, limit)

    return PrefilterResult(
        surviving=surviving,
        rows_checked=cutoff,
        rows_matched=rows_matched,
        superkey_checks=superkey_checks,
        short_circuit_hits=short_circuit_hits,
        abandoned=abandoned,
    )


def _level_runs(run_entries, level: int):
    """The run-entry triples that still have a key entry at ``level``."""
    if level == 0:
        return list(enumerate(run_entries))
    return [
        (index, triple)
        for index, triple in enumerate(run_entries)
        if len(triple[2]) > level
    ]


def _prefilter_numpy(packed, width, run_entries, length_shift, n):
    """Whole-block coverage via one broadcasted bit pass per entry level.

    Returns ``(matched, sc_count, levels)`` where ``levels`` holds one
    ``(level, row_pos, cov, run_of)`` ndarray triple set per entry level
    (plus per-run scalar patches for oversize keys).
    """
    rows2d = _np.frombuffer(packed, dtype=_np.uint8).reshape(n, width)
    matched = _np.zeros(n, dtype=bool)
    sc_count = None
    mask_np = None
    if length_shift is not None and length_shift < 8 * width:
        mask = ((1 << (8 * width - length_shift)) - 1) << length_shift
        mask_np = _np.frombuffer(mask.to_bytes(width, "big"), dtype=_np.uint8)
        sc_count = _np.zeros(n, dtype=_np.int64)
    max_levels = max(len(entries) for _, _, entries in run_entries)
    levels = []
    ordered = max_levels == 1
    for level in range(max_levels):
        runs = _level_runs(run_entries, level)
        key_blob = bytearray()
        starts: list[int] = []
        lengths: list[int] = []
        run_ids: list[int] = []
        for run_id, (start, end, entries) in runs:
            key_super_key = entries[level][1]
            try:
                key_bytes = key_super_key.to_bytes(width, "big")
            except OverflowError:
                ordered = False
                cov_list, sc_list = _entry_scalar(
                    packed, width, start, end, key_super_key,
                    None if sc_count is None else length_shift,
                )
                cov = _np.asarray(cov_list, dtype=bool)
                matched[start:end] |= cov
                if sc_count is not None:
                    sc_count[start:end] += _np.asarray(sc_list, dtype=bool)
                levels.append(
                    (
                        level,
                        _np.arange(start, end, dtype=_np.int64),
                        cov,
                        _np.full(end - start, run_id, dtype=_np.int64),
                    )
                )
                continue
            key_blob += key_bytes
            starts.append(start)
            lengths.append(end - start)
            run_ids.append(run_id)
        if not starts:
            continue
        starts_np = _np.asarray(starts, dtype=_np.int64)
        lengths_np = _np.asarray(lengths, dtype=_np.int64)
        total = int(lengths_np.sum())
        out_starts = _np.concatenate(
            (_np.zeros(1, dtype=_np.int64), _np.cumsum(lengths_np)[:-1])
        )
        row_pos = _np.arange(total, dtype=_np.int64) + _np.repeat(
            starts_np - out_starts, lengths_np
        )
        run_of = _np.repeat(_np.asarray(run_ids, dtype=_np.int64), lengths_np)
        key_rows = _np.repeat(
            _np.frombuffer(bytes(key_blob), dtype=_np.uint8).reshape(-1, width),
            lengths_np,
            axis=0,
        )
        miss = key_rows & ~rows2d[row_pos]
        cov = ~miss.any(axis=1)
        matched[row_pos] |= cov
        if sc_count is not None:
            sc_count[row_pos] += (miss & mask_np).any(axis=1)
        levels.append((level, row_pos, cov, run_of))
    return matched, sc_count, levels, ordered


def _extract_numpy(levels, run_entries, row_indexes, cutoff, ordered):
    hits = []
    for level, row_pos, cov, run_of in levels:
        keep = cov & (row_pos < cutoff)
        for position, run_id in zip(
            row_pos[keep].tolist(), run_of[keep].tolist()
        ):
            hits.append(
                (position, level, run_entries[run_id][2][level][0])
            )
    if not ordered:
        hits.sort(key=lambda hit: (hit[0], hit[1]))
    return [(row_indexes[position], key_tuple) for position, _, key_tuple in hits]


def _prefilter_fallback(packed, width, run_entries, length_shift, n):
    """Whole-block coverage via one big-integer bit pass per entry level.

    Returns ``(matched, sc_count, levels)`` where ``levels`` holds
    run-structured coverage: ``(level, run_id, start, end, cov)`` with
    ``cov`` either a per-row boolean list or ``None`` ("every row covered").
    """
    matched = bytearray(n)
    track_sc = length_shift is not None and length_shift < 8 * width
    sc_count: list[int] | None = [0] * n if track_sc else None
    mask_bytes = (
        (((1 << (8 * width - length_shift)) - 1) << length_shift).to_bytes(
            width, "big"
        )
        if track_sc
        else b""
    )
    zero_slot = bytes(width)
    from_bytes = int.from_bytes
    max_levels = max(len(entries) for _, _, entries in run_entries)
    levels = []
    for level in range(max_levels):
        runs = _level_runs(run_entries, level)
        key_parts: list[bytes] = []
        seg_parts: list[bytes] = []
        metas: list[tuple[int, int, int]] = []
        for run_id, (start, end, entries) in runs:
            key_super_key = entries[level][1]
            try:
                key_bytes = key_super_key.to_bytes(width, "big")
            except OverflowError:
                cov, sc_list = _entry_scalar(
                    packed, width, start, end, key_super_key,
                    length_shift if track_sc else None,
                )
                for offset, hit in enumerate(cov):
                    if hit:
                        matched[start + offset] = 1
                if sc_count is not None:
                    for offset, hit in enumerate(sc_list):
                        if hit:
                            sc_count[start + offset] += 1
                levels.append((level, run_id, start, end, cov))
                continue
            key_parts.append(key_bytes * (end - start))
            seg_parts.append(bytes(packed[start * width : end * width]))
            metas.append((run_id, start, end))
        if not metas:
            continue
        total = sum(end - start for _, start, end in metas)
        miss = from_bytes(b"".join(key_parts), "big") & ~from_bytes(
            b"".join(seg_parts), "big"
        )
        if miss == 0:
            for run_id, start, end in metas:
                matched[start:end] = b"\x01" * (end - start)
                levels.append((level, run_id, start, end, None))
            continue
        miss_bytes = miss.to_bytes(total * width, "big")
        sc_bytes = None
        if sc_count is not None:
            sc_hits = miss & from_bytes(mask_bytes * total, "big")
            if sc_hits:
                sc_bytes = sc_hits.to_bytes(total * width, "big")
        cursor = 0
        for run_id, start, end in metas:
            count = end - start
            cov = [
                miss_bytes[offset : offset + width] == zero_slot
                for offset in range(
                    cursor * width, (cursor + count) * width, width
                )
            ]
            for offset, hit in enumerate(cov):
                if hit:
                    matched[start + offset] = 1
            if sc_bytes is not None:
                base = cursor * width
                for offset in range(count):
                    if (
                        sc_bytes[base + offset * width : base + (offset + 1) * width]
                        != zero_slot
                    ):
                        sc_count[start + offset] += 1
            levels.append((level, run_id, start, end, cov))
            cursor += count
    return matched, sc_count, levels, max_levels == 1


def _extract_fallback(levels, run_entries, row_indexes, cutoff, ordered):
    hits = []
    for level, run_id, start, end, cov in levels:
        if start >= cutoff:
            continue
        limit = min(end, cutoff) - start
        key_tuple = run_entries[run_id][2][level][0]
        positions = (
            range(limit)
            if cov is None
            else [offset for offset in range(limit) if cov[offset]]
        )
        hits.extend((start + offset, level, key_tuple) for offset in positions)
    if not ordered:
        hits.sort(key=lambda hit: (hit[0], hit[1]))
    return [(row_indexes[position], key_tuple) for position, _, key_tuple in hits]


def _cutoff_numpy(matched, posting_count, min_joinability, n):
    flags = matched.astype(_np.int64)
    prefix = _np.concatenate((_np.zeros(1, dtype=_np.int64), _np.cumsum(flags)))
    optimistic = posting_count - _np.arange(n, dtype=_np.int64) + prefix[:n]
    bad = _np.nonzero(optimistic <= min_joinability)[0]
    if bad.size:
        return int(bad[0]), True
    return n, False


def _cutoff_scalar(matched, posting_count, min_joinability, n):
    rows_matched = 0
    for position in range(n):
        if posting_count - position + rows_matched <= min_joinability:
            return position, True
        rows_matched += matched[position]
    return n, False


def _prefilter_none(run_entries, row_indexes, posting_count, min_joinability, n):
    """Mode ``"none"`` (the SCR baseline): every key entry survives."""
    matched = bytearray(n)
    for start, end, _entries in run_entries:
        matched[start:end] = b"\x01" * (end - start)
    if min_joinability is None:
        cutoff, abandoned = n, False
    else:
        cutoff, abandoned = _cutoff_scalar(
            matched, posting_count, min_joinability, n
        )
    surviving: list[tuple[int, tuple[str, ...]]] = []
    for start, end, entries in run_entries:
        if start >= cutoff:
            break
        key_tuples = [key_tuple for key_tuple, _ in entries]
        for position in range(start, min(end, cutoff)):
            row_index = row_indexes[position]
            surviving.extend((row_index, key_tuple) for key_tuple in key_tuples)
    return PrefilterResult(
        surviving=surviving,
        rows_checked=cutoff,
        rows_matched=sum(matched[:cutoff]),
        superkey_checks=0,
        short_circuit_hits=0,
        abandoned=abandoned,
    )


def prefilter_block(
    *,
    values: Sequence[str],
    row_indexes: Sequence[int],
    key_map: Mapping[str, Sequence[KeyEntry]],
    posting_count: int,
    value_runs: Sequence[tuple[str, int, int]] | None = None,
    packed=None,
    width: int = 0,
    mode: str = "superkey",
    length_shift: int | None = None,
    min_joinability: int | None = None,
    kernel: str | None = None,
) -> PrefilterResult:
    """Run the super-key prefilter over one per-table block, vectorized.

    Parameters mirror the inner loop of the legacy
    :class:`~repro.plan.stages.SuperKeyPrefilter`: ``values`` /
    ``row_indexes`` are the block's parallel columns, ``packed`` the
    big-endian fixed-``width`` super-key buffer (``n * width`` bytes),
    ``key_map`` the query's value -> key-entry mapping, ``length_shift`` the
    XASH length-segment bit position (``None`` disables the short-circuit),
    and ``min_joinability`` the current ``j_k`` when table-filtering rule 2
    is armed (``None`` disables it).  ``mode`` is ``"superkey"`` (the real
    filter) or ``"none"`` (the SCR baseline: every key entry survives).

    The result is bit-for-bit what the per-row loop produces: same survivor
    pairs in the same order, same counter deltas, same abandon point.
    """
    if mode not in ("superkey", "none"):
        raise ValueError(f"prefilter kernels cannot run row-filter mode {mode!r}")
    n = len(row_indexes)
    if mode == "superkey":
        if packed is None:
            raise ValueError("superkey mode requires a packed super-key buffer")
        if width <= 0 or len(packed) != n * width:
            raise ValueError(
                f"packed buffer of {len(packed)} bytes does not hold "
                f"{n} keys of width {width}"
            )
    if value_runs is None:
        value_runs = _runs_from_values(values)

    run_entries = []
    for value, start, end in value_runs:
        entries = key_map.get(value, ())
        if entries:
            run_entries.append((start, end, entries))

    if not run_entries:
        # No probe value of this block maps to a key entry: nothing can
        # match, and rule 2 degenerates to a pure countdown.
        if min_joinability is None:
            cutoff, abandoned = n, False
        elif posting_count - min_joinability <= 0:
            cutoff, abandoned = 0, n > 0
        else:
            cutoff = min(n, posting_count - min_joinability)
            abandoned = cutoff < n
        return PrefilterResult([], cutoff, 0, 0, 0, abandoned)

    if mode == "none":
        return _prefilter_none(
            run_entries, row_indexes, posting_count, min_joinability, n
        )

    if kernel is None:
        kernel = active_kernel() or "fallback"
    if kernel == "numpy" and _np is None:
        kernel = "fallback"

    if kernel == "numpy":
        matched, sc_count, levels, ordered = _prefilter_numpy(
            packed, width, run_entries, length_shift, n
        )
        if min_joinability is None:
            cutoff, abandoned = n, False
        else:
            cutoff, abandoned = _cutoff_numpy(
                matched, posting_count, min_joinability, n
            )
        rows_matched = int(matched[:cutoff].sum())
        short_circuit_hits = (
            int(sc_count[:cutoff].sum()) if sc_count is not None else 0
        )
        surviving = _extract_numpy(
            levels, run_entries, row_indexes, cutoff, ordered
        )
    else:
        matched, sc_count, levels, ordered = _prefilter_fallback(
            packed, width, run_entries, length_shift, n
        )
        if min_joinability is None:
            cutoff, abandoned = n, False
        else:
            cutoff, abandoned = _cutoff_scalar(
                matched, posting_count, min_joinability, n
            )
        rows_matched = sum(matched[:cutoff])
        short_circuit_hits = (
            sum(sc_count[:cutoff]) if sc_count is not None else 0
        )
        surviving = _extract_fallback(
            levels, run_entries, row_indexes, cutoff, ordered
        )

    superkey_checks = 0
    for start, end, entries in run_entries:
        overlap = min(end, cutoff) - start
        if overlap > 0:
            superkey_checks += overlap * len(entries)

    return PrefilterResult(
        surviving=surviving,
        rows_checked=cutoff,
        rows_matched=rows_matched,
        superkey_checks=superkey_checks,
        short_circuit_hits=short_circuit_hits,
        abandoned=abandoned,
    )
