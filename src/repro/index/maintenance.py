"""Index maintenance under corpus edits (Section 5.4).

The paper enumerates how the extended index reacts to the three edit types on
a table corpus — insert, update, delete — at table, row, column, and cell
granularity.  :class:`IndexMaintainer` implements each of them so that the
index, the corpus, and the per-row super keys stay consistent:

* **insert table / insert row** — generate PL items for the new cells and a
  fresh super key per new row;
* **insert column** — hash each new value and OR it into the existing row
  super keys (no full rehash required);
* **update cell** — replace the PL item and fully rehash the affected row's
  super key (an OR-aggregate cannot "subtract" the old value);
* **delete table / delete row** — drop PL items and super keys;
* **delete column** — drop the column's PL items and rehash the super keys of
  every remaining row of that table.
"""

from __future__ import annotations

from ..datamodel import MISSING, Row, Table, TableCorpus
from ..exceptions import DataModelError
from ..hashing import SuperKeyGenerator
from .inverted import InvertedIndex


class IndexMaintainer:
    """Keeps an :class:`InvertedIndex` consistent with corpus edits."""

    def __init__(
        self,
        corpus: TableCorpus,
        index: InvertedIndex,
        super_key_generator: SuperKeyGenerator,
    ):
        self.corpus = corpus
        self.index = index
        self.super_key_generator = super_key_generator

    # ------------------------------------------------------------------
    # Inserts
    # ------------------------------------------------------------------
    def insert_table(self, table: Table) -> None:
        """Add a new table to the corpus and index it."""
        self.corpus.add_table(table)
        for row_index, row in enumerate(table.rows):
            self._index_row(table.table_id, row_index, row)

    def insert_row(self, table_id: int, values: list[object]) -> int:
        """Append a row to an existing table; returns the new row index."""
        table = self.corpus.get_table(table_id)
        row = table.append_row(values)
        row_index = table.num_rows - 1
        self._index_row(table_id, row_index, row)
        return row_index

    def insert_column(self, table_id: int, column_name: str, values: list[object]) -> None:
        """Add a column to an existing table.

        Per Section 5.4 this only requires hashing the new values and OR-ing
        each into the corresponding row super key.
        """
        table = self.corpus.get_table(table_id)
        if column_name in table.columns:
            raise DataModelError(
                f"table {table_id} already has a column named {column_name!r}"
            )
        if len(values) != table.num_rows:
            raise DataModelError(
                f"column has {len(values)} values but table {table_id} has "
                f"{table.num_rows} rows"
            )
        column_index = table.num_columns
        table.columns.append(column_name)
        new_rows = []
        for row_index, (row, raw_value) in enumerate(zip(table.rows, values)):
            new_row = Row(list(row) + [raw_value])
            new_rows.append(new_row)
            value = new_row[column_index]
            if value != MISSING:
                self.index.add_posting(value, table_id, column_index, row_index)
                self.index.or_into_super_key(
                    table_id, row_index, self.super_key_generator.value_hash(value)
                )
        table.rows = new_rows

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update_cell(
        self, table_id: int, row_index: int, column_index: int, value: object
    ) -> None:
        """Replace a single cell value and rehash the row's super key."""
        table = self.corpus.get_table(table_id)
        if not 0 <= row_index < table.num_rows:
            raise DataModelError(
                f"row {row_index} out of range for table {table_id}"
            )
        if not 0 <= column_index < table.num_columns:
            raise DataModelError(
                f"column {column_index} out of range for table {table_id}"
            )
        old_row = table.rows[row_index]
        new_values = list(old_row)
        new_values[column_index] = value
        new_row = Row(new_values)
        table.rows[row_index] = new_row

        # Postings: drop the old row's postings and re-add them from scratch.
        self.index.remove_row(table_id, row_index)
        self._index_row(table_id, row_index, new_row)

    # ------------------------------------------------------------------
    # Deletes
    # ------------------------------------------------------------------
    def delete_table(self, table_id: int) -> None:
        """Remove a table from the corpus and the index."""
        self.corpus.remove_table(table_id)
        self.index.remove_table(table_id)

    def delete_row(self, table_id: int, row_index: int) -> None:
        """Remove a single row from a table and the index.

        Rows after ``row_index`` are re-indexed because their positions shift.
        """
        table = self.corpus.get_table(table_id)
        if not 0 <= row_index < table.num_rows:
            raise DataModelError(
                f"row {row_index} out of range for table {table_id}"
            )
        # Drop every posting of this table and rebuild — row indexes shift, so
        # a local fix-up would have to rewrite most postings anyway.
        del table.rows[row_index]
        self.index.remove_table(table_id)
        for new_index, row in enumerate(table.rows):
            self._index_row(table_id, new_index, row)

    def delete_column(self, table_id: int, column_name: str) -> None:
        """Remove a column; triggers a rehash of all row super keys (Section 5.4)."""
        table = self.corpus.get_table(table_id)
        column_index = table.column_index(column_name)
        del table.columns[column_index]
        new_rows = []
        for row in table.rows:
            values = list(row)
            del values[column_index]
            new_rows.append(Row(values))
        table.rows = new_rows
        # Rebuild the table's postings and super keys: column indexes above
        # the removed column shift and super keys must forget the old values.
        self.index.remove_table(table_id)
        for row_index, row in enumerate(table.rows):
            self._index_row(table_id, row_index, row)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _index_row(self, table_id: int, row_index: int, row: Row) -> None:
        super_key = self.super_key_generator.row_super_key(row)
        self.index.set_super_key(table_id, row_index, super_key)
        for column_index, value in enumerate(row):
            if value == MISSING:
                continue
            self.index.add_posting(value, table_id, column_index, row_index)

    def verify_consistency(self) -> list[str]:
        """Cross-check index and corpus; returns a list of human-readable issues."""
        issues: list[str] = []
        for table in self.corpus:
            for row_index, row in enumerate(table.rows):
                if not self.index.has_row(table.table_id, row_index):
                    if any(v != MISSING for v in row):
                        issues.append(
                            f"missing super key for table {table.table_id} "
                            f"row {row_index}"
                        )
                    continue
                expected = self.super_key_generator.row_super_key(row)
                actual = self.index.super_key(table.table_id, row_index)
                if expected != actual:
                    issues.append(
                        f"stale super key for table {table.table_id} row {row_index}"
                    )
        indexed_tables = self.index.indexed_tables()
        corpus_tables = set(self.corpus.table_ids())
        for orphan in sorted(indexed_tables - corpus_tables):
            issues.append(f"index references missing table {orphan}")
        return issues
