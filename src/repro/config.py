"""Global configuration objects for the MATE reproduction.

The paper fixes a small number of knobs that recur throughout the system:

* the super-key / hash size ``|a|`` in bits (128 by default, 256 and 512 are
  evaluated in Tables 2 and 3),
* the number of 1-bits per XASH hash (``alpha`` in Eq. 5 of the paper),
* the alphabet used for the character segmentation (37 alphanumeric
  characters including space, Section 5.3.2),
* the number of requested results ``k`` (top-10 unless stated otherwise).

:class:`MateConfig` bundles those knobs, validates them eagerly, and derives
the XASH segmentation (``beta`` from Eq. 6 and the length-segment width) so
that every component of the system sees one consistent layout.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .exceptions import ConfigurationError

#: The 37-character alphabet from Section 5.3.2: digits, lowercase letters and
#: the space character.  Characters outside this alphabet are normalised (see
#: :func:`repro.hashing.xash.normalize_character`).
DEFAULT_ALPHABET: str = "0123456789abcdefghijklmnopqrstuvwxyz "

#: Hash sizes evaluated in the paper (Tables 2 and 3).
SUPPORTED_HASH_SIZES: tuple[int, ...] = (64, 128, 256, 512, 1024)

#: Posting-list storage layouts of the inverted index (re-exported as
#: :data:`repro.index.LAYOUTS`): packed struct-of-arrays vs per-item records.
INDEX_LAYOUTS: tuple[str, ...] = ("columnar", "legacy")

#: English letter/digit frequencies used to pick the *least frequent*
#: characters of a value (Section 5.3.2).  The exact numbers only matter
#: relatively; they follow standard English corpus frequencies, with digits and
#: space given mid-range frequencies so that rare letters still win.
CHARACTER_FREQUENCIES: dict[str, float] = {
    "e": 12.702, "t": 9.056, "a": 8.167, "o": 7.507, "i": 6.966, "n": 6.749,
    "s": 6.327, "h": 6.094, "r": 5.987, "d": 4.253, "l": 4.025, "c": 2.782,
    "u": 2.758, "m": 2.406, "w": 2.360, "f": 2.228, "g": 2.015, "y": 1.974,
    "p": 1.929, "b": 1.492, "v": 0.978, "k": 0.772, "j": 0.153, "x": 0.150,
    "q": 0.095, "z": 0.074,
    " ": 13.000,
    "0": 1.80, "1": 1.90, "2": 1.70, "3": 1.60, "4": 1.50,
    "5": 1.55, "6": 1.45, "7": 1.40, "8": 1.35, "9": 1.30,
}


def required_number_of_ones(hash_size: int, unique_values: int) -> int:
    """Return ``alpha``, the optimal number of 1-bits per hash (Eq. 5).

    ``alpha`` is the smallest number of set bits such that the number of
    possible bit combinations ``C(hash_size, alpha)`` exceeds the number of
    unique values in the corpus.  One of those bits is reserved for the length
    segment, the remaining ``alpha - 1`` encode characters.

    >>> required_number_of_ones(128, 700_000_000)
    6
    """
    if hash_size <= 0:
        raise ConfigurationError(f"hash_size must be positive, got {hash_size}")
    if unique_values <= 0:
        raise ConfigurationError(
            f"unique_values must be positive, got {unique_values}"
        )
    for alpha in range(1, hash_size + 1):
        if math.comb(hash_size, alpha) > unique_values:
            return alpha
    return hash_size


def character_segment_width(hash_size: int, alphabet_size: int) -> int:
    """Return ``beta``, the per-character segment width in bits (Eq. 6).

    ``beta`` is the largest integer such that ``alphabet_size * beta`` still
    fits strictly inside the hash array, leaving at least one bit for the
    length segment.

    >>> character_segment_width(128, 37)
    3
    >>> character_segment_width(512, 37)
    13
    """
    if hash_size <= alphabet_size:
        raise ConfigurationError(
            "hash_size must exceed the alphabet size "
            f"({hash_size} <= {alphabet_size})"
        )
    beta = (hash_size - 1) // alphabet_size
    return max(beta, 1)


@dataclass(frozen=True)
class MateConfig:
    """Configuration shared by indexing and discovery components.

    Parameters
    ----------
    hash_size:
        Width of the super key / per-value hash in bits (``|a|``).
    k:
        Number of joinable tables to return (top-``k``).
    number_of_ones:
        Number of 1-bits per XASH hash (``alpha`` in Eq. 5).  When ``None``,
        it is derived from ``expected_unique_values``.
    expected_unique_values:
        Estimated number of distinct cell values in the corpus; feeds Eq. 5.
    alphabet:
        Character alphabet used for segmentation.
    rotation:
        Whether XASH rotates character segments by the value length
        (Section 5.3.5).  Disabled only by the ablation study (Figure 5).
    encode_length / encode_location / use_rare_characters:
        Ablation switches for the Figure 5 experiment.  The default (all
        ``True``) is full XASH.
    """

    hash_size: int = 128
    k: int = 10
    #: Posting-list storage layout of newly built indexes: ``"columnar"``
    #: (packed struct-of-arrays, the fast default) or ``"legacy"`` (one
    #: NamedTuple per PL item; kept for comparison benchmarks).
    index_layout: str = "columnar"
    number_of_ones: int | None = None
    expected_unique_values: int = 700_000_000
    alphabet: str = DEFAULT_ALPHABET
    rotation: bool = True
    encode_length: bool = True
    encode_location: bool = True
    use_rare_characters: bool = True
    #: ``V`` for the bloom-filter baselines: the average number of values
    #: aggregated per super key (i.e. columns per table).  ``None`` falls back
    #: to the paper's web-table setting of 5 (Section 7.1.2).
    bloom_values_per_row: float | None = None
    character_frequencies: dict[str, float] = field(
        default_factory=lambda: dict(CHARACTER_FREQUENCIES)
    )

    def __post_init__(self) -> None:
        if self.hash_size <= 0:
            raise ConfigurationError(
                f"hash_size must be positive, got {self.hash_size}"
            )
        if self.k <= 0:
            raise ConfigurationError(f"k must be positive, got {self.k}")
        if self.index_layout not in INDEX_LAYOUTS:
            raise ConfigurationError(
                f"index_layout must be one of {INDEX_LAYOUTS}, "
                f"got {self.index_layout!r}"
            )
        if len(set(self.alphabet)) != len(self.alphabet):
            raise ConfigurationError("alphabet must not contain duplicates")
        if len(self.alphabet) < 2:
            raise ConfigurationError("alphabet must contain at least 2 symbols")
        if self.hash_size <= len(self.alphabet):
            raise ConfigurationError(
                "hash_size must be larger than the alphabet size "
                f"({self.hash_size} <= {len(self.alphabet)})"
            )
        if self.number_of_ones is not None and self.number_of_ones < 2:
            raise ConfigurationError(
                "number_of_ones must be at least 2 (1 length bit + 1 char bit)"
            )
        if self.expected_unique_values <= 0:
            raise ConfigurationError("expected_unique_values must be positive")

    # ------------------------------------------------------------------
    # Derived layout properties (Eq. 5 and Eq. 6)
    # ------------------------------------------------------------------
    @property
    def alphabet_size(self) -> int:
        """Number of distinct characters in the segmentation alphabet."""
        return len(self.alphabet)

    @property
    def alpha(self) -> int:
        """Total number of 1-bits per hash (Eq. 5), including the length bit."""
        if self.number_of_ones is not None:
            return self.number_of_ones
        return required_number_of_ones(self.hash_size, self.expected_unique_values)

    @property
    def characters_per_value(self) -> int:
        """Number of least-frequent characters encoded per value (alpha - 1)."""
        return max(self.alpha - 1, 1)

    @property
    def beta(self) -> int:
        """Width in bits of each character segment (Eq. 6)."""
        return character_segment_width(self.hash_size, self.alphabet_size)

    @property
    def character_region_bits(self) -> int:
        """Total number of bits occupied by the character segments."""
        return self.alphabet_size * self.beta

    @property
    def length_segment_bits(self) -> int:
        """Number of bits in the length segment (``|a_l|`` in the paper)."""
        return self.hash_size - self.character_region_bits

    def with_hash_size(self, hash_size: int) -> "MateConfig":
        """Return a copy of this configuration with a different hash size."""
        from dataclasses import replace

        return replace(self, hash_size=hash_size)

    def with_k(self, k: int) -> "MateConfig":
        """Return a copy of this configuration with a different ``k``."""
        from dataclasses import replace

        return replace(self, k=k)


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration of the batch-discovery service layer (:mod:`repro.service`).

    These knobs do not exist in the paper — they parameterise the serving
    architecture this reproduction adds on top of Algorithm 1: how the
    extended inverted index is partitioned, how large the posting-list cache
    in front of it is, and how much concurrency the batch scheduler uses.

    Parameters
    ----------
    num_shards:
        Number of value partitions of the
        :class:`~repro.index.sharded.ShardedInvertedIndex` (postings are
        routed by a stable ``hash(value) % num_shards``).  When a monolithic
        index is handed to :class:`~repro.service.service.DiscoveryService`
        with ``num_shards`` > 1 it is partitioned on construction (an
        already-sharded index is used as-is); the default ``1`` leaves the
        index untouched.
    cache_capacity:
        Maximum number of distinct probe values whose posting lists the LRU
        :class:`~repro.service.cache.PostingListCache` retains.  ``0``
        disables caching entirely (every fetch goes to the index).
    max_workers:
        Worker threads the :class:`~repro.service.service.DiscoveryService`
        schedules batched queries on.  ``1`` runs the batch serially.
    fetch_workers:
        Worker threads the service's sharded index fans one ``fetch`` out
        across its shards with (applied to the index on service
        construction).  ``1`` probes the shards serially.
    """

    num_shards: int = 1
    cache_capacity: int = 4096
    max_workers: int = 1
    fetch_workers: int = 1

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ConfigurationError(
                f"num_shards must be positive, got {self.num_shards}"
            )
        if self.cache_capacity < 0:
            raise ConfigurationError(
                f"cache_capacity must be non-negative, got {self.cache_capacity}"
            )
        if self.max_workers <= 0:
            raise ConfigurationError(
                f"max_workers must be positive, got {self.max_workers}"
            )
        if self.fetch_workers <= 0:
            raise ConfigurationError(
                f"fetch_workers must be positive, got {self.fetch_workers}"
            )


#: A configuration suitable for the laptop-scale synthetic corpora used in the
#: test-suite and benchmarks: the Eq. 5 budget is computed against a much
#: smaller number of unique values, which yields alpha = 4 exactly as in the
#: worked example of Section 5.3.1 (3 character bits + 1 length bit).
DEFAULT_CONFIG = MateConfig(expected_unique_values=300_000)
