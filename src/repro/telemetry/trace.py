"""Request tracing: spans, context propagation, and pluggable exporters.

A :class:`Tracer` produces :class:`Span` objects — ``trace_id`` /
``span_id`` / ``parent_id`` identifiers, a wall-clock start, a monotonic
duration, and free-form attributes — and keeps the *current* span in a
:mod:`contextvars` context variable so nested layers (session → executor →
stage) attach children without any signature plumbing.  Spans cross the
process-pool IPC boundary by value: the parent puts a :class:`TraceContext`
on each ``ShardQuery``, the worker runs its engine under a local tracer
with a :class:`CollectingExporter`, and the finished span dictionaries ride
back on ``ShardResult`` where the parent re-exports them — so one JSONL
file (:class:`JsonLinesExporter`) reconstructs the full cross-process tree.

Overhead discipline: all hot-path instrumentation first checks the
module-level :data:`_ACTIVE` counter (the number of live *enabled*
tracers).  When no tracer is enabled anywhere in the process — the default
for every session — that check is a single global-int truthiness test and
nothing else runs: no contextvar lookup, no span allocation, no clock read.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterator

#: Number of *enabled* tracers alive in this process.  Hot paths gate every
#: telemetry branch on this global int being non-zero; see the module
#: docstring for why this must stay a plain attribute read.
_ACTIVE = 0
_ACTIVE_LOCK = threading.Lock()

#: The innermost open span of the current execution context, as a
#: ``(tracer, span)`` pair (``None`` outside any span).
_CURRENT: ContextVar["tuple[Tracer, Span] | None"] = ContextVar(
    "repro_current_span", default=None
)


def tracing_active() -> bool:
    """Whether any enabled tracer exists in this process (the fast gate)."""
    return _ACTIVE > 0


def current_entry() -> "tuple[Tracer, Span] | None":
    """The current ``(tracer, span)`` pair, or ``None`` outside any span."""
    return _CURRENT.get()


def current_span() -> "Span | None":
    """The innermost open span of this execution context, if any."""
    entry = _CURRENT.get()
    return entry[1] if entry is not None else None


def current_trace_id() -> str | None:
    """The trace id of the current span (``None`` outside any span)."""
    span = current_span()
    return span.trace_id if span is not None else None


def new_id(nbytes: int = 8) -> str:
    """A random lowercase-hex identifier (collision-safe across processes)."""
    return os.urandom(nbytes).hex()


@dataclass(frozen=True)
class TraceContext:
    """The picklable cross-boundary form of a span: trace id + parent id.

    Rides on :class:`~repro.serve.protocol.ShardQuery` (protocol v3) and in
    the ``X-Trace-Id`` HTTP header so child spans created in another
    process (or for another request hop) parent correctly.
    """

    trace_id: str
    span_id: str | None = None


@dataclass
class Span:
    """One timed operation in a trace tree."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None = None
    #: Wall-clock start (``time.time()``), for cross-process ordering.
    start: float = 0.0
    #: Duration measured with the monotonic clock (``time.perf_counter``).
    duration: float = 0.0
    attributes: dict[str, object] = field(default_factory=dict)
    _started_monotonic: float = field(default=0.0, repr=False)

    def set_attribute(self, key: str, value: object) -> None:
        """Attach one attribute (scalar, JSON-serialisable) to the span."""
        self.attributes[key] = value

    def context(self) -> TraceContext:
        """The propagation context naming this span as the parent."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def as_dict(self) -> dict[str, object]:
        """The exported (JSONL) form of a finished span."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "pid": os.getpid(),
            "attributes": dict(self.attributes),
        }


class _NoopSpan(Span):
    """The span handed out by a disabled tracer: every operation is a no-op."""

    def __init__(self) -> None:
        super().__init__(name="noop", trace_id="", span_id="")

    def set_attribute(self, key: str, value: object) -> None:  # noqa: ARG002
        return None


#: Shared inert span instance (disabled tracers allocate nothing per span).
NOOP_SPAN = _NoopSpan()


class SpanExporter:
    """Where finished spans go.  Subclasses override :meth:`export`."""

    def export(self, span: dict[str, object]) -> None:  # noqa: ARG002
        """Receive one finished span dictionary."""
        return None

    def close(self) -> None:
        """Release any resources (idempotent)."""
        return None


class NullExporter(SpanExporter):
    """Discards every span (the disabled default)."""


class InMemoryExporter(SpanExporter):
    """Keeps finished spans in a list — tests and the worker side use this."""

    def __init__(self) -> None:
        self.spans: list[dict[str, object]] = []
        self._lock = threading.Lock()

    def export(self, span: dict[str, object]) -> None:
        with self._lock:
            self.spans.append(span)

    def drain(self) -> list[dict[str, object]]:
        """Return and clear the collected spans."""
        with self._lock:
            spans, self.spans = self.spans, []
        return spans


#: Worker-side alias: a shard worker collects its spans in memory and ships
#: them back to the pool parent on the ``ShardResult``.
CollectingExporter = InMemoryExporter


class JsonLinesExporter(SpanExporter):
    """Appends one JSON object per finished span to a file (thread-safe)."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle: IO[str] | None = self.path.open("a", encoding="utf-8")

    def export(self, span: dict[str, object]) -> None:
        line = json.dumps(span, sort_keys=True, default=str)
        with self._lock:
            if self._handle is None:
                return
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class Tracer:
    """Creates spans, keeps the current-span context, exports on end."""

    def __init__(self, exporter: SpanExporter | None = None, enabled: bool = True):
        self.exporter = exporter or NullExporter()
        self.enabled = enabled
        self._counted = False
        if enabled:
            global _ACTIVE
            with _ACTIVE_LOCK:
                _ACTIVE += 1
            self._counted = True

    def close(self) -> None:
        """Retire the tracer: drop the active count, close the exporter."""
        if self._counted:
            global _ACTIVE
            with _ACTIVE_LOCK:
                _ACTIVE -= 1
            self._counted = False
        self.exporter.close()

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def start_span(
        self,
        name: str,
        parent: "Span | TraceContext | None" = None,
        attributes: dict[str, object] | None = None,
    ) -> Span:
        """Open a span (child of ``parent``, else of the current span)."""
        if not self.enabled:
            return NOOP_SPAN
        if parent is None:
            parent = current_span()
        if parent is None:
            trace_id, parent_id = new_id(), None
        elif isinstance(parent, TraceContext):
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=new_id(),
            parent_id=parent_id,
            start=time.time(),
            attributes=dict(attributes or {}),
        )
        span._started_monotonic = time.perf_counter()
        return span

    def end_span(self, span: Span) -> None:
        """Close ``span`` (computing its duration) and export it."""
        if not self.enabled or span is NOOP_SPAN:
            return
        if span.duration == 0.0 and span._started_monotonic:
            span.duration = time.perf_counter() - span._started_monotonic
        self.exporter.export(span.as_dict())

    @contextmanager
    def span(
        self,
        name: str,
        parent: "Span | TraceContext | None" = None,
        attributes: dict[str, object] | None = None,
    ) -> Iterator[Span]:
        """Context manager: open a span, make it current, end on exit."""
        if not self.enabled:
            yield NOOP_SPAN
            return
        span = self.start_span(name, parent=parent, attributes=attributes)
        token = _CURRENT.set((self, span))
        try:
            yield span
        finally:
            _CURRENT.reset(token)
            self.end_span(span)

    def emit(
        self,
        name: str,
        parent: "Span | TraceContext",
        duration: float,
        attributes: dict[str, object] | None = None,
        start: float | None = None,
    ) -> Span:
        """Export a pre-measured (synthetic) span without opening it.

        The executor turns each stage's accumulated
        :class:`~repro.metrics.timing.StageStats` into one aggregate child
        span this way: the stage loop keeps its inlined ``perf_counter``
        timing (zero extra hot-loop cost) and the tracer only materialises
        the totals at the end of the run.  Returns the exported span so
        callers can chain children off it.
        """
        if not self.enabled:
            return NOOP_SPAN
        parent_ctx = (
            parent if isinstance(parent, TraceContext) else parent.context()
        )
        span = Span(
            name=name,
            trace_id=parent_ctx.trace_id,
            span_id=new_id(),
            parent_id=parent_ctx.span_id,
            start=time.time() - duration if start is None else start,
            duration=duration,
            attributes=dict(attributes or {}),
        )
        self.exporter.export(span.as_dict())
        return span

    def export_foreign(self, spans: "list[dict[str, object]] | tuple") -> None:
        """Re-export spans finished elsewhere (a worker process's batch)."""
        if not self.enabled:
            return
        for span in spans:
            self.exporter.export(dict(span))


def read_trace_file(path: str | Path) -> list[dict[str, object]]:
    """Load every span from a :class:`JsonLinesExporter` file."""
    spans = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def span_tree(
    spans: list[dict[str, object]],
) -> dict[str | None, list[dict[str, object]]]:
    """Group spans by ``parent_id`` (``None`` holds the roots)."""
    children: dict[str | None, list[dict[str, object]]] = {}
    for span in spans:
        children.setdefault(span.get("parent_id"), []).append(span)  # type: ignore[arg-type]
    return children


__all__ = [
    "CollectingExporter",
    "InMemoryExporter",
    "JsonLinesExporter",
    "NOOP_SPAN",
    "NullExporter",
    "Span",
    "SpanExporter",
    "TraceContext",
    "Tracer",
    "current_entry",
    "current_span",
    "current_trace_id",
    "new_id",
    "read_trace_file",
    "span_tree",
    "tracing_active",
]
