"""A thread-safe metrics registry with Prometheus text exposition.

Three instrument kinds — :class:`Counter` (monotonic), :class:`Gauge`
(point-in-time), and :class:`Histogram` (fixed buckets, so p50/p99 come out
of the bucket counts without storing samples) — plus *callback* instruments
that pull a value from existing aggregates at scrape time.  The callbacks
are how the pre-existing silos (:class:`~repro.metrics.counters.CacheCounters`,
:class:`~repro.metrics.serving.ServeMetrics`, the admission controller)
flow into one registry without restructuring their owners: each subsystem
registers ``name -> lambda`` pairs once and the registry evaluates them on
:meth:`MetricsRegistry.render_prometheus` / :meth:`MetricsRegistry.snapshot`.

Metric naming convention (documented in ARCHITECTURE "## Telemetry"):
``repro_<subsystem>_<quantity>[_total|_seconds]`` — e.g.
``repro_session_requests_total``, ``repro_cache_hits_total``,
``repro_pool_hedge_wins_total``, ``repro_request_latency_seconds``.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Callable, Iterable

#: Default latency buckets (seconds): sub-millisecond to ten seconds.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str] | None) -> _LabelKey:
    return tuple(sorted((labels or {}).items()))


def _render_labels(key: _LabelKey, extra: str = "") -> str:
    parts = [f'{name}="{value}"' for name, value in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """A monotonically increasing count (thread-safe)."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help_text = help_text
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (thread-safe)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help_text = help_text
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket distribution; percentiles come from the bucket counts.

    Buckets are cumulative upper bounds (Prometheus ``le`` semantics) with
    an implicit ``+Inf`` bucket, so ``observe`` is one bisect plus two adds
    — cheap enough for per-request latency recording.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        self.name = name
        self.help_text = help_text
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self._counts = [0] * (len(self.buckets) + 1)  # +Inf last
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending with ``+Inf``."""
        with self._lock:
            counts = list(self._counts)
        cumulative, out = 0, []
        bounds = list(self.buckets) + [math.inf]
        for bound, count in zip(bounds, counts):
            cumulative += count
            out.append((bound, cumulative))
        return out

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the bucket counts.

        Returns the upper bound of the first bucket whose cumulative count
        reaches ``q * count`` (the largest finite bound for the +Inf
        bucket); 0.0 when empty.  Good enough for p50/p99 dashboards — the
        error is bounded by the bucket width.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        total = self._count
        if total == 0:
            return 0.0
        rank = q * total
        for bound, cumulative in self.bucket_counts():
            if cumulative >= rank:
                return self.buckets[-1] if math.isinf(bound) else bound
        return self.buckets[-1]  # pragma: no cover - defensive


class _Callback:
    """A scrape-time instrument: value pulled from a callable."""

    def __init__(self, name: str, fn: Callable[[], float], kind: str, help_text: str):
        self.name = name
        self.fn = fn
        self.kind = kind
        self.help_text = help_text

    @property
    def value(self) -> float:
        return float(self.fn())


class MetricsRegistry:
    """Owns every instrument; renders Prometheus text and dict snapshots.

    Instruments are identified by ``(name, labels)``: repeated registration
    with the same identity returns the existing instrument, so subsystems
    can call ``registry.counter(...)`` idempotently from their constructors.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, _LabelKey], object] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, labels, factory, kind: str):
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if existing.kind != kind:  # type: ignore[attr-defined]
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {kind}"  # type: ignore[attr-defined]
                    )
                return existing
            instrument = factory()
            self._instruments[key] = instrument
            return instrument

    def counter(
        self, name: str, help_text: str = "", labels: dict[str, str] | None = None
    ) -> Counter:
        return self._get_or_create(
            name, labels, lambda: Counter(name, help_text), "counter"
        )

    def gauge(
        self, name: str, help_text: str = "", labels: dict[str, str] | None = None
    ) -> Gauge:
        return self._get_or_create(
            name, labels, lambda: Gauge(name, help_text), "gauge"
        )

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
        labels: dict[str, str] | None = None,
    ) -> Histogram:
        return self._get_or_create(
            name, labels, lambda: Histogram(name, help_text, buckets), "histogram"
        )

    def counter_callback(
        self,
        name: str,
        fn: Callable[[], float],
        help_text: str = "",
        labels: dict[str, str] | None = None,
    ) -> None:
        """Expose an externally-maintained monotonic count at scrape time."""
        key = (name, _label_key(labels))
        with self._lock:
            self._instruments[key] = _Callback(name, fn, "counter", help_text)

    def gauge_callback(
        self,
        name: str,
        fn: Callable[[], float],
        help_text: str = "",
        labels: dict[str, str] | None = None,
    ) -> None:
        """Expose an externally-maintained point-in-time value at scrape time."""
        key = (name, _label_key(labels))
        with self._lock:
            self._instruments[key] = _Callback(name, fn, "gauge", help_text)

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def _items(self) -> list[tuple[str, _LabelKey, object]]:
        with self._lock:
            items = [
                (name, labels, instrument)
                for (name, labels), instrument in self._instruments.items()
            ]
        return sorted(items, key=lambda item: (item[0], item[1]))

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4)."""
        lines: list[str] = []
        seen_header: set[str] = set()
        for name, labels, instrument in self._items():
            kind = instrument.kind  # type: ignore[attr-defined]
            if name not in seen_header:
                help_text = getattr(instrument, "help_text", "") or name
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")
                seen_header.add(name)
            if kind == "histogram":
                assert isinstance(instrument, Histogram)
                for bound, cumulative in instrument.bucket_counts():
                    le = "+Inf" if math.isinf(bound) else repr(bound)
                    rendered = _render_labels(labels, 'le="%s"' % le)
                    lines.append(f"{name}_bucket{rendered} {cumulative}")
                lines.append(f"{name}_sum{_render_labels(labels)} {instrument.sum}")
                lines.append(
                    f"{name}_count{_render_labels(labels)} {instrument.count}"
                )
            else:
                try:
                    value = instrument.value  # type: ignore[attr-defined]
                except Exception:  # noqa: BLE001 - a callback must not kill /metrics
                    continue
                lines.append(f"{name}{_render_labels(labels)} {value}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict[str, object]:
        """A plain-dict view of every instrument (the ``/v1/stats`` base)."""
        out: dict[str, object] = {}
        for name, labels, instrument in self._items():
            key = name if not labels else name + _render_labels(labels)
            kind = instrument.kind  # type: ignore[attr-defined]
            if kind == "histogram":
                assert isinstance(instrument, Histogram)
                out[key] = {
                    "count": instrument.count,
                    "sum": instrument.sum,
                    "p50": instrument.percentile(0.50),
                    "p99": instrument.percentile(0.99),
                }
            else:
                try:
                    out[key] = instrument.value  # type: ignore[attr-defined]
                except Exception:  # noqa: BLE001 - scrape-time callback failed
                    out[key] = None
        return out


__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]
