"""The slow-query log: a threshold-triggered ring buffer of bad requests.

When a discovery run's wall clock crosses ``threshold_seconds`` the session
records one :class:`SlowQueryEntry` — the request identity, the executed
plan explanation, per-stage timings, the budget ledger, and the trace id —
into a bounded deque.  The newest entries are served by ``GET /v1/slow``
and the ``repro slowlog`` CLI, so a p99 regression is diagnosable from a
running server without turning full tracing on first.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field


@dataclass
class SlowQueryEntry:
    """One recorded slow query (everything needed to explain it later)."""

    request: str
    engine: str
    seconds: float
    threshold_seconds: float
    trace_id: str | None = None
    recorded_at: float = field(default_factory=time.time)
    stages: dict[str, dict[str, float]] = field(default_factory=dict)
    budget: dict[str, object] = field(default_factory=dict)
    plan: dict[str, object] | None = None

    def as_dict(self) -> dict[str, object]:
        return {
            "request": self.request,
            "engine": self.engine,
            "seconds": self.seconds,
            "threshold_seconds": self.threshold_seconds,
            "trace_id": self.trace_id,
            "recorded_at": self.recorded_at,
            "stages": self.stages,
            "budget": self.budget,
            "plan": self.plan,
        }


class SlowQueryLog:
    """Bounded, thread-safe ring buffer of :class:`SlowQueryEntry`."""

    def __init__(self, capacity: int = 64, threshold_seconds: float = 1.0):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if threshold_seconds < 0:
            raise ValueError(
                f"threshold_seconds must be non-negative, got {threshold_seconds}"
            )
        self.capacity = capacity
        self.threshold_seconds = threshold_seconds
        self._entries: deque[SlowQueryEntry] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.recorded_total = 0

    def should_record(self, seconds: float) -> bool:
        """Whether a run of ``seconds`` crosses the slow threshold."""
        return seconds >= self.threshold_seconds

    def record(self, entry: SlowQueryEntry) -> None:
        """Append ``entry`` (oldest entries fall off past ``capacity``)."""
        with self._lock:
            self._entries.append(entry)
            self.recorded_total += 1

    def entries(self) -> list[dict[str, object]]:
        """Recorded slow queries, newest first, as plain dictionaries."""
        with self._lock:
            snapshot = list(self._entries)
        return [entry.as_dict() for entry in reversed(snapshot)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


__all__ = ["SlowQueryEntry", "SlowQueryLog"]
