"""End-to-end observability: tracing, metrics, structured logs, slow queries.

The subsystem has three legs, tied together by the :class:`Telemetry`
container a :class:`~repro.api.session.DiscoverySession` owns:

* :mod:`repro.telemetry.trace` — request tracing: spans with
  ``trace_id``/``span_id``/``parent_id``, contextvar propagation through
  session → executor → stages, cross-process propagation over the serve
  pool's pipe protocol (v3), and pluggable exporters (JSONL for offline
  tree reconstruction);
* :mod:`repro.telemetry.metrics` — a thread-safe
  :class:`~repro.telemetry.metrics.MetricsRegistry` of counters, gauges,
  and fixed-bucket latency histograms, rendered as Prometheus text by the
  HTTP front end's ``GET /metrics``;
* :mod:`repro.telemetry.logs` / :mod:`repro.telemetry.slowlog` —
  trace-correlated JSON logging and the threshold-triggered
  :class:`~repro.telemetry.slowlog.SlowQueryLog` behind ``GET /v1/slow``
  and ``repro slowlog``.

Telemetry is off by default and engineered to stay out of the hot path
when off: every instrumented branch gates on a module-level "any enabled
tracer?" integer before touching contextvars or clocks (the CI bench guard
holds idle overhead ≤ 2% on ``bench_planner``).
"""

from __future__ import annotations

from pathlib import Path

from .logs import JsonLogFormatter, configure_json_logging
from .metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .slowlog import SlowQueryEntry, SlowQueryLog
from .trace import (
    CollectingExporter,
    InMemoryExporter,
    JsonLinesExporter,
    NullExporter,
    Span,
    SpanExporter,
    TraceContext,
    Tracer,
    current_span,
    current_trace_id,
    read_trace_file,
    span_tree,
    tracing_active,
)


class Telemetry:
    """One request-path observability bundle: tracer + metrics + slow log.

    Sessions default to :meth:`Telemetry.disabled` — a never-sampling
    tracer, an (always live, nearly free) metrics registry, and a slow-query
    log — so callers opt into tracing explicitly via
    :meth:`Telemetry.with_trace_file` or by handing in their own
    :class:`~repro.telemetry.trace.Tracer`.
    """

    def __init__(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        slow_log: SlowQueryLog | None = None,
    ):
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.slow_log = slow_log if slow_log is not None else SlowQueryLog()

    @classmethod
    def disabled(cls) -> "Telemetry":
        """Metrics and slow log live, tracing off (the session default)."""
        return cls()

    @classmethod
    def with_trace_file(
        cls,
        path: str | Path,
        slow_threshold_seconds: float | None = None,
    ) -> "Telemetry":
        """Full telemetry with spans exported as JSONL to ``path``."""
        slow_log = (
            SlowQueryLog(threshold_seconds=slow_threshold_seconds)
            if slow_threshold_seconds is not None
            else SlowQueryLog()
        )
        return cls(tracer=Tracer(JsonLinesExporter(path)), slow_log=slow_log)

    def close(self) -> None:
        """Retire the tracer and flush/close its exporter (idempotent)."""
        self.tracer.close()


__all__ = [
    "CollectingExporter",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "InMemoryExporter",
    "JsonLinesExporter",
    "JsonLogFormatter",
    "MetricsRegistry",
    "NullExporter",
    "SlowQueryEntry",
    "SlowQueryLog",
    "Span",
    "SpanExporter",
    "Telemetry",
    "TraceContext",
    "Tracer",
    "configure_json_logging",
    "current_span",
    "current_trace_id",
    "read_trace_file",
    "span_tree",
    "tracing_active",
]
