"""Structured JSON logging over the stdlib :mod:`logging` machinery.

:class:`JsonLogFormatter` renders every record as one JSON object per line
carrying the message, logger name, level, wall-clock timestamp, and — the
part that makes logs greppable against traces — the ``trace_id``: either
the one attached to the record via ``extra={"trace_id": ...}`` or, failing
that, the trace id of the span currently open in this execution context.

No handler is installed at import time (library rule); the CLI's
``--log-json`` flag and tests call :func:`configure_json_logging`.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO

from .trace import current_trace_id

#: Attributes of a LogRecord that are not user-supplied ``extra`` fields.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonLogFormatter(logging.Formatter):
    """Formats records as single-line JSON with trace correlation."""

    def format(self, record: logging.LogRecord) -> str:
        document: dict[str, object] = {
            "ts": record.created,
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        trace_id = getattr(record, "trace_id", None) or current_trace_id()
        if trace_id:
            document["trace_id"] = trace_id
        if record.exc_info and record.exc_info[0] is not None:
            document["exception"] = self.formatException(record.exc_info)
        for key, value in record.__dict__.items():
            if key not in _RESERVED and key != "trace_id":
                document[key] = value
        return json.dumps(document, sort_keys=True, default=str)


def configure_json_logging(
    stream: IO[str] | None = None,
    level: int = logging.INFO,
    logger_name: str = "repro",
) -> logging.Handler:
    """Install a JSON handler on the ``repro`` logger tree; returns it.

    Idempotent enough for CLI use: an existing handler with a
    :class:`JsonLogFormatter` on the target logger is reused instead of
    stacking duplicates.
    """
    logger = logging.getLogger(logger_name)
    for handler in logger.handlers:
        if isinstance(handler.formatter, JsonLogFormatter):
            logger.setLevel(level)
            return handler
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonLogFormatter())
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler


__all__ = ["JsonLogFormatter", "configure_json_logging"]
