"""A from-scratch JOSIE-style single-column joinable table search engine.

JOSIE (Zhu et al., SIGMOD 2019) finds the top-k *columns* (treated as sets)
with the largest value overlap with a query column, using an inverted index
from values to the sets containing them.  The paper uses JOSIE as the
state-of-the-art single-attribute baseline and adapts it to composite keys in
two ways (SCR-Josie and MCR-Josie, Section 7.1.1).

This module implements the core machinery those adaptations need:

* :class:`JosieIndex` — value -> list of column ids (a column id is a
  ``(table_id, column_index)`` pair), plus per-column set sizes.
* :class:`JosieSearch` — top-k overlap search with the standard optimisations
  of the exact top-k set-overlap family: candidates are accumulated from
  posting lists, and the scan terminates early once the remaining
  (unscanned) query values cannot lift any unseen candidate into the top-k.

The full JOSIE system additionally uses a cost model to interleave posting
list reads and candidate verifications; that refinement changes constants,
not the asymptotics or the result set, and is documented as a simplification
in DESIGN.md.
"""

from __future__ import annotations

import heapq
import time
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..datamodel import MISSING, TableCorpus

#: A column identifier: (table_id, column_index).
ColumnId = tuple[int, int]


@dataclass(frozen=True)
class JosieMatch:
    """One result of a JOSIE top-k search."""

    column: ColumnId
    overlap: int

    @property
    def table_id(self) -> int:
        """The table owning the matching column."""
        return self.column[0]

    @property
    def column_index(self) -> int:
        """The index of the matching column inside its table."""
        return self.column[1]


class JosieIndex:
    """Inverted index from cell values to the columns (sets) containing them."""

    def __init__(self) -> None:
        self._postings: dict[str, list[ColumnId]] = defaultdict(list)
        self._column_sizes: dict[ColumnId, int] = {}
        self.build_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, corpus: TableCorpus) -> "JosieIndex":
        """Build the set index for every column of every corpus table."""
        index = cls()
        started = time.perf_counter()
        for table in corpus:
            for column_index in range(table.num_columns):
                column_id: ColumnId = (table.table_id, column_index)
                distinct = table.distinct_column_values(column_index)
                index._column_sizes[column_id] = len(distinct)
                for value in distinct:
                    index._postings[value].append(column_id)
        index.build_seconds = time.perf_counter() - started
        return index

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._postings)

    def num_posting_items(self) -> int:
        """Total number of (value, column) entries."""
        return sum(len(columns) for columns in self._postings.values())

    def column_size(self, column: ColumnId) -> int:
        """Number of distinct values in a column set."""
        return self._column_sizes.get(column, 0)

    def columns_containing(self, value: str) -> list[ColumnId]:
        """Return the columns whose set contains ``value``."""
        return list(self._postings.get(value, ()))

    def posting_length(self, value: str) -> int:
        """Length of the posting list of ``value``."""
        return len(self._postings.get(value, ()))


class JosieSearch:
    """Exact top-k overlap search over a :class:`JosieIndex`."""

    def __init__(self, index: JosieIndex):
        self.index = index
        #: Number of posting entries read by the last search (instrumentation).
        self.last_posting_reads: int = 0

    def top_k_columns(
        self, query_values: Iterable[str], k: int
    ) -> list[JosieMatch]:
        """Return the ``k`` columns with the largest overlap with the query set.

        Query values are probed in increasing posting-list length (rare values
        first), which lets the search stop as soon as the number of unprobed
        values — an upper bound on the overlap of any column not seen yet —
        cannot beat the current k-th best overlap.
        """
        distinct = [v for v in dict.fromkeys(query_values) if v != MISSING]
        if k <= 0 or not distinct:
            return []
        ordered = sorted(distinct, key=lambda v: (self.index.posting_length(v), v))

        overlaps: dict[ColumnId, int] = defaultdict(int)
        self.last_posting_reads = 0
        kth_best = 0
        for probed, value in enumerate(ordered):
            remaining = len(ordered) - probed
            if len(overlaps) >= k and remaining <= kth_best:
                # No unseen column can reach the current top-k any more, and
                # already-seen columns can only be re-ranked among themselves
                # by the remaining probes; keep probing only if that could
                # still matter for the final ordering.
                candidates_in_flight = [
                    c for c, o in overlaps.items() if o + remaining > kth_best
                ]
                if not candidates_in_flight:
                    break
            for column in self.index.columns_containing(value):
                self.last_posting_reads += 1
                overlaps[column] += 1
            if len(overlaps) >= k:
                kth_best = heapq.nlargest(k, overlaps.values())[-1]

        ranked = sorted(
            overlaps.items(), key=lambda item: (-item[1], item[0])
        )
        return [
            JosieMatch(column=column, overlap=overlap)
            for column, overlap in ranked[:k]
            if overlap > 0
        ]

    def top_k_tables(
        self, query_values: Sequence[str], k: int
    ) -> list[tuple[int, int]]:
        """Return top-k (table_id, overlap) pairs, keeping each table's best column."""
        matches = self.top_k_columns(query_values, k=max(k * 4, k))
        best_per_table: dict[int, int] = {}
        for match in matches:
            current = best_per_table.get(match.table_id, 0)
            if match.overlap > current:
                best_per_table[match.table_id] = match.overlap
        ranked = sorted(best_per_table.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]
