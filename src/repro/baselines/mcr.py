"""Multi-Column Retrieval (MCR) baseline (Section 7.1.1).

MCR probes the single-attribute inverted index once *per query key column*,
intersects the retrieved (table, row) hits across columns, and verifies the
surviving rows exactly.  It avoids false-positive rows better than a naive
single-column fetch but pays for it by fetching far more posting-list items —
which is exactly why it loses badly on large, web-table-like corpora
(Figure 4).
"""

from __future__ import annotations

import time
from collections import defaultdict

from ..config import MateConfig
from ..core.joinability import joinability_from_matches, row_contains_key
from ..core.results import DiscoveryResult
from ..core.topk import TopKHeap
from ..datamodel import MISSING, QueryTable, TableCorpus
from ..exceptions import DiscoveryError
from ..index import InvertedIndex
from ..metrics import DiscoveryCounters


class McrDiscovery:
    """MCR: per-column index probes intersected at the row level."""

    system_name = "mcr"

    def __init__(
        self,
        corpus: TableCorpus,
        index: InvertedIndex,
        config: MateConfig | None = None,
    ):
        self.corpus = corpus
        self.index = index
        self.config = config or MateConfig()

    def discover(self, query: QueryTable, k: int | None = None) -> DiscoveryResult:
        """Return the top-k joinable tables for ``query`` using MCR."""
        if k is None:
            k = self.config.k
        if k <= 0:
            raise DiscoveryError(f"k must be positive, got {k}")
        counters = DiscoveryCounters()
        started = time.perf_counter()

        # ---------------- Per-column fetches ----------------
        # rows_by_column[i] maps (table, row) to the set of query values of
        # key column i that hit that row.
        rows_by_column: list[dict[tuple[int, int], set[str]]] = []
        for column in query.key_columns:
            values = sorted(query.table.distinct_column_values(column))
            hits: dict[tuple[int, int], set[str]] = defaultdict(set)
            fetched = self.index.fetch(values)
            counters.pl_items_fetched += len(fetched)
            counters.extra[f"pl_items[{column}]"] = float(len(fetched))
            for item in fetched:
                hits[item.location()].add(item.value)
            rows_by_column.append(dict(hits))

        # ---------------- Row-level intersection ----------------
        common_rows = set(rows_by_column[0])
        for hits in rows_by_column[1:]:
            common_rows &= set(hits)
        counters.candidate_tables = len({table_id for table_id, _ in common_rows})
        counters.rows_checked = len(common_rows)

        # ---------------- Exact verification per table ----------------
        key_tuples = sorted(query.key_tuples())
        key_tuples = [
            key for key in key_tuples if all(value != MISSING for value in key)
        ]
        rows_per_table: dict[int, list[int]] = defaultdict(list)
        for table_id, row_index in sorted(common_rows):
            rows_per_table[table_id].append(row_index)

        topk = TopKHeap(k)
        mappings: dict[int, tuple[int, ...] | None] = {}
        for table_id, row_indexes in rows_per_table.items():
            verified: list[tuple[tuple[str, ...], tuple[str, ...]]] = []
            table_tp = 0
            table_fp = 0
            for row_index in row_indexes:
                row = self.corpus.get_row(table_id, row_index)
                matched_any = False
                for key_tuple in key_tuples:
                    counters.value_comparisons += len(row) * len(key_tuple)
                    if row_contains_key(row, key_tuple):
                        verified.append((row, key_tuple))
                        matched_any = True
                if matched_any:
                    table_tp += 1
                else:
                    table_fp += 1
            counters.rows_passed_filter += len(row_indexes)
            counters.true_positive_rows += table_tp
            counters.false_positive_rows += table_fp
            counters.tables_evaluated += 1
            joinability, mapping = joinability_from_matches(verified)
            if topk.update(table_id, joinability):
                mappings[table_id] = mapping

        counters.runtime_seconds = time.perf_counter() - started
        names = {
            table_id: self.corpus.get_table(table_id).name
            for table_id, _ in topk.result_tuples()
        }
        return DiscoveryResult.from_ranked(
            system=self.system_name,
            k=k,
            ranked=topk.results(),
            counters=counters,
            mappings=mappings,
            names=names,
        )
