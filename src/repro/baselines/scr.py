"""Single-Column Retrieval (SCR) baseline (Section 7.1.1).

SCR is MATE without the super key: it keeps every other optimisation of
Algorithm 1 (initial-column selection, candidate ordering, both table-level
pruning rules) but cannot prune rows cheaply — every fetched candidate row has
to be verified through exact value comparisons in memory.

Implementation-wise this is the core engine with the row filter switched to
``"none"``; the class exists so experiments and users can refer to the
baseline by name and so its result objects carry the right ``system`` label.
"""

from __future__ import annotations

from ..config import MateConfig
from ..core.column_selection import ColumnSelector
from ..core.discovery import MateDiscovery
from ..datamodel import TableCorpus
from ..index import InvertedIndex


class ScrDiscovery(MateDiscovery):
    """SCR: Algorithm 1 with exact row verification instead of the super key."""

    system_name = "scr"

    def __init__(
        self,
        corpus: TableCorpus,
        index: InvertedIndex,
        config: MateConfig | None = None,
        column_selector: ColumnSelector | str = "cardinality",
        use_table_filters: bool = True,
        sketch_provider=None,
    ):
        super().__init__(
            corpus=corpus,
            index=index,
            config=config,
            hash_function_name=index.hash_function_name,
            column_selector=column_selector,
            row_filter_mode="none",
            use_table_filters=use_table_filters,
            sketch_provider=sketch_provider,
        )
