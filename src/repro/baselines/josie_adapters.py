"""JOSIE-based baselines for n-ary join discovery (Section 7.1.1).

JOSIE is a *single-column* joinable table search engine; the paper adapts it
to composite keys in two ways, both reproduced here on top of the
from-scratch :class:`~repro.baselines.josie.JosieSearch`:

* **SCR-Josie** — run JOSIE on the initial query column to rank candidate
  tables by single-column overlap, then verify the full composite key on each
  candidate (falling back on the row-level SCR index, i.e. exact value
  comparisons).  Because the single-column overlap upper-bounds the composite
  joinability, the scan stops once the next candidate's overlap cannot beat
  the current k-th best.
* **MCR-Josie** — run JOSIE once per query key column, intersect the table
  sets that appear in every per-column result, and verify those tables.
"""

from __future__ import annotations

import time

from ..config import MateConfig
from ..core.column_selection import ColumnSelector, get_column_selector
from ..core.joinability import joinability_from_matches, row_contains_key
from ..core.results import DiscoveryResult
from ..core.topk import TopKHeap
from ..datamodel import QueryTable, TableCorpus
from ..exceptions import DiscoveryError
from ..metrics import DiscoveryCounters
from .josie import JosieIndex, JosieSearch


class _JosieBase:
    """Shared plumbing of the two JOSIE adaptations."""

    system_name = "josie"

    def __init__(
        self,
        corpus: TableCorpus,
        josie_index: JosieIndex | None = None,
        config: MateConfig | None = None,
        #: How many JOSIE candidates to consider per probe, as a multiple of k.
        candidate_factor: int = 10,
    ):
        self.corpus = corpus
        self.config = config or MateConfig()
        self.josie_index = josie_index or JosieIndex.build(corpus)
        self.search = JosieSearch(self.josie_index)
        if candidate_factor <= 0:
            raise DiscoveryError("candidate_factor must be positive")
        self.candidate_factor = candidate_factor

    def _verify_tables(
        self,
        query: QueryTable,
        table_ids: list[int],
        k: int,
        counters: DiscoveryCounters,
    ) -> tuple[TopKHeap, dict[int, tuple[int, ...] | None]]:
        """Exactly verify candidate tables (in the given order) against the key.

        The JOSIE overlap of a single column counts *distinct values*, which
        does not upper-bound the composite joinability (distinct key tuples),
        so — unlike MATE's table filter — no early termination is sound here;
        every retrieved candidate is verified.  This is exactly the overhead
        the paper attributes to adapting single-column systems to n-ary keys.
        Verification matches rows in memory (like the SCR fallback the paper
        describes) instead of enumerating column permutations.
        """
        key_tuples = sorted(query.key_tuples())
        topk = TopKHeap(k)
        mappings: dict[int, tuple[int, ...] | None] = {}
        for table_id in table_ids:
            table = self.corpus.get_table(table_id)
            counters.tables_evaluated += 1
            counters.rows_checked += table.num_rows

            # Rows that contain the first value of a key tuple are the only
            # candidates for that tuple; index them once per table.
            rows_by_value: dict[str, list[int]] = {}
            for row_index, row in enumerate(table.rows):
                for value in set(row):
                    rows_by_value.setdefault(value, []).append(row_index)

            verified: list[tuple[tuple[str, ...], tuple[str, ...]]] = []
            matched_rows: set[int] = set()
            candidate_rows: set[int] = set()
            for key_tuple in key_tuples:
                for row_index in rows_by_value.get(key_tuple[0], ()):
                    row = table.rows[row_index]
                    candidate_rows.add(row_index)
                    counters.value_comparisons += len(row) * len(key_tuple)
                    if row_contains_key(row, key_tuple):
                        verified.append((tuple(row), key_tuple))
                        matched_rows.add(row_index)

            joinability, mapping = joinability_from_matches(verified)
            counters.rows_passed_filter += len(candidate_rows)
            counters.true_positive_rows += len(matched_rows)
            counters.false_positive_rows += len(candidate_rows - matched_rows)
            if topk.update(table_id, joinability):
                mappings[table_id] = mapping
        return topk, mappings

    def _result(
        self,
        query: QueryTable,
        k: int,
        topk: TopKHeap,
        mappings: dict[int, tuple[int, ...] | None],
        counters: DiscoveryCounters,
    ) -> DiscoveryResult:
        names = {
            table_id: self.corpus.get_table(table_id).name
            for table_id, _ in topk.result_tuples()
        }
        return DiscoveryResult.from_ranked(
            system=self.system_name,
            k=k,
            ranked=topk.results(),
            counters=counters,
            mappings=mappings,
            names=names,
        )


class ScrJosieDiscovery(_JosieBase):
    """SCR-Josie: JOSIE on the initial column, exact verification on top."""

    system_name = "scr_josie"

    def __init__(
        self,
        corpus: TableCorpus,
        josie_index: JosieIndex | None = None,
        config: MateConfig | None = None,
        column_selector: ColumnSelector | str = "cardinality",
        candidate_factor: int = 10,
    ):
        super().__init__(corpus, josie_index, config, candidate_factor)
        self.column_selector = (
            get_column_selector(column_selector)
            if isinstance(column_selector, str)
            else column_selector
        )

    def discover(self, query: QueryTable, k: int | None = None) -> DiscoveryResult:
        """Return the top-k joinable tables using the SCR-Josie strategy."""
        if k is None:
            k = self.config.k
        if k <= 0:
            raise DiscoveryError(f"k must be positive, got {k}")
        counters = DiscoveryCounters()
        started = time.perf_counter()

        initial_column = self.column_selector(query, None)
        values = sorted(query.table.distinct_column_values(initial_column))
        ranked_tables = self.search.top_k_tables(values, k=k * self.candidate_factor)
        counters.pl_items_fetched = self.search.last_posting_reads
        counters.candidate_tables = len(ranked_tables)

        table_ids = [table_id for table_id, _ in ranked_tables]
        topk, mappings = self._verify_tables(query, table_ids, k, counters)
        counters.runtime_seconds = time.perf_counter() - started
        return self._result(query, k, topk, mappings, counters)


class McrJosieDiscovery(_JosieBase):
    """MCR-Josie: JOSIE per key column, intersect, then verify."""

    system_name = "mcr_josie"

    def discover(self, query: QueryTable, k: int | None = None) -> DiscoveryResult:
        """Return the top-k joinable tables using the MCR-Josie strategy."""
        if k is None:
            k = self.config.k
        if k <= 0:
            raise DiscoveryError(f"k must be positive, got {k}")
        counters = DiscoveryCounters()
        started = time.perf_counter()

        per_column_tables: list[dict[int, int]] = []
        for column in query.key_columns:
            values = sorted(query.table.distinct_column_values(column))
            ranked = self.search.top_k_tables(values, k=k * self.candidate_factor)
            counters.pl_items_fetched += self.search.last_posting_reads
            counters.extra[f"josie_candidates[{column}]"] = float(len(ranked))
            per_column_tables.append(dict(ranked))

        common = set(per_column_tables[0])
        for tables in per_column_tables[1:]:
            common &= set(tables)
        counters.candidate_tables = len(common)

        # Order the surviving tables by the *minimum* per-column overlap — a
        # reasonable priority heuristic (all columns must overlap for a
        # composite join), evaluated exhaustively below.
        bounds = {
            table_id: min(tables[table_id] for tables in per_column_tables)
            for table_id in common
        }
        ordered = sorted(common, key=lambda table_id: (-bounds[table_id], table_id))
        topk, mappings = self._verify_tables(query, ordered, k, counters)
        counters.runtime_seconds = time.perf_counter() - started
        return self._result(query, k, topk, mappings, counters)
