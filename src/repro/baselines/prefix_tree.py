"""Prefix-tree (trie) baseline for multi-attribute joinability (related work).

The paper's related-work section discusses Li et al.'s prefix-tree index for
multi-attribute similarity joins [24] and points out its two limitations for
data-lake discovery: it assumes the one-to-one mapping between the composite
key columns and the candidate columns is known apriori, and it does not scale
to corpora where that mapping has to be guessed.  This module implements that
style of index faithfully so the limitation can be measured rather than
asserted:

* :class:`TablePrefixTree` — a trie over a table's rows, one level per
  column.  With a *known* mapping it answers "does any row contain this key
  combination at these columns?" by a constrained descent; columns that are
  not part of the mapping act as wildcards (the descent branches).
* :class:`PrefixTreeDiscovery` — top-k n-ary join discovery built on those
  tries.  Because no mapping is known, it enumerates all ``P(|T'|, |Q|)``
  ordered column mappings per candidate table (Eq. 3 of the paper) and takes
  the best — exactly the factorial behaviour MATE's super key avoids.

The discovery class exists as a measurable related-work baseline, not as a
recommended engine; the ``related_work`` experiment compares it against MATE
on small workloads and reports how the mapping enumeration explodes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import permutations
from typing import Sequence

from ..config import MateConfig
from ..core.results import DiscoveryResult
from ..core.topk import TopKHeap
from ..datamodel import MISSING, QueryTable, Table, TableCorpus
from ..exceptions import DiscoveryError
from ..metrics import DiscoveryCounters


@dataclass
class _TrieNode:
    """One trie level: children keyed by the cell value of that column."""

    children: dict[str, "_TrieNode"] = field(default_factory=dict)

    def child(self, value: str) -> "_TrieNode | None":
        return self.children.get(value)


class TablePrefixTree:
    """A trie over a table's rows (one level per column, in table order)."""

    def __init__(self, table: Table):
        self.table_id = table.table_id
        self.num_columns = table.num_columns
        self.num_rows = table.num_rows
        self.root = _TrieNode()
        self._node_count = 1
        for row in table.rows:
            self._insert(row)

    def _insert(self, row: Sequence[str]) -> None:
        node = self.root
        for value in row:
            child = node.children.get(value)
            if child is None:
                child = _TrieNode()
                node.children[value] = child
                self._node_count += 1
            node = child

    @property
    def node_count(self) -> int:
        """Number of trie nodes (a proxy for the index's memory footprint)."""
        return self._node_count

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def contains(
        self, assignment: dict[int, str], counters: DiscoveryCounters | None = None
    ) -> bool:
        """Whether any row matches ``assignment`` (column index -> value).

        Columns absent from the assignment are wildcards: the descent branches
        over every child at that level.  ``counters.value_comparisons`` is
        incremented per visited node so experiments can report the probe cost.
        """
        for column_index in assignment:
            if not 0 <= column_index < self.num_columns:
                raise DiscoveryError(
                    f"column index {column_index} out of range for table "
                    f"{self.table_id} ({self.num_columns} columns)"
                )
        return self._descend(self.root, 0, assignment, counters)

    def _descend(
        self,
        node: _TrieNode,
        level: int,
        assignment: dict[int, str],
        counters: DiscoveryCounters | None,
    ) -> bool:
        if level == self.num_columns:
            return True
        if counters is not None:
            counters.value_comparisons += 1
        constrained = assignment.get(level)
        if constrained is not None:
            child = node.child(constrained)
            if child is None:
                return False
            return self._descend(child, level + 1, assignment, counters)
        return any(
            self._descend(child, level + 1, assignment, counters)
            for child in node.children.values()
        )

    def joinability_with_mapping(
        self,
        key_tuples: Sequence[tuple[str, ...]],
        mapping: Sequence[int],
        counters: DiscoveryCounters | None = None,
    ) -> int:
        """Joinability under a *known* column mapping (Li et al.'s setting).

        ``mapping[i]`` is the candidate column holding the ``i``-th key
        component; the score is the number of distinct key tuples present.
        """
        if len(set(mapping)) != len(mapping):
            raise DiscoveryError(f"mapping must not repeat columns: {mapping}")
        score = 0
        for key_tuple in key_tuples:
            assignment = {
                column_index: value
                for column_index, value in zip(mapping, key_tuple)
            }
            if self.contains(assignment, counters):
                score += 1
        return score


class PrefixTreeDiscovery:
    """Top-k n-ary join discovery over per-table prefix trees.

    The engine mirrors the public interface of the other baselines
    (``discover(query, k) -> DiscoveryResult``) so the experiment harness can
    treat it uniformly.  It builds one trie per corpus table up front (its
    offline phase) and, online, enumerates every ordered column mapping per
    table — the factorial cost of Eq. 3.

    ``max_candidate_columns`` guards against tables whose column count makes
    the enumeration intractable; such tables are skipped and counted in
    ``counters.extra["tables_skipped_too_wide"]`` (a limitation of the
    baseline itself, not of the harness).
    """

    system_name = "prefix-tree"

    def __init__(
        self,
        corpus: TableCorpus,
        config: MateConfig | None = None,
        max_candidate_columns: int = 12,
    ):
        if max_candidate_columns < 1:
            raise DiscoveryError(
                f"max_candidate_columns must be positive, got {max_candidate_columns}"
            )
        self.corpus = corpus
        self.config = config or MateConfig()
        self.max_candidate_columns = max_candidate_columns
        self.trees: dict[int, TablePrefixTree] = {
            table.table_id: TablePrefixTree(table) for table in corpus
        }

    def total_nodes(self) -> int:
        """Total trie nodes across the corpus (index footprint proxy)."""
        return sum(tree.node_count for tree in self.trees.values())

    def discover(self, query: QueryTable, k: int | None = None) -> DiscoveryResult:
        """Return the top-k joinable tables (same result type as MATE)."""
        if k is None:
            k = self.config.k
        if k <= 0:
            raise DiscoveryError(f"k must be positive, got {k}")
        counters = DiscoveryCounters()
        started = time.perf_counter()

        key_tuples = [
            key_tuple
            for key_tuple in sorted(query.key_tuples())
            if all(value != MISSING for value in key_tuple)
        ]
        key_size = query.key_size

        topk = TopKHeap(k)
        mappings: dict[int, tuple[int, ...] | None] = {}
        skipped_too_wide = 0
        mappings_evaluated = 0

        for table_id in sorted(self.trees):
            tree = self.trees[table_id]
            if tree.num_columns < key_size:
                continue
            if tree.num_columns > self.max_candidate_columns:
                skipped_too_wide += 1
                continue
            counters.tables_evaluated += 1
            best_score = 0
            best_mapping: tuple[int, ...] | None = None
            for mapping in permutations(range(tree.num_columns), key_size):
                mappings_evaluated += 1
                score = tree.joinability_with_mapping(key_tuples, mapping, counters)
                if score > best_score:
                    best_score = score
                    best_mapping = mapping
            if topk.update(table_id, best_score):
                mappings[table_id] = best_mapping

        counters.runtime_seconds = time.perf_counter() - started
        counters.extra["mappings_evaluated"] = float(mappings_evaluated)
        counters.extra["tables_skipped_too_wide"] = float(skipped_too_wide)
        names = {
            table_id: self.corpus.get_table(table_id).name
            for table_id, _ in topk.result_tuples()
        }
        return DiscoveryResult.from_ranked(
            system=self.system_name,
            k=k,
            ranked=topk.results(),
            counters=counters,
            mappings=mappings,
            names=names,
        )
