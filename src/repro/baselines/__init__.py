"""Baseline systems: SCR, MCR, the JOSIE-based adaptations, and the
prefix-tree (Li et al.) related-work baseline."""

from .josie import ColumnId, JosieIndex, JosieMatch, JosieSearch
from .josie_adapters import McrJosieDiscovery, ScrJosieDiscovery
from .mcr import McrDiscovery
from .prefix_tree import PrefixTreeDiscovery, TablePrefixTree
from .scr import ScrDiscovery

__all__ = [
    "ColumnId",
    "JosieIndex",
    "JosieMatch",
    "JosieSearch",
    "McrDiscovery",
    "McrJosieDiscovery",
    "PrefixTreeDiscovery",
    "ScrDiscovery",
    "ScrJosieDiscovery",
    "TablePrefixTree",
]
