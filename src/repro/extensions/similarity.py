"""Similarity-join discovery (the future-work direction of Section 9).

The paper's conclusion observes that "because XASH uses syntactic features
including the character and length features of the cell values, it has the
potential to discover similarity joins as well" — its false positives are
precisely the values that are syntactically close to the query key (the
<"brooklyn", "cambridge"> vs <"brooklyn", "bay ridge"> example).  This module
turns that observation into a working extension:

* :func:`xash_similarity` — a cheap similarity proxy between two values
  computed purely from their XASH hashes (Jaccard overlap of the set bits,
  split into the character region and the length segment);
* :class:`SimilarityJoinDiscovery` — top-k *similarity-joinable* table
  discovery: instead of requiring every key value to match exactly, a
  candidate row counts when each key value has a candidate cell within a
  configurable edit-distance budget.  Super keys are used as a prefilter: a
  row whose super key shares too few bits with the query key's hash cannot
  contain similar values and is skipped before any edit-distance computation.

At scale the edit-distance verification dominates, so the class optionally
runs behind the approximate candidate tier of :mod:`repro.sketch`: with a
:class:`~repro.sketch.SketchIndex` and enabled
:class:`~repro.sketch.SketchOptions`, every query key column is probed
against the banded MinHash-LSH store first and only tables whose best
column containment clears the threshold enter the exact pipeline —
typically shrinking the verified row set by an order of magnitude on
skewed corpora.

This remains an *extension*: nothing in the paper's evaluation depends on it,
but it showcases how the same index supports fuzzy discovery, and the
``beyond_joins`` example exercises it end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..config import MateConfig
from ..datamodel import MISSING, QueryTable, TableCorpus
from ..exceptions import DiscoveryError
from ..hashing import SuperKeyGenerator, popcount
from ..index import InvertedIndex
from ..metrics import DiscoveryCounters
from ..sketch import DEFAULT_SKETCH_OPTIONS, SketchIndex, SketchOptions


def levenshtein_distance(first: str, second: str, upper_bound: int | None = None) -> int:
    """Classic Levenshtein edit distance with an optional early-exit bound.

    When ``upper_bound`` is given and the true distance exceeds it, any value
    strictly greater than ``upper_bound`` may be returned (the caller only
    checks ``<= upper_bound``), which keeps the common reject case cheap.
    """
    if first == second:
        return 0
    if not first:
        return len(second)
    if not second:
        return len(first)
    if upper_bound is not None and abs(len(first) - len(second)) > upper_bound:
        return upper_bound + 1

    previous = list(range(len(second) + 1))
    for row_index, first_char in enumerate(first, start=1):
        current = [row_index]
        best_in_row = row_index
        for column_index, second_char in enumerate(second, start=1):
            cost = 0 if first_char == second_char else 1
            value = min(
                previous[column_index] + 1,
                current[column_index - 1] + 1,
                previous[column_index - 1] + cost,
            )
            current.append(value)
            if value < best_in_row:
                best_in_row = value
        if upper_bound is not None and best_in_row > upper_bound:
            return upper_bound + 1
        previous = current
    return previous[-1]


def xash_similarity(
    first: str, second: str, generator: SuperKeyGenerator
) -> float:
    """Similarity proxy in [0, 1] from the Jaccard overlap of XASH bits.

    Two identical values always score 1.0; values sharing neither rare
    characters nor length score 0.0.  The proxy is *not* an edit-distance
    substitute — it is the cheap signal the prefilter uses before paying for
    the exact distance.
    """
    if first == second:
        return 1.0
    first_hash = generator.value_hash(first)
    second_hash = generator.value_hash(second)
    union = popcount(first_hash | second_hash)
    if union == 0:
        return 0.0
    return popcount(first_hash & second_hash) / union


@dataclass(frozen=True)
class SimilarRowMatch:
    """One candidate row that matched the query key approximately."""

    table_id: int
    row_index: int
    key_tuple: tuple[str, ...]
    matched_values: tuple[str, ...]
    total_distance: int


@dataclass(frozen=True)
class SimilarityTableResult:
    """One table ranked by its number of similarity-joinable key tuples."""

    table_id: int
    similarity_joinability: int
    exact_joinability: int
    matches: tuple[SimilarRowMatch, ...]

    def as_dict(self) -> dict[str, object]:
        """Return the result as a plain dictionary (for reporting)."""
        return {
            "table_id": self.table_id,
            "similarity_joinability": self.similarity_joinability,
            "exact_joinability": self.exact_joinability,
            "matches": len(self.matches),
        }


class SimilarityJoinDiscovery:
    """Top-k similarity-join discovery on top of the MATE index.

    Parameters
    ----------
    max_distance:
        Edit-distance budget *per key value* (1 tolerates a single typo).
    min_bit_overlap:
        Prefilter threshold: the fraction of the query key's super-key bits
        that must be present in a candidate row's super key for the row to be
        verified at all.  1.0 degenerates to the exact-join subsumption check;
        lower values admit progressively fuzzier candidates.
    sketch_index / sketch_options:
        Optional approximate candidate tier: with a
        :class:`~repro.sketch.SketchIndex` over the corpus and *enabled*
        options (``threshold > 0`` or ``max_candidates``), each query key
        column is LSH-probed first and only tables passing the containment
        threshold are fetched and verified.  Disabled (the defaults) the
        behaviour is exhaustive and unchanged.
    """

    def __init__(
        self,
        corpus: TableCorpus,
        index: InvertedIndex,
        config: MateConfig | None = None,
        max_distance: int = 1,
        min_bit_overlap: float = 0.6,
        sketch_index: SketchIndex | None = None,
        sketch_options: SketchOptions | None = None,
    ):
        if max_distance < 0:
            raise DiscoveryError(f"max_distance must be >= 0, got {max_distance}")
        if not 0.0 < min_bit_overlap <= 1.0:
            raise DiscoveryError(
                f"min_bit_overlap must be in (0, 1], got {min_bit_overlap}"
            )
        self.corpus = corpus
        self.index = index
        self.config = config or MateConfig()
        self.max_distance = max_distance
        self.min_bit_overlap = min_bit_overlap
        self.sketch_index = sketch_index
        self.sketch_options = sketch_options or DEFAULT_SKETCH_OPTIONS
        self.generator = SuperKeyGenerator.from_name(
            index.hash_function_name, self.config
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def discover(
        self, query: QueryTable, k: int = 10, counters: DiscoveryCounters | None = None
    ) -> list[SimilarityTableResult]:
        """Return the top-k tables by similarity joinability.

        A key tuple counts as similarity-joinable with a candidate row when
        every key value matches a *distinct* cell of the row within the edit
        distance budget; the per-table score is the number of distinct key
        tuples with at least one such row (the fuzzy analogue of Eq. 2).
        """
        if k <= 0:
            raise DiscoveryError(f"k must be positive, got {k}")
        counters = counters if counters is not None else DiscoveryCounters()

        key_tuples = [
            key_tuple
            for key_tuple in sorted(query.key_tuples())
            if all(value != MISSING for value in key_tuple)
        ]
        if not key_tuples:
            return []
        key_super_keys = {
            key_tuple: self.generator.key_super_key(key_tuple)
            for key_tuple in key_tuples
        }

        candidate_rows = self._candidate_rows(key_tuples, counters)

        per_table_tuples: dict[int, set[tuple[str, ...]]] = {}
        per_table_exact: dict[int, set[tuple[str, ...]]] = {}
        per_table_matches: dict[int, list[SimilarRowMatch]] = {}
        for table_id, row_index in sorted(candidate_rows):
            row = self.corpus.get_row(table_id, row_index)
            row_super_key = self.index.super_key(table_id, row_index)
            for key_tuple in key_tuples:
                if not self._passes_prefilter(
                    row_super_key, key_super_keys[key_tuple], counters
                ):
                    continue
                counters.rows_checked += 1
                match = self._match_row(table_id, row_index, row, key_tuple, counters)
                if match is None:
                    continue
                per_table_tuples.setdefault(table_id, set()).add(key_tuple)
                per_table_matches.setdefault(table_id, []).append(match)
                if match.total_distance == 0:
                    per_table_exact.setdefault(table_id, set()).add(key_tuple)

        results = [
            SimilarityTableResult(
                table_id=table_id,
                similarity_joinability=len(tuples),
                exact_joinability=len(per_table_exact.get(table_id, ())),
                matches=tuple(per_table_matches.get(table_id, ())),
            )
            for table_id, tuples in per_table_tuples.items()
        ]
        results.sort(
            key=lambda r: (-r.similarity_joinability, -r.exact_joinability, r.table_id)
        )
        return results[:k]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _candidate_rows(
        self, key_tuples: Sequence[tuple[str, ...]], counters: DiscoveryCounters
    ) -> set[tuple[int, int]]:
        """Rows worth looking at: any row containing any exact key value.

        Exact posting-list probes seed the candidate set; within those rows
        the per-value matching then tolerates edit distance.  (Rows where
        *every* key value is misspelled are out of reach of the inverted
        index — the same trade-off JOSIE-style systems make.)
        """
        rows: set[tuple[int, int]] = set()
        probe_values = {value for key_tuple in key_tuples for value in key_tuple}
        allowed = self._sketch_allowed_tables(key_tuples, counters)
        for item in self.index.fetch(sorted(probe_values)):
            if allowed is not None and item.table_id not in allowed:
                continue
            rows.add(item.location())
        counters.pl_items_fetched += len(rows)
        return rows

    def _sketch_allowed_tables(
        self, key_tuples: Sequence[tuple[str, ...]], counters: DiscoveryCounters
    ) -> set[int] | None:
        """LSH-prune the table universe (``None`` = exhaustive, no pruning).

        Each key column's value set is probed separately and the allowed
        sets are unioned: a table similar to *any* key column survives, so
        the prune can only drop tables no column of which resembles any
        part of the key — exactly the tables the edit-distance verification
        would reject anyway (modulo MinHash noise at the threshold).
        """
        if self.sketch_index is None or not self.sketch_options.enabled:
            return None
        allowed: set[int] = set()
        key_width = len(key_tuples[0])
        for position in range(key_width):
            values = {key_tuple[position] for key_tuple in key_tuples}
            scored = self.sketch_index.query(
                values,
                threshold=self.sketch_options.threshold,
                max_candidates=self.sketch_options.max_candidates,
            )
            allowed.update(table_id for table_id, _ in scored)
        counters.extra["sketch_candidates"] = float(len(allowed))
        counters.extra["sketch_estimated_recall"] = (
            self.sketch_index.estimated_recall(self.sketch_options.threshold)
        )
        return allowed

    def _passes_prefilter(
        self, row_super_key: int, key_super_key: int, counters: DiscoveryCounters
    ) -> bool:
        """Bit-overlap prefilter between a row super key and a key hash."""
        counters.superkey_checks += 1
        key_bits = popcount(key_super_key)
        if key_bits == 0:
            return False
        shared = popcount(row_super_key & key_super_key)
        return shared / key_bits >= self.min_bit_overlap

    def _match_row(
        self,
        table_id: int,
        row_index: int,
        row: Sequence[str],
        key_tuple: tuple[str, ...],
        counters: DiscoveryCounters,
    ) -> SimilarRowMatch | None:
        """Greedy assignment of key values to distinct row cells within budget."""
        used: set[int] = set()
        matched: list[str] = []
        total_distance = 0
        for value in key_tuple:
            best_column: int | None = None
            best_distance = self.max_distance + 1
            for column_index, cell in enumerate(row):
                if column_index in used or cell == MISSING:
                    continue
                counters.value_comparisons += 1
                distance = levenshtein_distance(
                    value, cell, upper_bound=self.max_distance
                )
                if distance < best_distance:
                    best_distance = distance
                    best_column = column_index
                    if distance == 0:
                        break
            if best_column is None or best_distance > self.max_distance:
                counters.false_positive_rows += 1
                return None
            used.add(best_column)
            matched.append(row[best_column])
            total_distance += best_distance
        counters.true_positive_rows += 1
        return SimilarRowMatch(
            table_id=table_id,
            row_index=row_index,
            key_tuple=key_tuple,
            matched_values=tuple(matched),
            total_distance=total_distance,
        )
