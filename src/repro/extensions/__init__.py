"""Extensions beyond the paper's core experiments.

The paper's introduction sketches two further applications of the super-key
machinery — duplicate table detection and table union search — and Section 9
lists similarity joins as future work; Section 1 also motivates the need for
composite keys that are undocumented in the corpus.  The modules here
implement all four so downstream users can build on them; they are clearly
separated from the reproduction of the paper's own evaluation:

* :mod:`repro.extensions.duplicates`     — duplicate rows / tables,
* :mod:`repro.extensions.union_search`   — table union search,
* :mod:`repro.extensions.similarity`     — similarity (fuzzy) joins,
* :mod:`repro.extensions.key_discovery`  — composite-key (UCC) suggestions.
"""

from .duplicates import (
    DuplicateRowPair,
    DuplicateTableResult,
    find_duplicate_rows,
    find_duplicate_tables,
)
from .key_discovery import (
    KeyCandidate,
    discover_key_candidates,
    evaluate_combination,
    rank_key_candidates,
    suggest_query,
)
from .similarity import (
    SimilarityJoinDiscovery,
    SimilarityTableResult,
    SimilarRowMatch,
    levenshtein_distance,
    xash_similarity,
)
from .union_search import UnionCandidate, UnionSearch

__all__ = [
    "DuplicateRowPair",
    "DuplicateTableResult",
    "KeyCandidate",
    "SimilarRowMatch",
    "SimilarityJoinDiscovery",
    "SimilarityTableResult",
    "UnionCandidate",
    "UnionSearch",
    "discover_key_candidates",
    "evaluate_combination",
    "find_duplicate_rows",
    "find_duplicate_tables",
    "levenshtein_distance",
    "rank_key_candidates",
    "suggest_query",
    "xash_similarity",
]
