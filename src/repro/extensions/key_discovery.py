"""Composite-key candidate discovery (unique column combinations).

The paper's introduction motivates n-ary join discovery with the observation
that composite keys are prevalent but *undocumented*: "In open data lakes
primary key information and other metadata are generally not known", and
enumerating all unique column combinations (UCCs) up front is exponentially
expensive (Section 1 cites 168M UCCs in TPC-E/TPC-H).  MATE therefore leaves
the choice of the query's composite key to the user.

This extension closes that gap for the *query table*: given a table, it
discovers the minimal unique column combinations up to a bounded arity and
ranks them as composite-key suggestions.  The search is a level-wise lattice
walk in the style of inclusion-dependency/UCC discovery (De Marchi et al.,
Papenbrock et al. — references [9, 33] of the paper), restricted to the query
table, which is small by definition, so the exponential worst case is never
an issue in practice:

* level 1: single columns; unique ones are minimal UCCs,
* level ``n``: combinations of non-unique (n-1)-combinations, pruned by the
  apriori rule (any superset of a UCC is skipped) and by an upper bound on
  the achievable distinct count.

Suggestions are ranked to prefer small keys built from join-friendly columns
(text/code/date, not floating-point measures), mirroring
:func:`repro.lake.type_inference.keyable_columns`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..datamodel import MISSING, QueryTable, Table
from ..exceptions import DataModelError
from ..lake.type_inference import ColumnType, infer_column_type


@dataclass(frozen=True)
class KeyCandidate:
    """One discovered composite-key candidate."""

    columns: tuple[str, ...]
    #: Number of distinct (non-missing) value combinations.
    distinct_combinations: int
    #: Number of rows with no missing value in the candidate columns.
    covered_rows: int
    #: ``distinct_combinations / covered_rows`` (1.0 = unique combination).
    uniqueness: float
    #: Whether the combination is unique over the covered rows.
    is_unique: bool
    #: Whether the combination is a *minimal* UCC (no proper subset is unique).
    is_minimal: bool

    @property
    def arity(self) -> int:
        """Number of columns in the candidate."""
        return len(self.columns)

    def as_dict(self) -> dict[str, object]:
        """Return the candidate as a plain dictionary (for reporting)."""
        return {
            "columns": list(self.columns),
            "arity": self.arity,
            "distinct_combinations": self.distinct_combinations,
            "covered_rows": self.covered_rows,
            "uniqueness": round(self.uniqueness, 4),
            "is_unique": self.is_unique,
            "is_minimal": self.is_minimal,
        }


def _combination_statistics(
    table: Table, columns: Sequence[str]
) -> tuple[int, int]:
    """Return (distinct combinations, covered rows) for a column combination.

    Rows containing a missing value in any of the columns are excluded, the
    same treatment the joinability definition applies to key tuples.
    """
    indexes = [table.column_index(column) for column in columns]
    seen: set[tuple[str, ...]] = set()
    covered = 0
    for row in table.rows:
        values = tuple(row[index] for index in indexes)
        if any(value == MISSING for value in values):
            continue
        covered += 1
        seen.add(values)
    return len(seen), covered


def evaluate_combination(table: Table, columns: Sequence[str]) -> KeyCandidate:
    """Evaluate one column combination as a key candidate (minimality unset).

    ``is_minimal`` is reported as ``True`` here; the lattice search in
    :func:`discover_key_candidates` overrides it with the real value.
    """
    if not columns:
        raise DataModelError("a key candidate needs at least one column")
    if len(set(columns)) != len(columns):
        raise DataModelError(f"duplicate columns in candidate: {columns}")
    distinct, covered = _combination_statistics(table, columns)
    uniqueness = distinct / covered if covered else 0.0
    return KeyCandidate(
        columns=tuple(columns),
        distinct_combinations=distinct,
        covered_rows=covered,
        uniqueness=uniqueness,
        is_unique=covered > 0 and distinct == covered,
        is_minimal=True,
    )


def discover_key_candidates(
    table: Table,
    max_arity: int = 3,
    columns: Sequence[str] | None = None,
    exclude_types: Sequence[ColumnType] = (ColumnType.FLOAT, ColumnType.EMPTY),
    min_coverage: float = 0.5,
) -> list[KeyCandidate]:
    """Discover minimal unique column combinations of ``table``.

    Parameters
    ----------
    max_arity:
        Largest combination size to explore (the paper's experiments use keys
        of 2-10 columns; suggestion quality degrades beyond a handful).
    columns:
        Candidate columns; defaults to every column whose inferred type is not
        in ``exclude_types``.
    min_coverage:
        Minimum fraction of rows that must have no missing value in the
        combination for it to be considered (guards against key suggestions
        that only "work" because most of their rows are empty).

    Returns the minimal UCCs (plus, when no UCC exists within ``max_arity``,
    the best non-unique combinations of maximum arity), ranked by
    :func:`rank_key_candidates`.
    """
    if max_arity <= 0:
        raise DataModelError(f"max_arity must be positive, got {max_arity}")
    if columns is None:
        excluded = set(exclude_types)
        columns = [
            column
            for column in table.columns
            if infer_column_type(
                [v for v in table.column_values(column) if v != MISSING]
            )
            not in excluded
        ]
    else:
        for column in columns:
            table.column_index(column)  # raises if missing
    columns = list(columns)
    if not columns:
        return []

    total_rows = max(table.num_rows, 1)
    minimal_uccs: list[KeyCandidate] = []
    frontier: list[tuple[str, ...]] = [(column,) for column in columns]
    best_non_unique: dict[tuple[str, ...], KeyCandidate] = {}

    for arity in range(1, max_arity + 1):
        next_frontier: list[tuple[str, ...]] = []
        for combination in frontier:
            candidate = evaluate_combination(table, combination)
            if candidate.covered_rows / total_rows < min_coverage:
                continue
            if candidate.is_unique:
                minimal_uccs.append(candidate)
            else:
                best_non_unique[combination] = candidate
                next_frontier.append(combination)
        if arity == max_arity:
            break
        # Apriori expansion: extend only non-unique combinations, and never
        # into a superset of an already found UCC (those cannot be minimal).
        ucc_sets = [set(u.columns) for u in minimal_uccs]
        expansions: set[tuple[str, ...]] = set()
        for combination in next_frontier:
            last_index = columns.index(combination[-1])
            for column in columns[last_index + 1:]:
                extended = combination + (column,)
                if any(ucc <= set(extended) for ucc in ucc_sets):
                    continue
                expansions.add(extended)
        frontier = sorted(expansions)

    if minimal_uccs:
        return rank_key_candidates(table, minimal_uccs)

    # No UCC within the arity bound: report the most discriminating
    # combinations of the largest explored arity as "near keys".
    widest = [
        candidate
        for candidate in best_non_unique.values()
        if candidate.arity == min(max_arity, len(columns))
    ]
    widest.sort(key=lambda c: (-c.uniqueness, c.arity, c.columns))
    return rank_key_candidates(table, widest[:10])


def rank_key_candidates(
    table: Table, candidates: Sequence[KeyCandidate]
) -> list[KeyCandidate]:
    """Rank key candidates: unique first, then small, then join-friendly.

    Join-friendliness prefers combinations whose columns are text-like (the
    values a web-table join is likely to share) over purely numeric ones; ties
    are broken by column order for determinism.
    """
    type_of: dict[str, ColumnType] = {}
    for column in table.columns:
        values = [v for v in table.column_values(column) if v != MISSING]
        type_of[column] = infer_column_type(values)

    def friendliness(candidate: KeyCandidate) -> int:
        return sum(
            1
            for column in candidate.columns
            if type_of.get(column) in (ColumnType.TEXT, ColumnType.CODE,
                                       ColumnType.DATE, ColumnType.TIMESTAMP)
        )

    ranked = sorted(
        candidates,
        key=lambda c: (
            not c.is_unique,
            c.arity,
            -friendliness(c),
            -c.uniqueness,
            c.columns,
        ),
    )
    return list(ranked)


def suggest_query(
    table: Table, max_arity: int = 3, prefer_arity: int | None = 2
) -> QueryTable:
    """Build a :class:`QueryTable` from the best discovered key candidate.

    ``prefer_arity`` biases the choice towards composite keys of that size
    when one exists among the suggestions (MATE's value proposition is n-ary
    keys, so suggesting a unary key only happens when nothing better exists).
    Raises :class:`DataModelError` when no candidate at all can be found.
    """
    candidates = discover_key_candidates(table, max_arity=max_arity)
    if not candidates:
        raise DataModelError(
            f"no composite-key candidate found for table {table.name!r}"
        )
    chosen = candidates[0]
    if prefer_arity is not None:
        preferred = [c for c in candidates if c.arity == prefer_arity and c.is_unique]
        if not preferred:
            preferred = [c for c in candidates if c.arity == prefer_arity]
        if preferred:
            chosen = preferred[0]
    return QueryTable(table=table, key_columns=list(chosen.columns))
