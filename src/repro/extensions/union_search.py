"""Table union search on top of the MATE index (extension, paper §1).

The paper notes that the super-key/index machinery "could be applied in the
same spirit" to table union search (finding tables that can be stacked under a
query table because their columns draw from the same domains).  This module
implements a simple unionability search in the style of Nargesian et al.'s
table union search, reusing the single-attribute inverted index:

* for every query column, the distinct values are probed against the index,
  producing per-candidate-column overlap counts;
* a candidate table's unionability is the best one-to-one alignment between
  query columns and candidate columns, scored by the sum of normalised value
  overlaps (greedy assignment — exact for the small column counts of web
  tables and never above the true optimum by more than the usual greedy gap);
* the top-k tables by unionability are returned.

On large corpora the per-value posting probes dominate, so the search can
run behind the approximate candidate tier of :mod:`repro.sketch`: given a
:class:`~repro.sketch.SketchIndex` and enabled
:class:`~repro.sketch.SketchOptions`, every query column is LSH-probed
first and only tables whose best column containment clears the threshold
are probed exactly and aligned.

This is an *extension*, not a paper experiment.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..datamodel import QueryTable, Table, TableCorpus
from ..exceptions import DiscoveryError
from ..index import InvertedIndex
from ..sketch import DEFAULT_SKETCH_OPTIONS, SketchIndex, SketchOptions


@dataclass(frozen=True)
class UnionCandidate:
    """One candidate table for union search."""

    table_id: int
    unionability: float
    #: For each query column index, the aligned candidate column (or None).
    alignment: tuple[tuple[int, int | None], ...]


class UnionSearch:
    """Top-k unionable table search reusing the MATE inverted index.

    ``sketch_index`` / ``sketch_options`` optionally engage the MinHash-LSH
    candidate tier: with enabled options, tables are pre-pruned per query
    column before any exact posting probe (disabled defaults keep the
    search exhaustive and byte-identical to earlier releases).
    """

    def __init__(
        self,
        corpus: TableCorpus,
        index: InvertedIndex,
        sketch_index: SketchIndex | None = None,
        sketch_options: SketchOptions | None = None,
    ):
        self.corpus = corpus
        self.index = index
        self.sketch_index = sketch_index
        self.sketch_options = sketch_options or DEFAULT_SKETCH_OPTIONS

    def top_k_unionable(
        self, query: QueryTable | Table, k: int = 10, columns: list[str] | None = None
    ) -> list[UnionCandidate]:
        """Return the top-k tables unionable with the query columns.

        ``columns`` defaults to every column of the query table (for a
        :class:`QueryTable` input, its key columns).
        """
        if k <= 0:
            raise DiscoveryError(f"k must be positive, got {k}")
        if isinstance(query, QueryTable):
            table = query.table
            columns = columns or query.key_columns
        else:
            table = query
            columns = columns or list(table.columns)

        allowed = self._sketch_allowed_tables(table, columns)

        # overlap[(candidate table, query position, candidate column)] = count
        overlap: dict[tuple[int, int, int], int] = defaultdict(int)
        column_cardinalities = []
        for query_position, column in enumerate(columns):
            values = table.distinct_column_values(column)
            column_cardinalities.append(max(len(values), 1))
            seen: set[tuple[int, int, str]] = set()
            for value in sorted(values):
                for item in self.index.posting_list(value):
                    if allowed is not None and item.table_id not in allowed:
                        continue
                    key = (item.table_id, item.column_index, value)
                    if key in seen:
                        continue
                    seen.add(key)
                    overlap[(item.table_id, query_position, item.column_index)] += 1

        per_table: dict[int, dict[tuple[int, int], int]] = defaultdict(dict)
        for (table_id, query_position, column_index), count in overlap.items():
            per_table[table_id][(query_position, column_index)] = count

        candidates: list[UnionCandidate] = []
        for table_id, cells in per_table.items():
            if table_id == table.table_id:
                continue
            score, alignment = self._align(cells, len(columns), column_cardinalities)
            if score > 0:
                candidates.append(
                    UnionCandidate(
                        table_id=table_id,
                        unionability=score,
                        alignment=tuple(alignment),
                    )
                )
        candidates.sort(key=lambda c: (-c.unionability, c.table_id))
        return candidates[:k]

    def _sketch_allowed_tables(
        self, table: Table, columns: list[str]
    ) -> set[int] | None:
        """LSH-prune the table universe (``None`` = exhaustive, no pruning).

        The allowed sets of the individual query columns are unioned so a
        table unionable along *any* column axis survives the prune.
        """
        if self.sketch_index is None or not self.sketch_options.enabled:
            return None
        allowed: set[int] = set()
        for column in columns:
            values = table.distinct_column_values(column)
            if not values:
                continue
            scored = self.sketch_index.query(
                values,
                threshold=self.sketch_options.threshold,
                max_candidates=self.sketch_options.max_candidates,
            )
            allowed.update(table_id for table_id, _ in scored)
        return allowed

    @staticmethod
    def _align(
        cells: dict[tuple[int, int], int],
        num_query_columns: int,
        column_cardinalities: list[int],
    ) -> tuple[float, list[tuple[int, int | None]]]:
        """Greedy one-to-one alignment of query columns to candidate columns."""
        entries = sorted(
            (
                (count / column_cardinalities[query_position], query_position, column_index)
                for (query_position, column_index), count in cells.items()
            ),
            key=lambda entry: (-entry[0], entry[1], entry[2]),
        )
        used_query: set[int] = set()
        used_candidate: set[int] = set()
        alignment: dict[int, int] = {}
        score = 0.0
        for normalised, query_position, column_index in entries:
            if query_position in used_query or column_index in used_candidate:
                continue
            used_query.add(query_position)
            used_candidate.add(column_index)
            alignment[query_position] = column_index
            score += normalised
        full_alignment = [
            (query_position, alignment.get(query_position))
            for query_position in range(num_query_columns)
        ]
        return score, full_alignment
