"""Initial query-column selection heuristics (Sections 6.1 and 7.5.4).

MATE probes the single-attribute index with exactly one of the composite-key
columns; the choice determines how many PL items have to be fetched and
filtered.  The paper's default is the *cardinality* heuristic (pick the key
column with the fewest distinct values) and Section 7.5.4 compares it against
four alternatives, all implemented here:

* ``cardinality``   — fewest distinct values (MATE's default),
* ``column_order``  — simply the first key column of the query table,
* ``longest_string``— the column containing the longest cell value (TLS),
* ``worst_case``    — the column whose values fetch the *most* PL items
  (upper bound; needs the index),
* ``best_case``     — the column whose values fetch the *fewest* PL items
  (ground-truth lower bound; needs the index).
"""

from __future__ import annotations

from typing import Protocol

from ..datamodel import MISSING, QueryTable
from ..exceptions import DiscoveryError
from ..index import InvertedIndex


class ColumnSelector(Protocol):
    """Callable picking the initial query column for a discovery run."""

    def __call__(self, query: QueryTable, index: InvertedIndex | None = None) -> str:
        ...


def select_by_cardinality(
    query: QueryTable, index: InvertedIndex | None = None
) -> str:
    """Pick the key column with the lowest cardinality (MATE's heuristic)."""
    cardinalities = query.column_cardinalities()
    return min(query.key_columns, key=lambda column: (cardinalities[column], column))


def select_by_column_order(
    query: QueryTable, index: InvertedIndex | None = None
) -> str:
    """Pick the first key column in table order ("Column order" baseline)."""
    ordered = sorted(
        query.key_columns, key=lambda column: query.table.column_index(column)
    )
    return ordered[0]


def select_by_longest_string(
    query: QueryTable, index: InvertedIndex | None = None
) -> str:
    """Pick the column containing the longest cell value (the TLS baseline)."""

    def longest_value(column: str) -> int:
        values = query.table.column_values(column)
        return max((len(v) for v in values if v != MISSING), default=0)

    return max(query.key_columns, key=lambda column: (longest_value(column), column))


def _posting_count(query: QueryTable, column: str, index: InvertedIndex) -> int:
    values = [v for v in query.table.distinct_column_values(column)]
    return index.posting_count_for_values(values)


def select_worst_case(query: QueryTable, index: InvertedIndex | None = None) -> str:
    """Pick the column fetching the most PL items (hypothetical worst case)."""
    if index is None:
        raise DiscoveryError("the worst-case selector requires the inverted index")
    return max(
        query.key_columns,
        key=lambda column: (_posting_count(query, column, index), column),
    )


def select_best_case(query: QueryTable, index: InvertedIndex | None = None) -> str:
    """Pick the column fetching the fewest PL items (ground-truth best)."""
    if index is None:
        raise DiscoveryError("the best-case selector requires the inverted index")
    return min(
        query.key_columns,
        key=lambda column: (_posting_count(query, column, index), column),
    )


#: Registry of the selection strategies compared in Section 7.5.4.
COLUMN_SELECTORS: dict[str, ColumnSelector] = {
    "cardinality": select_by_cardinality,
    "column_order": select_by_column_order,
    "longest_string": select_by_longest_string,
    "worst_case": select_worst_case,
    "best_case": select_best_case,
}


def get_column_selector(name: str) -> ColumnSelector:
    """Return the selector registered under ``name``."""
    try:
        return COLUMN_SELECTORS[name]
    except KeyError as exc:
        raise DiscoveryError(
            f"unknown column selector {name!r}; available: {sorted(COLUMN_SELECTORS)}"
        ) from exc


def fetched_pl_count(
    query: QueryTable, index: InvertedIndex, selector: ColumnSelector | str
) -> int:
    """Number of PL items the given selector's choice would fetch.

    This is the measurement reported in the initial-column experiment
    (Section 7.5.4).
    """
    chosen = (
        get_column_selector(selector)(query, index)
        if isinstance(selector, str)
        else selector(query, index)
    )
    return _posting_count(query, chosen, index)
