"""Joinability computation (Section 2, Eq. 1 and Eq. 2).

The joinability of a candidate table ``S`` w.r.t. a query table ``R`` with a
composite key ``X`` is the size of the intersection of the key projection of
``R`` with the projection of ``S`` onto the *best* column combination ``Y'``
of the same arity (Eq. 2).  Because the column mapping is unknown, a naive
evaluation enumerates all ``P(|S|, |X|)`` ordered column combinations.

Two implementations are provided:

* :func:`exact_joinability` — the brute-force reference that literally
  enumerates column permutations.  It is used by tests as ground truth and by
  the "Best"/"Ideal" oracles in the experiments.
* :func:`joinability_from_matches` — the verification-step variant used by
  the discovery engines: given the (row, key-tuple) pairs that survived
  filtering, it finds the single column mapping supported by the largest
  number of *distinct* key tuples, using per-row backtracking over value
  positions instead of global permutation enumeration.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import permutations
from typing import Iterable, Sequence

from ..datamodel import MISSING, QueryTable, Table


def candidate_positions(
    row: Sequence[str], key_values: Sequence[str]
) -> list[list[int]]:
    """For each key value, list the columns of ``row`` holding that value."""
    positions: list[list[int]] = []
    for value in key_values:
        positions.append(
            [index for index, cell in enumerate(row) if cell == value and value != MISSING]
        )
    return positions


def row_mappings(
    row: Sequence[str], key_values: Sequence[str]
) -> list[tuple[int, ...]]:
    """Enumerate all injective column assignments matching ``key_values`` in ``row``.

    Each returned tuple assigns, position by position, a distinct column index
    to every key value.  An empty list means the row does not contain the full
    composite key.
    """
    positions = candidate_positions(row, key_values)
    if any(not options for options in positions):
        return []

    assignments: list[tuple[int, ...]] = []

    def backtrack(index: int, used: set[int], current: list[int]) -> None:
        if index == len(positions):
            assignments.append(tuple(current))
            return
        for column in positions[index]:
            if column in used:
                continue
            used.add(column)
            current.append(column)
            backtrack(index + 1, used, current)
            current.pop()
            used.remove(column)

    backtrack(0, set(), [])
    return assignments


def row_contains_key(row: Sequence[str], key_values: Sequence[str]) -> bool:
    """Return whether ``row`` contains all ``key_values`` in distinct columns."""
    return bool(row_mappings(row, key_values))


def joinability_from_matches(
    matches: Iterable[tuple[Sequence[str], tuple[str, ...]]],
) -> tuple[int, tuple[int, ...] | None]:
    """Compute joinability from verified (row, key-tuple) matches.

    ``matches`` yields pairs of a candidate-table row and the distinct query
    key tuple it was matched against.  The result is the largest number of
    distinct key tuples supported by one single column mapping (Eq. 2),
    together with that mapping (or ``None`` when there are no matches).
    """
    support: dict[tuple[int, ...], set[tuple[str, ...]]] = defaultdict(set)
    for row, key_tuple in matches:
        for mapping in row_mappings(row, key_tuple):
            support[mapping].add(key_tuple)
    if not support:
        return 0, None
    best_mapping, best_tuples = max(
        support.items(), key=lambda item: (len(item[1]), item[0])
    )
    return len(best_tuples), best_mapping


def exact_joinability(
    query: QueryTable, table: Table
) -> tuple[int, tuple[int, ...] | None]:
    """Brute-force joinability (Eq. 2) by enumerating column permutations.

    Only feasible for tables with a modest number of columns; intended as the
    ground-truth oracle for tests and the "Best"/"Ideal" baselines.
    """
    key_tuples = query.key_tuples()
    if not key_tuples:
        return 0, None
    key_size = query.key_size
    if table.num_columns < key_size:
        return 0, None

    best_score = 0
    best_mapping: tuple[int, ...] | None = None
    for mapping in permutations(range(table.num_columns), key_size):
        projected = {
            tuple(row[column] for column in mapping)
            for row in table.rows
        }
        score = len(key_tuples & projected)
        if score > best_score:
            best_score = score
            best_mapping = mapping
    return best_score, best_mapping


def exact_joinability_score(query: QueryTable, table: Table) -> int:
    """Convenience wrapper returning only the joinability score."""
    score, _ = exact_joinability(query, table)
    return score


def top_k_by_exact_joinability(
    query: QueryTable, tables: Iterable[Table], k: int
) -> list[tuple[int, int]]:
    """Return the ground-truth top-k ``(table_id, joinability)`` pairs.

    Ties are broken by table id (ascending) to keep the ordering stable, which
    matches how the discovery engines report results.
    """
    scored = [
        (table.table_id, exact_joinability_score(query, table)) for table in tables
    ]
    scored.sort(key=lambda pair: (-pair[1], pair[0]))
    return [pair for pair in scored[:k] if pair[1] > 0]
