"""Result containers returned by the discovery engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..metrics import DiscoveryCounters
from .topk import RankedTable

if TYPE_CHECKING:  # pragma: no cover - imported for annotations only
    from ..plan.planner import PlanReport


@dataclass(frozen=True)
class TableResult:
    """One discovered joinable table."""

    table_id: int
    joinability: int
    #: The best column mapping found during verification: for each query key
    #: column (in key order) the index of the matching candidate-table column.
    column_mapping: tuple[int, ...] | None = None
    table_name: str = ""

    def as_dict(self) -> dict[str, object]:
        """Return the result as a plain dictionary (for reporting)."""
        return {
            "table_id": self.table_id,
            "table_name": self.table_name,
            "joinability": self.joinability,
            "column_mapping": self.column_mapping,
        }


@dataclass
class DiscoveryResult:
    """The outcome of one discovery run (any system)."""

    system: str
    k: int
    tables: list[TableResult] = field(default_factory=list)
    counters: DiscoveryCounters = field(default_factory=DiscoveryCounters)
    #: Whether the run saw its full search space.  ``False`` only when a
    #: per-request limit (``deadline_seconds`` / ``max_pl_fetches``, see
    #: :mod:`repro.api.request`) stopped the run early; the exact pruning
    #: rules of Algorithm 1 never clear this flag.
    complete: bool = True
    #: Execution trace of the planner/executor pipeline (seed column,
    #: estimates, re-plans); ``None`` for engines outside that pipeline.
    plan: "PlanReport | None" = None

    def plan_explain(self) -> dict[str, object] | None:
        """The plan's JSON-facing explanation, or ``None`` without a plan."""
        if self.plan is None:
            return None
        return self.plan.as_dict()

    @property
    def runtime_seconds(self) -> float:
        """Wall-clock runtime of the run."""
        return self.counters.runtime_seconds

    @property
    def precision(self) -> float:
        """Row-filter precision of the run (Section 7.4)."""
        return self.counters.precision

    def table_ids(self) -> list[int]:
        """Return the discovered table ids, best first."""
        return [t.table_id for t in self.tables]

    def result_tuples(self) -> list[tuple[int, int]]:
        """Return ``(table_id, joinability)`` pairs, best first."""
        return [(t.table_id, t.joinability) for t in self.tables]

    def joinability_of(self, table_id: int) -> int:
        """Return the reported joinability of ``table_id`` (0 if absent)."""
        for entry in self.tables:
            if entry.table_id == table_id:
                return entry.joinability
        return 0

    @classmethod
    def from_ranked(
        cls,
        system: str,
        k: int,
        ranked: list[RankedTable],
        counters: DiscoveryCounters,
        mappings: dict[int, tuple[int, ...] | None] | None = None,
        names: dict[int, str] | None = None,
        complete: bool = True,
        plan: "PlanReport | None" = None,
    ) -> "DiscoveryResult":
        """Build a result object from the top-k heap contents."""
        mappings = mappings or {}
        names = names or {}
        tables = [
            TableResult(
                table_id=entry.table_id,
                joinability=entry.joinability,
                column_mapping=mappings.get(entry.table_id),
                table_name=names.get(entry.table_id, ""),
            )
            for entry in ranked
        ]
        return cls(
            system=system,
            k=k,
            tables=tables,
            counters=counters,
            complete=complete,
            plan=plan,
        )
