"""Sharded (scale-out) discovery.

The paper's experiments ran on a 128-core server with the index inside a
column store; a deployment at DWTC scale would shard the inverted index
across workers and merge per-shard results.  This module reproduces that
architecture at library scale:

* :func:`shard_corpus` splits a corpus into ``num_shards`` disjoint
  sub-corpora (round-robin over table ids, so shard sizes stay balanced);
* :class:`ShardedMateDiscovery` builds one extended inverted index per shard
  (the offline step a distributed deployment performs per worker), runs the
  standard :class:`~repro.core.discovery.MateDiscovery` engine on every shard
  — serially or on a thread pool — and merges the per-shard top-k lists.

Merging per-shard top-k results is lossless: the global k-th best joinability
is at least every shard's local k-th best, so any table pruned inside a shard
(its joinability is bounded by the shard's local ``j_k``) can never enter the
global top-k.  The same argument the paper makes for table-filter rule 1
therefore carries over shard boundaries unchanged.

Pure-Python threads do not speed up the CPU-bound parts (the GIL), so the
``max_workers`` option mainly demonstrates the orchestration; the measured
quantity of interest — and what the scale-out experiment reports — is the
per-shard work balance (rows checked / PL items fetched per shard).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..config import MateConfig
from ..datamodel import QueryTable, TableCorpus
from ..exceptions import DiscoveryError
from ..index import IndexBuilder, InvertedIndex
from ..metrics import DiscoveryCounters
from .discovery import MateDiscovery
from .results import DiscoveryResult, TableResult
from .topk import TopKHeap


def shard_corpus(corpus: TableCorpus, num_shards: int) -> list[TableCorpus]:
    """Split ``corpus`` into ``num_shards`` disjoint sub-corpora.

    Tables are assigned round-robin over the sorted table ids, which keeps the
    shards balanced in table count regardless of how ids were allocated.
    Shards may be empty when the corpus has fewer tables than shards.
    """
    if num_shards <= 0:
        raise DiscoveryError(f"num_shards must be positive, got {num_shards}")
    shards = [
        TableCorpus(name=f"{corpus.name}_shard_{shard_index}")
        for shard_index in range(num_shards)
    ]
    for position, table_id in enumerate(sorted(corpus.table_ids())):
        shards[position % num_shards].add_table(corpus.get_table(table_id))
    return shards


@dataclass(frozen=True)
class ShardStatistics:
    """Per-shard accounting of one sharded discovery run."""

    shard_index: int
    num_tables: int
    pl_items_fetched: int
    rows_checked: int
    runtime_seconds: float

    def as_dict(self) -> dict[str, float]:
        """Return the statistics as a plain dictionary (for reporting)."""
        return {
            "shard": self.shard_index,
            "tables": self.num_tables,
            "pl_items_fetched": self.pl_items_fetched,
            "rows_checked": self.rows_checked,
            "runtime_seconds": self.runtime_seconds,
        }


def merge_discovery_results(
    results: list[DiscoveryResult], k: int, system: str = "mate-sharded"
) -> DiscoveryResult:
    """Merge per-shard discovery results into one global top-k result.

    Counters are summed; the runtime is set to the *maximum* shard runtime
    (shards run concurrently in the deployment being modelled), with the sum
    preserved under ``counters.extra["total_shard_seconds"]``.
    """
    if k <= 0:
        raise DiscoveryError(f"k must be positive, got {k}")
    by_table: dict[int, TableResult] = {}
    counters = DiscoveryCounters()
    max_runtime = 0.0
    total_runtime = 0.0
    for result in results:
        counters.merge(result.counters)
        max_runtime = max(max_runtime, result.counters.runtime_seconds)
        total_runtime += result.counters.runtime_seconds
        for entry in result.tables:
            # Shards over disjoint corpora never report the same table twice,
            # but the merge stays correct for overlapping inputs by keeping
            # the best score per table.
            current = by_table.get(entry.table_id)
            if current is None or entry.joinability > current.joinability:
                by_table[entry.table_id] = entry
    topk = TopKHeap(k)
    for entry in by_table.values():
        topk.update(entry.table_id, entry.joinability)
    counters.runtime_seconds = max_runtime
    counters.extra["total_shard_seconds"] = total_runtime
    tables = [
        TableResult(
            table_id=ranked.table_id,
            joinability=ranked.joinability,
            column_mapping=by_table[ranked.table_id].column_mapping,
            table_name=by_table[ranked.table_id].table_name,
        )
        for ranked in topk.results()
    ]
    return DiscoveryResult(system=system, k=k, tables=tables, counters=counters)


class ShardedMateDiscovery:
    """MATE discovery over a sharded corpus with per-shard indexes."""

    system_name = "mate-sharded"

    def __init__(
        self,
        corpus: TableCorpus,
        num_shards: int = 4,
        config: MateConfig | None = None,
        hash_function_name: str = "xash",
        max_workers: int | None = None,
        column_selector="cardinality",
        row_filter_mode: str = "superkey",
        use_table_filters: bool = True,
    ):
        if num_shards <= 0:
            raise DiscoveryError(f"num_shards must be positive, got {num_shards}")
        self.corpus = corpus
        self.config = config or MateConfig()
        self.hash_function_name = hash_function_name
        self.max_workers = max_workers
        # Algorithm 1 knobs, forwarded to every per-shard engine.
        self.column_selector = column_selector
        self.row_filter_mode = row_filter_mode
        self.use_table_filters = use_table_filters
        self.shards = shard_corpus(corpus, num_shards)
        builder = IndexBuilder(
            config=self.config, hash_function_name=hash_function_name
        )
        self.shard_indexes: list[InvertedIndex] = [
            builder.build(shard) for shard in self.shards
        ]
        self.last_shard_statistics: list[ShardStatistics] = []

    @property
    def num_shards(self) -> int:
        """Number of shards the corpus was split into."""
        return len(self.shards)

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def _discover_shard(
        self, shard_index: int, query: QueryTable, k: int
    ) -> tuple[int, DiscoveryResult]:
        shard = self.shards[shard_index]
        engine = MateDiscovery(
            shard,
            self.shard_indexes[shard_index],
            config=self.config,
            hash_function_name=self.hash_function_name,
            column_selector=self.column_selector,
            row_filter_mode=self.row_filter_mode,
            use_table_filters=self.use_table_filters,
        )
        started = time.perf_counter()
        result = engine.discover(query, k=k)
        result.counters.runtime_seconds = time.perf_counter() - started
        return shard_index, result

    def discover(self, query: QueryTable, k: int | None = None) -> DiscoveryResult:
        """Return the global top-k joinable tables across all shards."""
        if k is None:
            k = self.config.k
        if k <= 0:
            raise DiscoveryError(f"k must be positive, got {k}")

        shard_results: list[tuple[int, DiscoveryResult]] = []
        if self.max_workers and self.max_workers > 1:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                shard_results = list(
                    pool.map(
                        lambda index: self._discover_shard(index, query, k),
                        range(self.num_shards),
                    )
                )
        else:
            shard_results = [
                self._discover_shard(index, query, k)
                for index in range(self.num_shards)
            ]

        self.last_shard_statistics = [
            ShardStatistics(
                shard_index=index,
                num_tables=len(self.shards[index]),
                pl_items_fetched=result.counters.pl_items_fetched,
                rows_checked=result.counters.rows_checked,
                runtime_seconds=result.counters.runtime_seconds,
            )
            for index, result in shard_results
        ]
        merged = merge_discovery_results(
            [result for _, result in shard_results], k, system=self.system_name
        )
        return merged

    def work_imbalance(self) -> float:
        """Ratio of the busiest to the average shard (rows checked) of the last run.

        1.0 means perfectly balanced shards; large values indicate that one
        shard would dominate the wall-clock time of a real deployment.
        Returns 0.0 before the first discovery run.
        """
        if not self.last_shard_statistics:
            return 0.0
        rows = [s.rows_checked for s in self.last_shard_statistics]
        average = sum(rows) / len(rows)
        if average == 0:
            return 1.0
        return max(rows) / average
