"""MATE's core: joinability, filtering, column selection, and Algorithm 1."""

from .column_selection import (
    COLUMN_SELECTORS,
    fetched_pl_count,
    get_column_selector,
    select_best_case,
    select_by_cardinality,
    select_by_column_order,
    select_by_longest_string,
    select_worst_case,
)
from .discovery import MateDiscovery
from .filters import (
    ROW_FILTER_MODES,
    RowFilter,
    should_abandon_table,
    should_prune_table,
)
from .parallel import (
    ShardedMateDiscovery,
    ShardStatistics,
    merge_discovery_results,
    shard_corpus,
)
from .joinability import (
    exact_joinability,
    exact_joinability_score,
    joinability_from_matches,
    row_contains_key,
    row_mappings,
    top_k_by_exact_joinability,
)
from .results import DiscoveryResult, TableResult
from .topk import RankedTable, TopKHeap

__all__ = [
    "COLUMN_SELECTORS",
    "DiscoveryResult",
    "MateDiscovery",
    "ROW_FILTER_MODES",
    "RankedTable",
    "RowFilter",
    "ShardStatistics",
    "ShardedMateDiscovery",
    "TableResult",
    "TopKHeap",
    "exact_joinability",
    "exact_joinability_score",
    "fetched_pl_count",
    "get_column_selector",
    "joinability_from_matches",
    "merge_discovery_results",
    "row_contains_key",
    "row_mappings",
    "select_best_case",
    "select_by_cardinality",
    "select_by_column_order",
    "select_by_longest_string",
    "select_worst_case",
    "shard_corpus",
    "should_abandon_table",
    "should_prune_table",
    "top_k_by_exact_joinability",
]
