"""Bounded top-k result heap used by every discovery engine (Algorithm 1).

The heap keeps the ``k`` best candidate tables seen so far, ordered by
joinability.  The table-filtering rules of Section 6.2 need two things from
it: whether ``k`` results have been collected yet (the rules only apply after
that) and the joinability of the *worst* table currently in the top-k
(``j_k``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..exceptions import DiscoveryError


@dataclass(frozen=True, order=True)
class RankedTable:
    """One entry of the top-k result list."""

    joinability: int
    table_id: int

    def as_tuple(self) -> tuple[int, int]:
        """Return ``(table_id, joinability)`` for reporting."""
        return self.table_id, self.joinability


class TopKHeap:
    """Min-heap of the ``k`` highest-joinability tables."""

    def __init__(self, k: int):
        if k <= 0:
            raise DiscoveryError(f"k must be positive, got {k}")
        self.k = k
        # Heap entries are (joinability, -table_id) so that, at equal
        # joinability, the table with the *larger* id is evicted first and the
        # reported ranking prefers smaller ids (stable, deterministic output).
        self._heap: list[tuple[int, int]] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        """Whether ``k`` tables have been collected (the filter rules' guard)."""
        return len(self._heap) >= self.k

    def min_joinability(self) -> int:
        """Joinability of the worst table in the current top-k (``j_k``).

        Returns 0 while the heap is not full, so the pruning rules never fire
        before ``k`` joinable tables have been seen (Section 6.2).
        """
        if not self.is_full:
            return 0
        return self._heap[0][0]

    def update(self, table_id: int, joinability: int) -> bool:
        """Offer a (table, joinability) pair; returns whether it was kept.

        Tables with joinability 0 are never added — a table with no joinable
        row is not a result (and would otherwise pollute the pruning bound).
        """
        if joinability <= 0:
            return False
        entry = (joinability, -table_id)
        if not self.is_full:
            heapq.heappush(self._heap, entry)
            return True
        if entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def results(self) -> list[RankedTable]:
        """Return the current contents sorted best-first."""
        ordered = sorted(self._heap, key=lambda e: (-e[0], -e[1]))
        return [
            RankedTable(joinability=joinability, table_id=-negative_id)
            for joinability, negative_id in ordered
        ]

    def result_tuples(self) -> list[tuple[int, int]]:
        """Return ``(table_id, joinability)`` pairs sorted best-first."""
        return [entry.as_tuple() for entry in self.results()]
