"""The MATE discovery engine: Algorithm 1 of the paper.

:class:`MateDiscovery` wires together the four online phases of Figure 2:

1. **Initialization** (Section 6.1): pick the initial query column, fetch its
   PL items (with super keys) from the index, group and sort the candidate
   tables, and build the dictionary mapping initial-column values to the
   aggregated super keys of the query's composite key combinations.
2. **Table filtering** (Section 6.2): the two coarse-grained pruning rules.
3. **Row filtering** (Section 6.3): the super-key subsumption check per
   candidate row.
4. **Joinability calculation**: exact verification of the surviving rows and
   the Eq. 2 best-mapping score, feeding the top-k heap.

The engine is deliberately configurable along exactly the axes the paper's
experiments vary: the hash function (Tables 2/3, Figure 5), the row-filter
mode (SCR baseline, ideal oracle), the initial-column selector
(Section 7.5.4), ``k`` (Section 7.5.1), and the hash size.
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import TYPE_CHECKING, Callable

from ..config import MateConfig
from ..datamodel import MISSING, QueryTable, TableCorpus
from ..exceptions import DiscoveryError
from ..hashing import SuperKeyGenerator
from ..index import InvertedIndex, TableBlock, fetch_table_blocks
from ..metrics import DiscoveryCounters
from .column_selection import ColumnSelector, get_column_selector
from .filters import RowFilter, should_abandon_table, should_prune_table
from .joinability import joinability_from_matches, row_contains_key
from .results import DiscoveryResult
from .topk import TopKHeap

if TYPE_CHECKING:  # pragma: no cover - the budget lives in the api layer
    from ..api.request import RequestBudget

#: Streaming hook: receives the interim (table_id, joinability) ranking,
#: best first, after every accepted top-k update.
SnapshotCallback = Callable[[list[tuple[int, int]]], None]


class MateDiscovery:
    """Top-k n-ary joinable table discovery (Algorithm 1)."""

    system_name = "mate"

    def __init__(
        self,
        corpus: TableCorpus,
        index: InvertedIndex,
        config: MateConfig | None = None,
        hash_function_name: str | None = None,
        column_selector: ColumnSelector | str = "cardinality",
        row_filter_mode: str = "superkey",
        use_table_filters: bool = True,
    ):
        self.corpus = corpus
        self.index = index
        self.config = config or MateConfig()
        self.hash_function_name = hash_function_name or index.hash_function_name
        if (
            row_filter_mode == "superkey"
            and self.hash_function_name != index.hash_function_name
        ):
            raise DiscoveryError(
                "the discovery hash function must match the index "
                f"({self.hash_function_name!r} != {index.hash_function_name!r})"
            )
        self.super_key_generator = SuperKeyGenerator.from_name(
            self.hash_function_name, self.config
        )
        self.column_selector = (
            get_column_selector(column_selector)
            if isinstance(column_selector, str)
            else column_selector
        )
        self.row_filter = RowFilter(self.super_key_generator, mode=row_filter_mode)
        self.use_table_filters = use_table_filters

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def discover(
        self,
        query: QueryTable,
        k: int | None = None,
        *,
        budget: "RequestBudget | None" = None,
        on_snapshot: "SnapshotCallback | None" = None,
    ) -> DiscoveryResult:
        """Return the top-k joinable tables for ``query``.

        ``k`` defaults to the configured value.  The result carries the full
        instrumentation counters of the run.

        ``budget`` (a :class:`~repro.api.request.RequestBudget`) bounds the
        run: its posting-list fetch budget caps how many probe values the
        initialization step fetches, and its deadline is checked before the
        fetch and at every candidate table.  A curtailed run returns the
        (well-formed, possibly empty) partial top-k with ``complete=False``
        and the matching ``counters.budget_exhausted`` /
        ``counters.deadline_expired`` flags.  Without a budget the behaviour
        is byte-identical to earlier releases.

        ``on_snapshot`` is called with the interim ``(table_id, joinability)``
        ranking (best first) every time a candidate table enters or improves
        the top-k — the streaming hook behind
        :meth:`repro.api.session.DiscoverySession.discover_stream`.
        """
        if k is None:
            k = self.config.k
        if k <= 0:
            raise DiscoveryError(f"k must be positive, got {k}")
        counters = DiscoveryCounters()
        started = time.perf_counter()

        # ---------------- Initialization (lines 3-6) ----------------
        initial_column = self.column_selector(query, self.index)
        if initial_column not in query.key_columns:
            raise DiscoveryError(
                f"initial column {initial_column!r} is not a key column of the query"
            )
        key_map = self._build_key_super_key_map(query, initial_column)
        probe_values = list(key_map)

        if budget is not None:
            # Each probe value costs one posting-list fetch; a short budget
            # truncates the (deterministically ordered) probe list.  A
            # pre-expired deadline skips the fetch entirely.
            if budget.deadline_expired():
                probe_values = []
            else:
                granted = budget.take_pl_fetches(len(probe_values))
                probe_values = probe_values[:granted]

        # Columnar fetch: struct-of-arrays blocks per candidate table instead
        # of per-item FetchedItem tuples (the packed hot path of this repo).
        grouped = fetch_table_blocks(self.index, probe_values)
        counters.pl_items_fetched = sum(len(block) for block in grouped.values())
        counters.candidate_tables = len(grouped)
        counters.extra["initial_column_cardinality"] = float(len(probe_values))

        # Sort candidate tables by decreasing PL-item count (line 5).
        candidates = sorted(
            grouped.items(), key=lambda entry: (-len(entry[1]), entry[0])
        )

        topk = TopKHeap(k)
        mappings: dict[int, tuple[int, ...] | None] = {}

        # ---------------- Candidate-table loop (lines 7-22) ----------------
        for position, (table_id, block) in enumerate(candidates):
            if budget is not None and budget.deadline_expired():
                break
            if self.use_table_filters and should_prune_table(len(block), topk):
                counters.tables_pruned_by_rule1 += len(candidates) - position
                break
            joinability, mapping = self._evaluate_table(
                table_id, block, key_map, topk, counters
            )
            counters.tables_evaluated += 1
            if topk.update(table_id, joinability):
                mappings[table_id] = mapping
                if on_snapshot is not None:
                    on_snapshot(topk.result_tuples())

        complete = True
        if budget is not None:
            counters.budget_exhausted = int(budget.exhausted)
            counters.deadline_expired = int(budget.expired)
            complete = budget.complete
        counters.runtime_seconds = time.perf_counter() - started
        names = {
            table_id: self.corpus.get_table(table_id).name
            for table_id, _ in topk.result_tuples()
        }
        return DiscoveryResult.from_ranked(
            system=self.system_name,
            k=k,
            ranked=topk.results(),
            counters=counters,
            mappings=mappings,
            names=names,
            complete=complete,
        )

    # ------------------------------------------------------------------
    # Initialization helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _complete_key_tuples(query: QueryTable) -> list[tuple[str, ...]]:
        """The query's distinct composite-key tuples without missing values.

        This is the canonical filtering of the initialization step; the batch
        service reuses it (via :meth:`probe_values`) so that cache warm-up
        and the engine can never disagree on what gets probed.
        """
        return [
            key_tuple
            for key_tuple in sorted(query.key_tuples())
            if not any(value == MISSING for value in key_tuple)
        ]

    def probe_values(self, query: QueryTable) -> list[str]:
        """The probe values the initialization step will fetch for ``query``.

        Runs the engine's column selector and returns the deduplicated
        initial-column values of every complete key tuple — exactly the keys
        of the ``superkey_map_Q`` dictionary ``discover`` builds.
        """
        initial_column = self.column_selector(query, self.index)
        if initial_column not in query.key_columns:
            raise DiscoveryError(
                f"initial column {initial_column!r} is not a key column of the query"
            )
        initial_position = query.key_columns.index(initial_column)
        return list(
            dict.fromkeys(
                key_tuple[initial_position]
                for key_tuple in self._complete_key_tuples(query)
            )
        )

    def _build_key_super_key_map(
        self, query: QueryTable, initial_column: str
    ) -> dict[str, list[tuple[tuple[str, ...], int]]]:
        """Map initial-column values to (key tuple, aggregated hash) pairs.

        This is the ``superkey_map_Q`` dictionary of Algorithm 1 (line 6): it
        lets the row filter find, for a fetched PL item, exactly the query key
        combinations that share the probed value.
        """
        initial_position = query.key_columns.index(initial_column)
        key_map: dict[str, list[tuple[tuple[str, ...], int]]] = defaultdict(list)
        for key_tuple in self._complete_key_tuples(query):
            probe_value = key_tuple[initial_position]
            key_super_key = self.super_key_generator.key_super_key(key_tuple)
            key_map[probe_value].append((key_tuple, key_super_key))
        return dict(key_map)

    # ------------------------------------------------------------------
    # Per-table evaluation (row filtering + joinability calculation)
    # ------------------------------------------------------------------
    def _evaluate_table(
        self,
        table_id: int,
        block: TableBlock,
        key_map: dict[str, list[tuple[tuple[str, ...], int]]],
        topk: TopKHeap,
        counters: DiscoveryCounters,
    ) -> tuple[int, tuple[int, ...] | None]:
        """Evaluate one candidate table and return (joinability, mapping).

        Iterates the table block's parallel columns directly (Algorithm 1
        lines 4-9): no per-item record is ever constructed on this path.
        """
        posting_count = len(block)
        rows_checked = 0
        rows_matched = 0
        surviving: list[tuple[int, tuple[str, ...]]] = []

        use_table_filters = self.use_table_filters
        key_map_get = key_map.get
        get_row = self.corpus.get_row
        passes = self.row_filter.passes
        for value, row_index, super_key in zip(
            block.values, block.row_indexes, block.super_keys
        ):
            if use_table_filters and should_abandon_table(
                posting_count, rows_checked, rows_matched, topk
            ):
                counters.tables_pruned_by_rule2 += 1
                break
            rows_checked += 1
            counters.rows_checked += 1
            row = get_row(table_id, row_index)
            row_survived = False
            for key_tuple, key_super_key in key_map_get(value, ()):
                if passes(super_key, key_super_key, row, key_tuple, counters):
                    surviving.append((row_index, key_tuple))
                    row_survived = True
            if row_survived:
                rows_matched += 1

        joinability, mapping = self._calculate_joinability(
            table_id, surviving, counters
        )
        return joinability, mapping

    def _calculate_joinability(
        self,
        table_id: int,
        surviving: list[tuple[int, tuple[str, ...]]],
        counters: DiscoveryCounters,
    ) -> tuple[int, tuple[int, ...] | None]:
        """Exact verification of surviving rows and Eq. 2 scoring (line 21)."""
        verified: list[tuple[tuple[str, ...], tuple[str, ...]]] = []
        row_outcome: dict[tuple[int, int], bool] = {}
        for row_index, key_tuple in surviving:
            row = self.corpus.get_row(table_id, row_index)
            counters.value_comparisons += len(row) * len(key_tuple)
            location = (table_id, row_index)
            if row_contains_key(row, key_tuple):
                verified.append((row, key_tuple))
                row_outcome[location] = True
            else:
                row_outcome.setdefault(location, False)

        counters.rows_passed_filter += len(row_outcome)
        counters.true_positive_rows += sum(1 for hit in row_outcome.values() if hit)
        counters.false_positive_rows += sum(
            1 for hit in row_outcome.values() if not hit
        )
        return joinability_from_matches(verified)
