"""The MATE discovery engine: Algorithm 1 of the paper.

:class:`MateDiscovery` wires together the four online phases of Figure 2,
each an explicit operator of the :mod:`repro.plan` pipeline:

1. **Initialization** (Section 6.1): the planner picks the initiator column
   (classic selector heuristics, or the cost model over index statistics);
   the candidate-generation stage fetches its PL items (with super keys),
   groups and sorts the candidate tables, and builds the dictionary mapping
   initial-column values to the aggregated super keys of the query's
   composite key combinations.
2. **Table filtering** (Section 6.2): the two coarse-grained pruning rules
   (rule 1 in the executor's candidate loop, rule 2 inside the prefilter).
3. **Row filtering** (Section 6.3): the super-key prefilter stage.
4. **Joinability calculation**: the row-verification stage's exact check and
   Eq. 2 best-mapping score, feeding the top-k maintenance stage.

The engine is deliberately configurable along exactly the axes the paper's
experiments vary: the hash function (Tables 2/3, Figure 5), the row-filter
mode (SCR baseline, ideal oracle), the initial-column selector
(Section 7.5.4), ``k`` (Section 7.5.1), and the hash size.  Per-request
planner behaviour (cost-based seeding, adaptive re-planning) arrives through
the ``planner`` keyword of :meth:`MateDiscovery.discover`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Callable

from ..config import MateConfig
from ..datamodel import MISSING, QueryTable, TableCorpus
from ..exceptions import DiscoveryError
from ..hashing import SuperKeyGenerator
from ..index import InvertedIndex
from .column_selection import ColumnSelector, get_column_selector
from .filters import RowFilter
from .results import DiscoveryResult

if TYPE_CHECKING:  # pragma: no cover - the budget lives in the api layer
    from ..api.request import RequestBudget
    from ..plan.options import PlannerOptions
    from ..sketch import SketchIndex, SketchOptions

#: Streaming hook: receives the interim (table_id, joinability) ranking,
#: best first, after every accepted top-k update.
SnapshotCallback = Callable[[list[tuple[int, int]]], None]


class MateDiscovery:
    """Top-k n-ary joinable table discovery (Algorithm 1)."""

    system_name = "mate"

    def __init__(
        self,
        corpus: TableCorpus,
        index: InvertedIndex,
        config: MateConfig | None = None,
        hash_function_name: str | None = None,
        column_selector: ColumnSelector | str = "cardinality",
        row_filter_mode: str = "superkey",
        use_table_filters: bool = True,
        sketch_provider: "Callable[[], SketchIndex] | None" = None,
    ):
        self.corpus = corpus
        self.index = index
        self.config = config or MateConfig()
        self.hash_function_name = hash_function_name or index.hash_function_name
        if (
            row_filter_mode == "superkey"
            and self.hash_function_name != index.hash_function_name
        ):
            raise DiscoveryError(
                "the discovery hash function must match the index "
                f"({self.hash_function_name!r} != {index.hash_function_name!r})"
            )
        self.super_key_generator = SuperKeyGenerator.from_name(
            self.hash_function_name, self.config
        )
        self.column_selector = (
            get_column_selector(column_selector)
            if isinstance(column_selector, str)
            else column_selector
        )
        self.row_filter = RowFilter(self.super_key_generator, mode=row_filter_mode)
        self.use_table_filters = use_table_filters
        self._sketch_provider = sketch_provider
        self._sketch_index: "SketchIndex | None" = None

    def sketch_index(self) -> "SketchIndex":
        """The engine's MinHash-LSH sketch store (built lazily, cached).

        Comes from the injected provider when one was given (the session
        shares one store across engines; the live engine serves its
        incrementally-fresh store), otherwise a one-off bulk build over the
        engine's corpus.  Only sketch-mode requests ever pay this cost.
        """
        if self._sketch_index is None:
            if self._sketch_provider is not None:
                self._sketch_index = self._sketch_provider()
            else:
                from ..sketch import build_sketch_index

                self._sketch_index = build_sketch_index(self.corpus)
        return self._sketch_index

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def discover(
        self,
        query: QueryTable,
        k: int | None = None,
        *,
        budget: "RequestBudget | None" = None,
        on_snapshot: "SnapshotCallback | None" = None,
        planner: "PlannerOptions | None" = None,
        sketch: "SketchOptions | None" = None,
    ) -> DiscoveryResult:
        """Return the top-k joinable tables for ``query``.

        ``k`` defaults to the configured value.  The result carries the full
        instrumentation counters of the run, including the per-stage
        breakdown (``counters.stages``) and the plan trace
        (``result.plan``).

        ``budget`` (a :class:`~repro.api.request.RequestBudget`) bounds the
        run: its posting-list fetch budget caps how many probe values the
        initialization step fetches — across *every* seed attempt, so an
        adaptive re-plan can never exceed the ledger — and its deadline is
        checked before each fetch chunk and at every candidate table.  A
        curtailed run returns the (well-formed, possibly empty) partial
        top-k with ``complete=False`` and the matching
        ``counters.budget_exhausted`` / ``counters.deadline_expired`` flags.
        Without a budget the behaviour is byte-identical to earlier
        releases.

        ``on_snapshot`` is called with the interim ``(table_id, joinability)``
        ranking (best first) every time a candidate table enters or improves
        the top-k — the streaming hook behind
        :meth:`repro.api.session.DiscoverySession.discover_stream`.

        ``planner`` (a :class:`~repro.plan.options.PlannerOptions`) selects
        the seed-column strategy: the default keeps the engine's classic
        column selector (byte-identical output to earlier releases), mode
        ``"cost"`` lets the cost model pick the cheapest initiator column,
        and ``"adaptive"`` additionally re-plans mid-run when the observed
        fetch cost blows past the estimate — without losing any results
        verified so far.

        ``sketch`` (a :class:`~repro.sketch.SketchOptions`) configures the
        approximate candidate tier of planner mode ``"sketch"``: the
        MinHash-LSH prune that shrinks the fetch universe ahead of
        candidate generation.  Exhaustive settings (the default
        ``threshold=0``) keep the run byte-identical to the exact engine.
        """
        if k is None:
            k = self.config.k
        if k <= 0:
            raise DiscoveryError(f"k must be positive, got {k}")
        # Imported lazily: repro.plan composes pieces of repro.core, so a
        # module-level import either way would be circular.
        from ..plan.executor import Executor
        from ..plan.planner import Planner

        plan = Planner(self, planner).plan(query)
        sketch_index = self.sketch_index() if plan.mode == "sketch" else None
        return Executor(self, planner).execute(
            plan,
            query,
            k,
            budget=budget,
            on_snapshot=on_snapshot,
            sketch=sketch,
            sketch_index=sketch_index,
        )

    # ------------------------------------------------------------------
    # Initialization helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _complete_key_tuples(query: QueryTable) -> list[tuple[str, ...]]:
        """The query's distinct composite-key tuples without missing values.

        This is the canonical filtering of the initialization step; the batch
        service reuses it (via :meth:`probe_values`) so that cache warm-up
        and the engine can never disagree on what gets probed.
        """
        return [
            key_tuple
            for key_tuple in sorted(query.key_tuples())
            if not any(value == MISSING for value in key_tuple)
        ]

    def probe_values(self, query: QueryTable) -> list[str]:
        """The probe values the initialization step will fetch for ``query``.

        Runs the engine's column selector and returns the deduplicated
        initial-column values of every complete key tuple — exactly the keys
        of the ``superkey_map_Q`` dictionary ``discover`` builds.
        """
        initial_column = self.column_selector(query, self.index)
        if initial_column not in query.key_columns:
            raise DiscoveryError(
                f"initial column {initial_column!r} is not a key column of the query"
            )
        initial_position = query.key_columns.index(initial_column)
        return list(
            dict.fromkeys(
                key_tuple[initial_position]
                for key_tuple in self._complete_key_tuples(query)
            )
        )

    def _build_key_super_key_map(
        self, query: QueryTable, initial_column: str
    ) -> dict[str, list[tuple[tuple[str, ...], int]]]:
        """Map initial-column values to (key tuple, aggregated hash) pairs.

        This is the ``superkey_map_Q`` dictionary of Algorithm 1 (line 6): it
        lets the row filter find, for a fetched PL item, exactly the query key
        combinations that share the probed value.
        """
        initial_position = query.key_columns.index(initial_column)
        key_map: dict[str, list[tuple[tuple[str, ...], int]]] = defaultdict(list)
        for key_tuple in self._complete_key_tuples(query):
            probe_value = key_tuple[initial_position]
            key_super_key = self.super_key_generator.key_super_key(key_tuple)
            key_map[probe_value].append((key_tuple, key_super_key))
        return dict(key_map)
