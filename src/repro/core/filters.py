"""Table-level and row-level filtering (Sections 6.2 and 6.3).

Table filtering applies two coarse-grained pruning rules, both only active
once ``k`` joinable tables have been seen:

* **Rule 1** — a candidate table whose total PL-item count ``L_t`` cannot beat
  the worst top-k joinability ``j_k`` is dropped; because candidates are
  processed in decreasing ``L_t`` order, the whole scan stops.
* **Rule 2** — while scanning a table's PL items, if even a perfect outcome of
  the remaining rows (``L_t - r_checked + r_match``) cannot beat ``j_k`` the
  table is abandoned mid-way.

Row filtering checks, per candidate row, whether the row super key covers the
aggregated hash of the query key value combination (line 18 of Algorithm 1).
Three modes are supported so that the baselines and the Figure 5 oracle reuse
the same engine:

* ``superkey`` — the real MATE filter,
* ``none``     — pass everything (the SCR baseline: exact verification only),
* ``oracle``   — an ideal filter with zero false positives (the "Ideal
  system" bar of Figure 5), implemented via exact containment.
"""

from __future__ import annotations

from typing import Sequence

from ..exceptions import DiscoveryError
from ..hashing import SuperKeyGenerator
from ..metrics import DiscoveryCounters
from .joinability import row_contains_key
from .topk import TopKHeap

#: Valid row-filter modes.
ROW_FILTER_MODES: tuple[str, ...] = ("superkey", "none", "oracle")


def should_prune_table(posting_count: int, topk: TopKHeap) -> bool:
    """Table-filtering rule 1: ``L_t <= j_k`` once the top-k is full."""
    return topk.is_full and posting_count <= topk.min_joinability()


def should_abandon_table(
    posting_count: int, rows_checked: int, rows_matched: int, topk: TopKHeap
) -> bool:
    """Table-filtering rule 2: ``L_t - r_checked + r_match <= j_k``."""
    if not topk.is_full:
        return False
    optimistic = posting_count - rows_checked + rows_matched
    return optimistic <= topk.min_joinability()


class RowFilter:
    """Row-level pruning via super-key subsumption (or a baseline mode)."""

    def __init__(
        self,
        super_key_generator: SuperKeyGenerator,
        mode: str = "superkey",
    ):
        if mode not in ROW_FILTER_MODES:
            raise DiscoveryError(
                f"unknown row-filter mode {mode!r}; expected one of {ROW_FILTER_MODES}"
            )
        self.super_key_generator = super_key_generator
        self.mode = mode

    def passes(
        self,
        row_super_key: int,
        key_super_key: int,
        row: Sequence[str],
        key_tuple: tuple[str, ...],
        counters: DiscoveryCounters,
    ) -> bool:
        """Return whether the candidate row survives filtering for this key."""
        if self.mode == "none":
            return True
        if self.mode == "oracle":
            # Ideal filter: zero false positives by construction.
            return row_contains_key(row, key_tuple)
        counters.superkey_checks += 1
        covered, short_circuited = self.super_key_generator.covers_with_short_circuit(
            row_super_key, key_super_key
        )
        if short_circuited:
            counters.short_circuit_hits += 1
        return covered
