"""Command-line interface for the MATE reproduction.

Four sub-commands cover the typical workflow:

``generate``
    Generate a synthetic Table 1 workload and write the corpus (and query
    tables) to a JSON file.
``index``
    Build the extended inverted index for a corpus JSON file and store it in a
    SQLite database.
``discover``
    Run any registered discovery engine (``--engine``, see
    :mod:`repro.api.registry`) against an indexed corpus for a query table
    given as CSV plus a list of key columns; supports per-request limits
    (``--deadline-seconds`` / ``--max-pl-fetches``) and ``--json`` output in
    the versioned response schema.
``experiment``
    Run one of the paper's experiments (table1, table2, table3, figure4,
    figure5, figure6, topk, init_column, index_generation) or one of the
    extension studies (scaling, fetch_cost, frequency_source, sharding,
    related_work, short_values, batch_service, ingest, sketch); print the
    resulting table and optionally save it as text/CSV/JSON via ``--out``.
``similarity``
    Top-k *similarity-join* discovery (edit-distance tolerant matching on
    top of the XASH prefilter); ``--sketch-threshold`` engages the
    MinHash-LSH candidate tier of :mod:`repro.sketch` so only tables whose
    estimated containment clears the threshold are verified.
``union``
    Top-k table *union search* (column-domain alignment through the
    inverted index), with the same optional sketch prefilter.
``serve``
    Serve discovery requests over HTTP
    (:class:`~repro.serve.http.DiscoveryHTTPServer`): bounded admission with
    429 + Retry-After backpressure, per-tenant quotas, graceful drain on
    SIGINT/SIGTERM, and ``--execution process`` for the process-per-shard
    pool (scatter/gather over mmap'd segments, optional ``--hedge-after``).
``serve-batch``
    Answer a batch of query tables through a
    :class:`~repro.api.session.DiscoverySession`: a value-sharded index, an
    LRU posting-list cache, and a worker pool.  Prints the per-query top-k
    plus batch throughput and cache statistics (or ``--json``).
``ingest``
    Stream tables from a directory (CSV / JSON-lines, via the lake loaders)
    or a corpus JSON file into a *persisted live index* directory: every
    table is WAL-logged, indexed online into the delta buffer, and sealed /
    merged into columnar segments by the compaction policy.  Re-running with
    the same ``--live-dir`` resumes (crash recovery replays the WAL first);
    already-live table ids are skipped.
``profile``
    Profile a data lake (a directory of CSV / JSON-lines tables or a corpus
    JSON file): table/row/value counts, column type mix, posting-list-length
    skew, and the recommended MATE configuration.
``suggest-key``
    Discover composite-key candidates (unique column combinations) for a CSV
    table, the undocumented-key situation the paper's introduction describes.
``slowlog``
    Fetch a running server's slow-query log (``GET /v1/slow``) and print
    each entry with its trace id, per-stage timings, and budget state.

``discover`` and ``serve`` additionally take ``--trace-out`` (export the
request's span tree as JSONL — one line per span, across every worker
process) and ``--log-json`` (structured JSON logs on stderr, each record
carrying the current ``trace_id``).

Example::

    python -m repro.cli experiment figure5 --queries 2 --scale 0.2
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import __version__
from .api import DiscoveryRequest, DiscoverySession, available_engines
from .config import INDEX_LAYOUTS, MateConfig, ServiceConfig
from .plan import PLANNER_MODES, PlannerOptions
from .datagen import TABLE1_SPECS, build_workload
from .datamodel import QueryTable
from .experiments import (
    ExperimentSettings,
    run_batch_service,
    run_fetch_cost,
    run_figure4,
    run_figure5,
    run_figure6,
    run_frequency_source,
    run_index_generation,
    run_ingest,
    run_init_column,
    run_planner,
    run_pushdown,
    run_related_work,
    run_scaling,
    run_serving,
    run_sharding,
    run_short_values,
    run_sketch,
    run_table1,
    run_table2,
    run_table3,
    run_telemetry,
    run_topk,
)
from .extensions import SimilarityJoinDiscovery, UnionSearch, discover_key_candidates
from .index import build_index, build_sharded_index
from .sketch import SketchOptions, build_sketch_index
from .lake import DataLake, profile_corpus
from .storage import (
    SQLiteBackend,
    list_sharded_indexes,
    load_corpus_json,
    load_sharded_index,
    save_corpus_json,
    save_sharded_index,
    table_from_csv,
)

#: Experiment name -> runner, for the ``experiment`` sub-command.
EXPERIMENT_RUNNERS = {
    "batch_service": run_batch_service,
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "figure4": run_figure4,
    "figure5": run_figure5,
    "figure6": run_figure6,
    "topk": run_topk,
    "init_column": run_init_column,
    "index_generation": run_index_generation,
    "ingest": run_ingest,
    "planner": run_planner,
    "pushdown": run_pushdown,
    "scaling": run_scaling,
    "fetch_cost": run_fetch_cost,
    "frequency_source": run_frequency_source,
    "serving": run_serving,
    "sharding": run_sharding,
    "related_work": run_related_work,
    "short_values": run_short_values,
    "sketch": run_sketch,
    "telemetry": run_telemetry,
}


def _add_sketch_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared approximate-tier flags to a sub-command."""
    parser.add_argument(
        "--sketch-threshold", type=float, default=0.0,
        help="minimum estimated containment a table must reach to survive "
        "the MinHash-LSH prune (0 = exhaustive, byte-identical results)",
    )
    parser.add_argument(
        "--sketch-max-candidates", type=int, default=None,
        help="hard cap on tables surviving the sketch prune "
        "(best by estimated containment)",
    )


def _sketch_options(args: argparse.Namespace) -> SketchOptions:
    """Build :class:`SketchOptions` from the shared CLI flags."""
    return SketchOptions(
        threshold=args.sketch_threshold,
        max_candidates=args.sketch_max_candidates,
    )


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared observability flags to a sub-command."""
    parser.add_argument(
        "--trace-out", type=Path, default=None,
        help="export the request span tree as JSON lines to this file "
        "(one object per span, including shard-worker spans)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit structured JSON logs on stderr, each record carrying "
        "the active trace_id",
    )
    parser.add_argument(
        "--slow-threshold", type=float, default=None,
        help="record requests slower than this many seconds in the "
        "slow-query log (servers expose it at GET /v1/slow)",
    )


def _telemetry_from_args(args: argparse.Namespace):
    """Build a :class:`~repro.telemetry.Telemetry` from the shared flags.

    Returns ``None`` (session default: metrics on, tracing off) when no
    flag engages telemetry, so the zero-overhead path stays the default.
    """
    from .telemetry import Telemetry, configure_json_logging

    if args.log_json:
        configure_json_logging()
    if args.trace_out is None and args.slow_threshold is None:
        return None
    if args.trace_out is not None:
        return Telemetry.with_trace_file(
            args.trace_out, slow_threshold_seconds=args.slow_threshold
        )
    from .telemetry import SlowQueryLog

    return Telemetry(slow_log=SlowQueryLog(threshold_seconds=args.slow_threshold))



def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="mate-repro",
        description="MATE: multi-attribute joinable table discovery (reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic workload")
    generate.add_argument("workload", choices=sorted(TABLE1_SPECS))
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--queries", type=int, default=3)
    generate.add_argument("--scale", type=float, default=0.5)
    generate.add_argument("--corpus-out", type=Path, required=True)
    generate.add_argument("--queries-out", type=Path, default=None)

    index = subparsers.add_parser("index", help="build the extended inverted index")
    index.add_argument("corpus", type=Path, help="corpus JSON file")
    index.add_argument("--database", type=Path, required=True, help="SQLite output")
    index.add_argument("--hash-function", default="xash")
    index.add_argument("--hash-size", type=int, default=128)

    discover = subparsers.add_parser("discover", help="find joinable tables")
    discover.add_argument("corpus", type=Path, help="corpus JSON file")
    discover.add_argument("query", type=Path, help="query table CSV file")
    discover.add_argument("--key", nargs="+", required=True, help="composite key columns")
    discover.add_argument("--database", type=Path, default=None,
                          help="SQLite database with a prebuilt index")
    # No static choices= here: the registry is open (register_engine), so
    # the accepted set is resolved at dispatch time in _command_discover and
    # the help text simply reflects whatever is registered right now.
    discover.add_argument("--engine", "--system", dest="engine",
                          default="mate",
                          help="registered discovery engine, one of: "
                          f"{', '.join(available_engines())} "
                          "(--system is the deprecated alias)")
    discover.add_argument("--k", type=int, default=10)
    discover.add_argument("--hash-size", type=int, default=128)
    discover.add_argument("--deadline-seconds", type=float, default=None,
                          help="per-request wall-clock limit; an expired "
                          "deadline returns the partial top-k")
    discover.add_argument("--max-pl-fetches", type=int, default=None,
                          help="per-request posting-list fetch budget "
                          "(one probe value = one fetch)")
    discover.add_argument("--json", action="store_true",
                          help="print the result as the versioned JSON "
                          "response document instead of text")
    discover.add_argument("--planner-mode", choices=PLANNER_MODES,
                          default="selector",
                          help="seed-column strategy: the classic column "
                          "selector (default), the cost model, cost with "
                          "adaptive mid-run re-planning, or the sketch "
                          "candidate tier (implied by --sketch-threshold)")
    _add_sketch_arguments(discover)
    _add_telemetry_arguments(discover)
    discover.add_argument("--explain", action="store_true",
                          help="print the executed query plan (seed-column "
                          "estimates, per-stage timings, re-plans)")
    discover.add_argument("--layout", choices=INDEX_LAYOUTS, default="columnar",
                          help="posting-list storage layout when the index "
                          "is built in-process (ignored with --database)")

    experiment = subparsers.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument("name", choices=sorted(EXPERIMENT_RUNNERS))
    experiment.add_argument("--seed", type=int, default=7)
    experiment.add_argument("--queries", type=int, default=2)
    experiment.add_argument("--scale", type=float, default=0.25)
    experiment.add_argument("--k", type=int, default=10)
    experiment.add_argument(
        "--out", type=Path, default=None,
        help="also save the result (format from the suffix: .txt/.csv/.json)",
    )

    serve = subparsers.add_parser(
        "serve-batch", help="answer a batch of queries through the service layer"
    )
    serve.add_argument("corpus", type=Path, help="corpus JSON file")
    serve.add_argument(
        "queries", type=Path,
        help="corpus JSON file of query tables (e.g. from generate --queries-out)",
    )
    serve.add_argument("--key", nargs="+", default=None,
                       help="composite key columns (shared by every query table); "
                       "omit to use each query table's first --key-size columns")
    serve.add_argument("--key-size", type=int, default=2,
                       help="key arity when --key is omitted (generated query "
                       "tables store their key columns first)")
    serve.add_argument("--shards", type=int, default=4,
                       help="number of index shards (default 4)")
    serve.add_argument("--cache-capacity", type=int, default=4096,
                       help="LRU posting-list cache capacity (0 disables)")
    serve.add_argument("--workers", type=int, default=1,
                       help="batch scheduling worker threads")
    serve.add_argument("--fetch-workers", type=int, default=1,
                       help="per-fetch shard fan-out worker threads")
    serve.add_argument("--k", type=int, default=10)
    serve.add_argument("--hash-size", type=int, default=128)
    serve.add_argument(
        "--database", type=Path, default=None,
        help="SQLite database to load the sharded index from (built and "
        "saved there on first use)",
    )
    serve.add_argument("--json", action="store_true",
                       help="print the batch as the versioned JSON response "
                       "document instead of text")

    serve_http = subparsers.add_parser(
        "serve", help="serve discovery requests over HTTP"
    )
    serve_http.add_argument("corpus", type=Path, help="corpus JSON file")
    serve_http.add_argument("--host", default="127.0.0.1")
    serve_http.add_argument("--port", type=int, default=8080,
                            help="listen port (0 picks an ephemeral port; "
                            "the bound address is printed on startup)")
    serve_http.add_argument("--execution", choices=("thread", "process"),
                            default="thread",
                            help="how engine=sharded runs its shards: "
                            "in-process threads or one worker process per "
                            "shard over mmap'd segments")
    serve_http.add_argument("--shards", type=int, default=4,
                            help="number of shards (and worker processes "
                            "with --execution process)")
    serve_http.add_argument("--hedge-after", type=float, default=None,
                            help="hedge a shard probe to a mirror worker "
                            "after this many seconds (process execution)")
    serve_http.add_argument("--segments-dir", type=Path, default=None,
                            help="where the process pool writes its .seg "
                            "files (default: a private temp directory)")
    serve_http.add_argument("--cache-capacity", type=int, default=4096,
                            help="LRU posting-list cache capacity (0 disables)")
    serve_http.add_argument("--workers", type=int, default=4,
                            help="session worker threads answering requests")
    serve_http.add_argument("--max-pending", type=int, default=32,
                            help="bounded in-flight queue: requests beyond "
                            "this answer 429 with Retry-After")
    serve_http.add_argument("--max-inflight-per-tenant", type=int, default=8,
                            help="per-tenant (X-Tenant header) in-flight cap")
    serve_http.add_argument("--max-fetches-per-request", type=int, default=None,
                            help="clamp every request's posting-list fetch "
                            "budget to this cap")
    serve_http.add_argument("--retry-after", type=float, default=1.0,
                            help="Retry-After hint (seconds) on 429 responses")
    serve_http.add_argument("--drain-timeout", type=float, default=30.0,
                            help="seconds to wait for in-flight requests on "
                            "SIGINT/SIGTERM before closing anyway")
    serve_http.add_argument("--default-engine", default="mate",
                            help="engine used when a request names none")
    serve_http.add_argument("--hash-size", type=int, default=128)
    _add_telemetry_arguments(serve_http)

    slowlog = subparsers.add_parser(
        "slowlog", help="print a running server's slow-query log"
    )
    slowlog.add_argument(
        "url",
        help="server base URL (e.g. http://127.0.0.1:8080); "
        "GET <url>/v1/slow is fetched",
    )
    slowlog.add_argument("--json", action="store_true",
                         help="print the raw /v1/slow document instead of text")

    ingest = subparsers.add_parser(
        "ingest", help="stream tables into a persisted live index"
    )
    ingest.add_argument(
        "source", type=Path,
        help="directory of CSV/JSON-lines tables, or a corpus JSON file",
    )
    ingest.add_argument(
        "--live-dir", type=Path, required=True,
        help="live index directory (WAL + segments + manifest + corpus)",
    )
    ingest.add_argument("--hash-function", default="xash")
    ingest.add_argument("--hash-size", type=int, default=128)
    ingest.add_argument(
        "--buffer-rows", type=int, default=5000,
        help="seal the delta buffer into a segment at this many rows",
    )
    ingest.add_argument(
        "--max-segments", type=int, default=4,
        help="merge adjacent segments while the stack is deeper than this",
    )
    ingest.add_argument(
        "--no-fsync", action="store_true",
        help="skip per-append WAL fsync (faster, weaker durability)",
    )
    ingest.add_argument(
        "--compact", action="store_true",
        help="fully compact the index (single segment) after ingesting",
    )

    profile = subparsers.add_parser("profile", help="profile a data lake")
    profile.add_argument(
        "source", type=Path,
        help="directory of CSV/JSON-lines tables, or a corpus JSON file",
    )

    similarity = subparsers.add_parser(
        "similarity", help="find similarity-joinable tables (fuzzy matching)"
    )
    similarity.add_argument("corpus", type=Path, help="corpus JSON file")
    similarity.add_argument("query", type=Path, help="query table CSV file")
    similarity.add_argument("--key", nargs="+", required=True,
                            help="composite key columns")
    similarity.add_argument("--k", type=int, default=10)
    similarity.add_argument("--hash-size", type=int, default=128)
    similarity.add_argument("--max-distance", type=int, default=1,
                            help="edit-distance budget per key value")
    similarity.add_argument("--min-bit-overlap", type=float, default=0.6,
                            help="super-key bit-overlap prefilter threshold")
    similarity.add_argument("--json", action="store_true",
                            help="print the ranking as JSON instead of text")
    _add_sketch_arguments(similarity)

    union = subparsers.add_parser(
        "union", help="find unionable tables (column-domain alignment)"
    )
    union.add_argument("corpus", type=Path, help="corpus JSON file")
    union.add_argument("query", type=Path, help="query table CSV file")
    union.add_argument("--columns", nargs="+", default=None,
                       help="query columns to align (default: all)")
    union.add_argument("--k", type=int, default=10)
    union.add_argument("--hash-size", type=int, default=128)
    union.add_argument("--json", action="store_true",
                       help="print the ranking as JSON instead of text")
    _add_sketch_arguments(union)

    suggest = subparsers.add_parser(
        "suggest-key", help="discover composite-key candidates for a CSV table"
    )
    suggest.add_argument("table", type=Path, help="CSV file")
    suggest.add_argument("--max-arity", type=int, default=3)
    suggest.add_argument("--limit", type=int, default=5,
                         help="number of candidates to print")

    return parser


def _command_generate(args: argparse.Namespace) -> int:
    workload = build_workload(
        args.workload, seed=args.seed, num_queries=args.queries, corpus_scale=args.scale
    )
    save_corpus_json(workload.corpus, args.corpus_out)
    print(f"wrote corpus with {len(workload.corpus)} tables to {args.corpus_out}")
    if args.queries_out is not None:
        from .datamodel import TableCorpus

        query_corpus = TableCorpus(name=f"{workload.name}_queries")
        for query in workload.queries:
            query_corpus.add_table(query.table)
        save_corpus_json(query_corpus, args.queries_out)
        print(f"wrote {len(workload.queries)} query tables to {args.queries_out}")
    return 0


def _command_index(args: argparse.Namespace) -> int:
    corpus = load_corpus_json(args.corpus)
    config = MateConfig(hash_size=args.hash_size)
    index = build_index(corpus, config=config, hash_function_name=args.hash_function)
    with SQLiteBackend(args.database) as backend:
        backend.save_corpus(corpus)
        backend.save_index("main", index)
    print(
        f"indexed {len(corpus)} tables ({index.num_posting_items()} postings, "
        f"{args.hash_function}/{args.hash_size}) into {args.database}"
    )
    return 0


def _print_plan_explain(result) -> None:
    """Render the executed query plan of ``result`` as indented text."""
    explanation = result.plan_explain()
    if explanation is None:
        print("plan: (engine ran outside the planner pipeline)")
        return
    print(f"plan: mode={explanation['mode']}, "
          f"seed column {explanation['executed_seed_column']!r} "
          f"(planned {explanation['seed_column']!r})")
    for candidate in [explanation["seed"], *explanation["alternatives"]]:
        marker = "*" if candidate["column"] == explanation["executed_seed_column"] else " "
        print(f"  {marker} column {candidate['column']!r}: "
              f"{candidate['probe_count']} probe values, "
              f"~{candidate['estimated_postings']:.0f} postings "
              f"(cost {candidate['cost']:.1f}, "
              f"sampled {candidate['sampled_values']})")
    for event in explanation["replans"]:
        print(f"  replanned {event['from_column']!r} -> {event['to_column']!r} "
              f"after {event['observed_postings']} postings "
              f"(estimated {event['estimated_postings']:.0f})")
    print(f"  fetched {explanation['observed_postings']} PL items "
          f"({explanation['discarded_postings']} discarded by re-plans)")
    print("stages:")
    for name in explanation["stages"]:
        stats = result.counters.stages.get(name)
        if stats is None:
            continue
        print(f"  {name}: {stats.calls} calls, {stats.seconds * 1000:.2f} ms, "
              f"{stats.items_in} in / {stats.items_out} out")


def _command_discover(args: argparse.Namespace) -> int:
    engines = available_engines()
    if args.engine not in engines:
        print(
            f"unknown engine {args.engine!r}; registered engines: "
            f"{', '.join(engines)}",
            file=sys.stderr,
        )
        return 2
    corpus = load_corpus_json(args.corpus)
    config = MateConfig(
        hash_size=args.hash_size, k=args.k, index_layout=args.layout
    )
    # The backend (when given) stays open for the whole run: storage-aware
    # engines — the "sql" pushdown — keep their accelerator schema in it.
    backend = None
    if args.database is not None and Path(args.database).exists():
        backend = SQLiteBackend(args.database)
        index = backend.load_index("main")
    else:
        index = build_index(corpus, config=config)

    query_table = table_from_csv(10_000_000, args.query)
    query = QueryTable(table=query_table, key_columns=[c.lower() for c in args.key])
    sketch = _sketch_options(args)
    planner_mode = args.planner_mode
    if sketch.enabled and planner_mode == "selector":
        # Non-default sketch knobs imply the sketch pipeline; an explicit
        # cost/adaptive mode conflicts and is rejected by request validation.
        planner_mode = "sketch"
    request = DiscoveryRequest(
        query=query,
        k=args.k,
        engine=args.engine,
        deadline_seconds=args.deadline_seconds,
        max_pl_fetches=args.max_pl_fetches,
        planner=PlannerOptions(mode=planner_mode),
        sketch=sketch,
    )
    telemetry = _telemetry_from_args(args)
    try:
        with DiscoverySession(
            corpus, index, config=config, telemetry=telemetry, storage=backend
        ) as session:
            result = session.discover(request)
    finally:
        if backend is not None:
            backend.close()
    if telemetry is not None:
        telemetry.close()
        if args.trace_out is not None:
            print(f"trace written to {args.trace_out}", file=sys.stderr)

    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    print(f"top-{args.k} joinable tables ({args.engine}, key={query.key_columns}):")
    for entry in result.tables:
        print(f"  table {entry.table_id:>6}  joinability={entry.joinability:>5}  "
              f"{entry.table_name}")
    counters = result.counters
    print(f"rows checked: {counters.rows_checked}, precision: {counters.precision:.2f}, "
          f"runtime: {counters.runtime_seconds:.3f}s")
    if "sketch_candidates" in counters.extra:
        print(f"sketch: {int(counters.extra['sketch_candidates'])} candidate "
              "tables after the LSH prune (estimated recall "
              f"{counters.extra['sketch_estimated_recall']:.4f})")
    if not result.complete:
        reason = "deadline" if counters.deadline_expired else "fetch budget"
        print(f"note: partial result ({reason} limit reached)")
    if args.explain:
        _print_plan_explain(result)
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    settings = ExperimentSettings(
        seed=args.seed, num_queries=args.queries, corpus_scale=args.scale, k=args.k
    )
    result = EXPERIMENT_RUNNERS[args.name](settings)
    print(result.to_text())
    if args.out is not None:
        from .experiments import save_result

        save_result(result, args.out)
        print(f"saved to {args.out}")
    return 0


def _command_serve_batch(args: argparse.Namespace) -> int:
    corpus = load_corpus_json(args.corpus)
    config = MateConfig(hash_size=args.hash_size, k=args.k)
    service_config = ServiceConfig(
        num_shards=args.shards,
        cache_capacity=args.cache_capacity,
        max_workers=args.workers,
        fetch_workers=args.fetch_workers,
    )

    if args.database is not None:
        with SQLiteBackend(args.database) as backend:
            if "main" in list_sharded_indexes(backend):
                index = load_sharded_index(
                    backend, "main", max_workers=args.fetch_workers
                )
                # The stored layout is authoritative: the engine's hash size
                # must match the persisted super keys, and the shard count is
                # whatever the index was saved with.
                if (
                    index.hash_size != args.hash_size
                    or index.num_shards != args.shards
                ):
                    print(
                        f"using stored index layout from {args.database}: "
                        f"{index.num_shards} shards, "
                        f"{index.hash_size}-bit {index.hash_function_name} "
                        "(ignoring --shards/--hash-size)"
                    )
                    config = MateConfig(hash_size=index.hash_size, k=args.k)
            else:
                index = build_sharded_index(
                    corpus, num_shards=args.shards, config=config,
                    max_workers=args.fetch_workers,
                )
                save_sharded_index(backend, "main", index)
    else:
        index = build_sharded_index(
            corpus, num_shards=args.shards, config=config,
            max_workers=args.fetch_workers,
        )

    shared_key = [c.lower() for c in args.key] if args.key else None
    query_corpus = load_corpus_json(args.queries)
    requests = [
        DiscoveryRequest(
            query=QueryTable(
                table=table,
                key_columns=shared_key or table.columns[: args.key_size],
            ),
            k=args.k,
        )
        for table in query_corpus
    ]

    with DiscoverySession(
        corpus, index, config=config, service_config=service_config
    ) as session:
        batch = session.discover_batch(requests)

    if args.json:
        print(json.dumps(batch.to_dict(), indent=2))
        return 0
    print(f"served {len(batch)} queries over {index.num_shards} shards:")
    for request, result in zip(requests, batch):
        ranked = ", ".join(
            f"{entry.table_id}:{entry.joinability}" for entry in result.tables
        )
        print(f"  {request.query.table.name} (key={request.query.key_columns}): "
              f"top-{args.k} [{ranked}]")
    stats = batch.stats
    print(
        f"batch: {stats.batch_seconds:.3f}s, "
        f"{stats.queries_per_second:.1f} queries/s, "
        f"{stats.distinct_probe_values} distinct probe values "
        f"({stats.duplicate_probe_values} deduplicated)"
    )
    print(
        f"cache: {stats.cache.hits} hits / {stats.cache.misses} misses "
        f"(hit rate {stats.cache.hit_rate:.2f}), shard sizes {index.shard_sizes()}"
    )
    return 0


def _command_ingest(args: argparse.Namespace) -> int:
    import time

    from .datamodel import TableCorpus
    from .ingest import CompactionPolicy, Compactor, LiveIndex

    source = Path(args.source)
    if source.is_dir():
        incoming = DataLake.from_directory(source).corpus
    else:
        incoming = load_corpus_json(source)

    config = MateConfig(hash_size=args.hash_size)
    live = LiveIndex.open(
        args.live_dir,
        config=config,
        hash_function_name=args.hash_function,
        fsync=not args.no_fsync,
    )
    corpus_path = Path(args.live_dir) / "corpus.json"
    corpus = (
        load_corpus_json(corpus_path)
        if corpus_path.exists()
        else TableCorpus(name=incoming.name)
    )
    # Tables acknowledged before a crash live in the WAL, not yet in the
    # persisted corpus — put them back.
    for table in live.recovered_tables():
        if table.table_id not in corpus:
            corpus.add_table(table)

    compactor = Compactor(
        live,
        CompactionPolicy(
            max_buffer_rows=args.buffer_rows, max_segments=args.max_segments
        ),
    )
    ingested = rows = skipped = 0
    started = time.perf_counter()
    with DiscoverySession(corpus, live, config=config) as session:
        for table in incoming:
            if live.has_table(table.table_id):
                # Already live (typically sealed before a crash that beat the
                # corpus save): repair the persisted corpus instead of
                # leaving an index entry without its rows.
                if table.table_id not in corpus:
                    corpus.add_table(table)
                skipped += 1
                continue
            rows += session.ingest(table)
            ingested += 1
            compactor.run_once()
        if args.compact:
            live.compact()
        else:
            live.seal()
        save_corpus_json(session.corpus, corpus_path)
    elapsed = time.perf_counter() - started
    live.close()

    rate = rows / elapsed if elapsed > 0 else 0.0
    print(
        f"ingested {ingested} tables ({rows} rows, {skipped} already live) "
        f"in {elapsed:.3f}s ({rate:.0f} rows/s)"
    )
    print(
        f"live index: {live.num_posting_items()} postings, "
        f"{live.num_segments} segments (generation {live.generation}), "
        f"{live.buffer_rows} buffered rows, "
        f"{compactor.seals} seals / {compactor.merges} merges"
    )
    print(f"state persisted under {args.live_dir}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from .serve import AdmissionController, DiscoveryHTTPServer, TenantQuota
    from .serve.http import run_server
    from .serve.pool import ServeConfig

    corpus = load_corpus_json(args.corpus)
    config = MateConfig(hash_size=args.hash_size)
    service_config = ServiceConfig(
        num_shards=args.shards,
        cache_capacity=args.cache_capacity,
        max_workers=args.workers,
    )
    serve_config = None
    if args.execution == "process":
        serve_config = ServeConfig(
            num_shards=args.shards,
            hedge_after_seconds=args.hedge_after,
            segments_dir=args.segments_dir,
        )
    telemetry = _telemetry_from_args(args)
    session = DiscoverySession(
        corpus,
        config=config,
        service_config=service_config,
        execution=args.execution,
        serve_config=serve_config,
        telemetry=telemetry,
    )
    admission = AdmissionController(
        max_pending=args.max_pending,
        tenant_quota=TenantQuota(
            max_inflight=args.max_inflight_per_tenant,
            max_pl_fetches_per_request=args.max_fetches_per_request,
        ),
        retry_after_seconds=args.retry_after,
    )
    server = DiscoveryHTTPServer(
        session,
        admission=admission,
        host=args.host,
        port=args.port,
        default_engine=args.default_engine,
        drain_timeout=args.drain_timeout,
    )
    print(
        f"loaded corpus with {len(corpus)} tables; execution={args.execution}, "
        f"{args.shards} shards",
        flush=True,
    )
    try:
        return run_server(server)
    finally:
        session.close()
        if telemetry is not None:
            telemetry.close()


def _command_profile(args: argparse.Namespace) -> int:
    source = Path(args.source)
    if source.is_dir():
        corpus = DataLake.from_directory(source).corpus
    else:
        corpus = load_corpus_json(source)
    profile = profile_corpus(corpus)
    print(f"profile of {corpus.name!r}:")
    for key, value in profile.as_dict().items():
        print(f"  {key}: {value}")
    config = profile.recommended_config()
    print("recommended configuration:")
    print(f"  hash_size: {config.hash_size}")
    print(f"  alpha (1-bits per hash): {config.alpha}")
    print(f"  beta (bits per character segment): {config.beta}")
    print(f"  length segment bits: {config.length_segment_bits}")
    return 0


def _sketch_store_for(args: argparse.Namespace, corpus):
    """Build the corpus sketch store when the CLI flags enable the tier."""
    options = _sketch_options(args)
    if not options.enabled:
        return None, options
    return build_sketch_index(corpus), options


def _command_similarity(args: argparse.Namespace) -> int:
    from .metrics import DiscoveryCounters

    corpus = load_corpus_json(args.corpus)
    config = MateConfig(hash_size=args.hash_size, k=args.k)
    index = build_index(corpus, config=config)
    sketch_index, sketch_options = _sketch_store_for(args, corpus)
    discovery = SimilarityJoinDiscovery(
        corpus,
        index,
        config=config,
        max_distance=args.max_distance,
        min_bit_overlap=args.min_bit_overlap,
        sketch_index=sketch_index,
        sketch_options=sketch_options,
    )
    query_table = table_from_csv(10_000_000, args.query)
    query = QueryTable(table=query_table, key_columns=[c.lower() for c in args.key])
    counters = DiscoveryCounters()
    results = discovery.discover(query, k=args.k, counters=counters)

    if args.json:
        print(json.dumps({
            "tables": [result.as_dict() for result in results],
            "sketch_candidates": counters.extra.get("sketch_candidates"),
            "sketch_estimated_recall": counters.extra.get(
                "sketch_estimated_recall"
            ),
        }, indent=2))
        return 0
    print(f"top-{args.k} similarity-joinable tables "
          f"(key={query.key_columns}, max_distance={args.max_distance}):")
    for result in results:
        name = corpus.get_table(result.table_id).name
        print(f"  table {result.table_id:>6}  "
              f"similarity={result.similarity_joinability:>5}  "
              f"exact={result.exact_joinability:>5}  {name}")
    if "sketch_candidates" in counters.extra:
        print(f"sketch: {int(counters.extra['sketch_candidates'])} candidate "
              "tables after the LSH prune (estimated recall "
              f"{counters.extra['sketch_estimated_recall']:.4f})")
    return 0


def _command_union(args: argparse.Namespace) -> int:
    corpus = load_corpus_json(args.corpus)
    config = MateConfig(hash_size=args.hash_size, k=args.k)
    index = build_index(corpus, config=config)
    sketch_index, sketch_options = _sketch_store_for(args, corpus)
    search = UnionSearch(
        corpus, index, sketch_index=sketch_index, sketch_options=sketch_options
    )
    query_table = table_from_csv(10_000_000, args.query)
    columns = [c.lower() for c in args.columns] if args.columns else None
    candidates = search.top_k_unionable(query_table, k=args.k, columns=columns)

    if args.json:
        print(json.dumps({
            "tables": [
                {
                    "table_id": candidate.table_id,
                    "unionability": candidate.unionability,
                    "alignment": list(candidate.alignment),
                }
                for candidate in candidates
            ],
        }, indent=2))
        return 0
    aligned_columns = columns or [c.lower() for c in query_table.columns]
    print(f"top-{args.k} unionable tables (columns={aligned_columns}):")
    for candidate in candidates:
        table = corpus.get_table(candidate.table_id)
        pairs = ", ".join(
            f"{aligned_columns[q]}->{table.columns[c]}"
            for q, c in candidate.alignment
            if c is not None
        )
        print(f"  table {candidate.table_id:>6}  "
              f"unionability={candidate.unionability:.3f}  "
              f"{table.name}  [{pairs}]")
    return 0


def _command_slowlog(args: argparse.Namespace) -> int:
    import urllib.error
    import urllib.request

    url = args.url.rstrip("/") + "/v1/slow"
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            document = json.loads(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError) as exc:
        print(f"cannot fetch {url}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(document, indent=2))
        return 0
    entries = document.get("slow_queries", [])
    print(
        f"slow-query log: {document.get('recorded_total', 0)} recorded over "
        f"{document.get('threshold_seconds')}s, "
        f"{len(entries)}/{document.get('capacity')} retained (newest first)"
    )
    for entry in entries:
        trace = entry.get("trace_id") or "-"
        print(
            f"  [{trace}] {entry.get('request')!r} via {entry.get('engine')}: "
            f"{entry.get('seconds', 0.0):.3f}s"
        )
        for name, stats in (entry.get("stages") or {}).items():
            print(
                f"      {name}: {stats.get('calls', 0)} calls, "
                f"{stats.get('seconds', 0.0) * 1000:.2f} ms, "
                f"{stats.get('items_in', 0)} in / {stats.get('items_out', 0)} out"
            )
        budget = entry.get("budget") or {}
        if budget:
            print(
                "      budget: "
                f"max_pl_fetches={budget.get('max_pl_fetches')}, "
                f"remaining={budget.get('remaining_pl_fetches')}, "
                f"exhausted={budget.get('exhausted')}, "
                f"expired={budget.get('expired')}"
            )
    return 0


def _command_suggest_key(args: argparse.Namespace) -> int:
    table = table_from_csv(0, args.table)
    candidates = discover_key_candidates(table, max_arity=args.max_arity)
    if not candidates:
        print(f"no composite-key candidate found for {args.table}")
        return 1
    print(f"composite-key candidates for {args.table} (best first):")
    for candidate in candidates[: args.limit]:
        marker = "UCC" if candidate.is_unique else f"{candidate.uniqueness:.2f}"
        print(f"  [{marker:>4}] {', '.join(candidate.columns)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "index": _command_index,
        "discover": _command_discover,
        "experiment": _command_experiment,
        "serve": _command_serve,
        "serve-batch": _command_serve_batch,
        "ingest": _command_ingest,
        "profile": _command_profile,
        "similarity": _command_similarity,
        "union": _command_union,
        "suggest-key": _command_suggest_key,
        "slowlog": _command_slowlog,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
