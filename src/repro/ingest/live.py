"""The live (online-mutable) index: delta buffer + immutable segment stack.

:class:`LiveIndex` is the log-structured front of the ingestion subsystem.
Writes (``add_table`` / ``remove_table``) are logged to the
:class:`~repro.ingest.wal.WriteAheadLog`, applied to the mutable
:class:`~repro.ingest.buffer.IngestBuffer`, and periodically *sealed* into
immutable columnar :class:`~repro.ingest.segments.Segment` objects that the
compactor merges in the background.  Reads see the union of the segment
stack (oldest to newest) and the buffer, with tombstones masking removed
tables — behind exactly the ``fetch`` / ``fetch_batch`` query surface of
:class:`~repro.index.inverted.InvertedIndex`, so the discovery engine, the
posting-list cache, and the session facade all run unchanged on top.

**Snapshot isolation.**  :meth:`LiveIndex.snapshot` returns a
:class:`LiveSnapshot` pinning one *generation*: the segment stack and the
tombstone set as of that instant.  Every read entry point of the live index
takes an implicit snapshot, so a single ``fetch_batch`` — the one index
round-trip of Algorithm 1's initialization step — is always internally
consistent, and a discovery run started before a compaction finishes against
the pre-compaction stack (sealed segments stay readable forever; compaction
swaps the stack, it never destroys components a snapshot still references).
Results are therefore identical whether or not a seal or merge lands
mid-query.

**Ordering contract.**  Visible postings of one value are returned oldest
component first, insertion order within a component — i.e. ascending add
sequence.  A bulk :func:`~repro.index.builder.build_index` over the
surviving tables (added to the corpus in the same ascending add-sequence
order) yields byte-identical fetch output, which is what makes
``engine="live"`` top-k results equal to a fresh bulk build.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from ..config import MateConfig
from ..datamodel import MISSING, Table
from ..exceptions import IndexClosedError, IndexError_, StorageError
from ..index import FetchBlock, FetchedItem, InvertedIndex, compute_table_runs
from ..sketch import SKETCH_FILE_STEM, SketchIndex
from ..storage.paged import SEGMENT_SUFFIX, load_segment, write_segment
from ..storage.serialization import load_index_json
from .buffer import IngestBuffer
from .segments import Segment, merge_segments
from .wal import WriteAheadLog, repair_torn_tail, replay_wal

#: Manifest payload version of a persisted live index directory.
LIVE_FORMAT_VERSION: int = 1

#: File names inside a live index directory.
MANIFEST_FILE = "manifest.json"
WAL_FILE = "wal.jsonl"


def _segment_file(generation: int) -> str:
    """File name of a newly persisted segment (binary mmap format)."""
    return f"segment-{generation:06d}{SEGMENT_SUFFIX}"


def _load_segment_index(path: Path) -> InvertedIndex:
    """Open one persisted segment: mmap ``.seg``, legacy JSON otherwise.

    Directories written before the binary format keep loading — the
    manifest records each segment's file name, so mixed stacks (old
    ``.json`` next to new ``.seg``) recover fine and convert to ``.seg``
    at the next seal or merge touching them.
    """
    if path.suffix == SEGMENT_SUFFIX:
        return load_segment(path)
    return load_index_json(path)


def _fsync_path(path: Path) -> None:
    """fsync one file (or directory) by path."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _filter_block(block: FetchBlock, masked: frozenset[int]) -> FetchBlock | None:
    """Drop the runs of masked tables from a fetch block (``None`` if empty).

    When the source block carries a packed super-key buffer, the filtered
    block keeps a packed buffer too (slice copies), so the vectorized
    prefilter kernels stay engaged across the live index's masking path.
    """
    table_ids: list[int] = []
    column_indexes: list[int] = []
    row_indexes: list[int] = []
    width = block.key_width
    source = block.super_key_bytes
    packed: bytearray | None = bytearray() if source is not None else None
    super_keys: list[int] = []
    for table_id, start, end in block.runs:
        if table_id in masked:
            continue
        table_ids.extend(block.table_ids[start:end])
        column_indexes.extend(block.column_indexes[start:end])
        row_indexes.extend(block.row_indexes[start:end])
        if packed is not None:
            packed += source[start * width : end * width]
        else:
            super_keys.extend(block.super_keys[start:end])
    if not table_ids:
        return None
    return FetchBlock(
        block.value,
        table_ids,
        column_indexes,
        row_indexes,
        None if packed is not None else super_keys,
        compute_table_runs(table_ids),
        super_key_bytes=bytes(packed) if packed is not None else None,
        key_width=width if packed is not None else None,
    )


def _concat_blocks(value: str, blocks: Sequence[FetchBlock]) -> FetchBlock:
    """Concatenate the per-component blocks of one value (component order).

    The packed super-key buffer survives concatenation when every component
    block carries one of the same width; otherwise the merged block degrades
    to the integer column.
    """
    table_ids: list[int] = []
    column_indexes: list[int] = []
    row_indexes: list[int] = []
    widths = {block.key_width for block in blocks}
    packable = len(widths) == 1 and all(
        block.super_key_bytes is not None for block in blocks
    )
    width = widths.pop() if packable else None
    packed: bytearray | None = bytearray() if packable else None
    super_keys: list[int] = []
    for block in blocks:
        table_ids.extend(block.table_ids)
        column_indexes.extend(block.column_indexes)
        row_indexes.extend(block.row_indexes)
        if packed is not None:
            packed += block.super_key_bytes
        else:
            super_keys.extend(block.super_keys)
    return FetchBlock(
        value,
        table_ids,
        column_indexes,
        row_indexes,
        None if packed is not None else super_keys,
        compute_table_runs(table_ids),
        super_key_bytes=bytes(packed) if packed is not None else None,
        key_width=width,
    )


class LiveSnapshot:
    """A pinned, read-only view of one live-index generation.

    Holds the component stack (segments oldest to newest, then the write
    buffer) with per-component masked-table sets frozen at snapshot time.
    Segments are immutable, so a snapshot survives any number of later seals
    and merges unchanged; only writes landing in the *buffer* after the
    snapshot remain visible through it (the buffer is shared, not copied —
    the isolation contract covers compaction, not concurrent appends).
    """

    __slots__ = ("generation", "hash_function_name", "hash_size", "_components")

    def __init__(
        self,
        generation: int,
        components: tuple[tuple[InvertedIndex, dict[int, int], frozenset[int]], ...],
        hash_function_name: str,
        hash_size: int,
    ):
        #: The live index generation this snapshot pinned.
        self.generation = generation
        self.hash_function_name = hash_function_name
        self.hash_size = hash_size
        # (index, table_seqs, masked) per component, oldest first.
        self._components = components

    # ------------------------------------------------------------------
    # Fetching (the Algorithm 1 surface)
    # ------------------------------------------------------------------
    def fetch_batch(self, values: Iterable[str]) -> list[FetchBlock]:
        """Fetch struct-of-arrays blocks: one per probed value, merged
        across components in ascending add-sequence order.

        Same contract as :meth:`InvertedIndex.fetch_batch
        <repro.index.inverted.InvertedIndex.fetch_batch>` (dedup, skip
        missing, one block per value with postings) — a value living in a
        single component is returned zero-copy.
        """
        ordered = [v for v in dict.fromkeys(values) if v != MISSING]
        if not ordered:
            return []
        per_value: dict[str, list[FetchBlock]] = {v: [] for v in ordered}
        for index, _table_seqs, masked in self._components:
            for block in index.fetch_batch(ordered):
                if masked and any(run[0] in masked for run in block.runs):
                    filtered = _filter_block(block, masked)
                    if filtered is None:
                        continue
                    block = filtered
                per_value[block.value].append(block)
        merged: list[FetchBlock] = []
        for value in ordered:
            blocks = per_value[value]
            if not blocks:
                continue
            merged.append(
                blocks[0] if len(blocks) == 1 else _concat_blocks(value, blocks)
            )
        return merged

    def fetch(self, values: Iterable[str]) -> list[FetchedItem]:
        """Fetch classic per-item records (flattened :meth:`fetch_batch`)."""
        fetched: list[FetchedItem] = []
        for block in self.fetch_batch(values):
            fetched.extend(block)
        return fetched

    def fetch_grouped_by_table(
        self, values: Iterable[str]
    ) -> dict[int, list[FetchedItem]]:
        """Fetch PL items and group them by table id."""
        grouped: dict[int, list[FetchedItem]] = {}
        for item in self.fetch(values):
            grouped.setdefault(item.table_id, []).append(item)
        return grouped

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def posting_list_length(self, value: str) -> int:
        """Number of visible PL items for ``value`` across all components."""
        total = 0
        for index, _table_seqs, masked in self._components:
            if not masked:
                total += index.posting_list_length(value)
                continue
            columns = index.posting_columns(value)
            if columns is None:
                continue
            total += sum(
                end - start
                for table_id, start, end in columns.runs()
                if table_id not in masked
            )
        return total

    def posting_count_for_values(self, values: Sequence[str]) -> int:
        """Total visible PL items the given probe values would fetch."""
        return sum(
            self.posting_list_length(value)
            for value in dict.fromkeys(values)
            if value != MISSING
        )

    def posting_list(self, value: str):
        """Visible postings of ``value`` as classic per-item records."""
        items = []
        for index, _table_seqs, masked in self._components:
            for item in index.posting_list(value):
                if item.table_id not in masked:
                    items.append(item)
        return items

    def super_key(self, table_id: int, row_index: int) -> int:
        """Super key of a visible row (newest visible copy wins)."""
        for index, table_seqs, masked in reversed(self._components):
            if table_id in table_seqs and table_id not in masked:
                if index.has_row(table_id, row_index):
                    return index.super_key(table_id, row_index)
        raise IndexError_(
            f"no live super key stored for table {table_id} row {row_index}"
        )

    def has_row(self, table_id: int, row_index: int) -> bool:
        """Whether a visible component stores a super key for the row."""
        return any(
            table_id in table_seqs
            and table_id not in masked
            and index.has_row(table_id, row_index)
            for index, table_seqs, masked in self._components
        )

    def indexed_tables(self) -> set[int]:
        """Ids of every visible table."""
        visible: set[int] = set()
        for _index, table_seqs, masked in self._components:
            visible.update(tid for tid in table_seqs if tid not in masked)
        return visible

    def values(self) -> Iterator[str]:
        """Iterate over the distinct visible values (component order)."""
        seen: dict[str, None] = {}
        for index, _table_seqs, masked in self._components:
            for value in index.values():
                if value in seen:
                    continue
                if masked and not self.posting_list_length(value):
                    continue
                seen[value] = None
        return iter(seen)

    def __contains__(self, value: str) -> bool:
        return self.posting_list_length(value) > 0

    def __len__(self) -> int:
        """Number of distinct visible values."""
        return sum(1 for _ in self.values())

    def num_posting_items(self) -> int:
        """Total visible PL items."""
        total = 0
        for index, _table_seqs, masked in self._components:
            if not masked:
                total += index.num_posting_items()
            else:
                for value in index.values():
                    columns = index.posting_columns(value)
                    if columns is None:
                        continue
                    total += sum(
                        end - start
                        for table_id, start, end in columns.runs()
                        if table_id not in masked
                    )
        return total

    def num_rows(self) -> int:
        """Total rows of visible tables (rows owning a super key)."""
        total = 0
        for index, _table_seqs, masked in self._components:
            if not masked:
                total += index.num_rows()
            else:
                total += sum(
                    1
                    for table_id, _row, _sk in index.iter_super_keys()
                    if table_id not in masked
                )
        return total


class LiveIndex:
    """Online-mutable index: WAL + delta buffer + immutable segment stack.

    Parameters
    ----------
    config:
        The :class:`~repro.config.MateConfig` (hash size etc.) shared with
        the discovery engines.
    hash_function_name:
        Hash function for per-row super keys (default XASH).
    directory:
        Optional persistence root.  When given, mutations are written ahead
        to ``wal.jsonl``, sealed segments are saved as binary mmap ``.seg``
        files (:func:`repro.storage.paged.write_segment`), and
        ``manifest.json`` records the stack — reopening the directory
        recovers the exact pre-crash state (manifest + WAL replay) with
        near-zero startup cost: segments are mapped, not parsed, and their
        pages are shared with any other process mapping the same files.
        Legacy JSON segments from older directories keep loading.
        ``None`` runs fully in memory (no durability).
    fsync:
        Whether WAL appends fsync (see :class:`~repro.ingest.wal.WriteAheadLog`).
    """

    #: Posting layout presented to consumers (segments and buffer are packed).
    layout = "columnar"

    def __init__(
        self,
        config: MateConfig | None = None,
        hash_function_name: str = "xash",
        directory: str | Path | None = None,
        fsync: bool = True,
    ):
        self.config = config or MateConfig()
        self.hash_function_name = hash_function_name
        self.hash_size = self.config.hash_size
        self._segments: tuple[Segment, ...] = ()
        self._buffer = IngestBuffer(
            config=self.config, hash_function_name=hash_function_name
        )
        self._tombstones: dict[int, int] = {}
        self._seq = 0
        # Highest sequence number fully covered by persisted segments and
        # tombstones; the manifest records THIS (never the live counter), so
        # replay can never skip a WAL record whose effect only lives in the
        # (volatile) buffer.
        self._checkpoint_seq = 0
        self._generation = 0
        self._lock = threading.RLock()
        self._closed = False
        self._recovered: list[Table] = []
        # The MinHash-LSH sketch store of the approximate candidate tier,
        # kept incrementally fresh by every add/remove (and persisted at
        # each seal/merge in directory mode).  ``_sketch_stale`` marks a
        # recovered directory whose sealed tables predate sketch
        # persistence: their column sketches cannot be rebuilt from
        # postings alone, so consumers must fall back to a corpus build.
        self._sketch = SketchIndex()
        self._sketch_stale = False
        self.directory = Path(directory) if directory is not None else None
        self._fsync = fsync
        self._wal: WriteAheadLog | None = None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._recover()
            # A torn in-flight record was skipped by replay; cut it off
            # physically so the reopened log never appends onto its line.
            repair_torn_tail(self.directory / WAL_FILE)
            self._wal = WriteAheadLog(self.directory / WAL_FILE, fsync=fsync)

    @classmethod
    def open(
        cls,
        directory: str | Path,
        config: MateConfig | None = None,
        hash_function_name: str = "xash",
        fsync: bool = True,
    ) -> "LiveIndex":
        """Open (creating if needed) a persisted live index directory."""
        return cls(
            config=config,
            hash_function_name=hash_function_name,
            directory=directory,
            fsync=fsync,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Refuse further writes and release the WAL handle (idempotent).

        Reads stay available — a closed live index degrades to a static one.
        """
        with self._lock:
            self._closed = True
            if self._wal is not None:
                self._wal.close()

    def __enter__(self) -> "LiveIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _ensure_open(self, operation: str) -> None:
        if self._closed:
            raise IndexClosedError(
                f"{operation} on a closed live index; reopen the directory "
                "to resume ingestion"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Bumped by every seal and merge (what snapshots pin)."""
        return self._generation

    @property
    def sequence(self) -> int:
        """Sequence number of the last accepted operation."""
        return self._seq

    @property
    def num_segments(self) -> int:
        """Number of immutable segments currently stacked."""
        return len(self._segments)

    def segment_sizes(self) -> list[int]:
        """PL-item count of each stacked segment (oldest first)."""
        with self._lock:
            return [len(segment) for segment in self._segments]

    @property
    def buffer_rows(self) -> int:
        """Rows currently in the mutable delta buffer."""
        return self._buffer.num_rows()

    @property
    def buffer_tables(self) -> int:
        """Tables currently in the mutable delta buffer."""
        return len(self._buffer)

    @property
    def tombstones(self) -> dict[int, int]:
        """A copy of the live tombstone map (table id -> remove sequence)."""
        with self._lock:
            return dict(self._tombstones)

    def sketch_index(self) -> SketchIndex | None:
        """The live MinHash-LSH sketch store, or ``None`` when unusable.

        The store mirrors the visible table set exactly: writes update it
        inline, WAL replay re-adds recovered tables, and seals/merges
        persist it next to the segments (``sketches.json`` /
        ``sketches.bin``).  ``None`` means the directory predates sketch
        persistence (or its sketch file was corrupt), so sealed tables are
        missing from the store — callers must build from the corpus
        instead of silently losing recall.
        """
        if self._sketch_stale:
            return None
        return self._sketch

    def recovered_tables(self) -> list[Table]:
        """Tables replayed from the WAL when the directory was opened.

        These are the operations that were acknowledged but not yet sealed
        when the previous process died; callers rebuilding a corpus add them
        back (the sealed part of the corpus is persisted separately).
        """
        return list(self._recovered)

    def has_table(self, table_id: int) -> bool:
        """Whether ``table_id`` is currently visible (added, not removed)."""
        with self._lock:
            return self._visible_locked(table_id)

    def table_sequences(self) -> dict[int, int]:
        """Visible table id -> add sequence number.

        Sorting the ids by sequence reproduces the surviving-table ingest
        order — the order in which a bulk rebuild must add them to yield
        byte-identical fetch output (the equivalence contract).
        """
        with self._lock:
            sequences: dict[int, int] = {}
            for segment in self._segments:
                for table_id, add_seq in segment.table_seqs.items():
                    if self._tombstones.get(table_id, -1) < add_seq:
                        sequences[table_id] = add_seq
            sequences.update(self._buffer.table_seqs)
            return sequences

    def _visible_locked(self, table_id: int) -> bool:
        if table_id in self._buffer.table_seqs:
            return True
        tombstone = self._tombstones.get(table_id, -1)
        return any(
            segment.table_seqs.get(table_id, -1) > tombstone
            for segment in self._segments
        )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def add_table(self, table: Table) -> int:
        """Ingest one table (WAL first, then the delta buffer); returns rows.

        Raises :class:`~repro.exceptions.IndexError_` when the table id is
        already visible — remove it first; re-adding after removal is fine.
        """
        with self._lock:
            self._ensure_open("add_table")
            if self._visible_locked(table.table_id):
                raise IndexError_(
                    f"table {table.table_id} is already live; remove it "
                    "before re-adding"
                )
            seq = self._seq + 1
            if self._wal is not None:
                self._wal.append_add_table(seq, table)
            self._seq = seq
            rows = self._buffer.add_table(table, seq)
            self._sketch.add_table(table)
            return rows

    def remove_table(self, table_id: int) -> int:
        """Remove a table from the live view (tombstone + buffer purge).

        Buffered copies are physically dropped (their PL-item count is
        returned); segment-resident copies are masked by a tombstone and
        physically purged at the next merge.  Removing a table that is not
        visible is a no-op returning 0.
        """
        with self._lock:
            self._ensure_open("remove_table")
            if not self._visible_locked(table_id):
                return 0
            seq = self._seq + 1
            if self._wal is not None:
                self._wal.append_remove_table(seq, table_id)
            self._seq = seq
            return self._apply_remove_locked(table_id, seq)

    def _apply_remove_locked(self, table_id: int, seq: int) -> int:
        """Apply one remove operation (shared by the write path and replay)."""
        removed = self._buffer.drop_table(table_id)
        tombstone = self._tombstones.get(table_id, -1)
        if any(
            segment.table_seqs.get(table_id, -1) > tombstone
            for segment in self._segments
        ):
            self._tombstones[table_id] = seq
        self._sketch.remove_table(table_id)
        return removed

    # ------------------------------------------------------------------
    # Compaction primitives (driven by repro.ingest.compactor)
    # ------------------------------------------------------------------
    def seal(self) -> Segment | None:
        """Freeze the buffer into a new immutable segment (``None`` if empty).

        In directory mode the segment is persisted, the manifest rewritten,
        and the WAL truncated — sealed data no longer needs the log.
        """
        with self._lock:
            self._ensure_open("seal")
            if len(self._buffer) == 0:
                return None
            old = self._buffer
            index = old.seal()
            self._generation += 1
            segment = Segment(
                index=index,
                table_seqs=old.table_seqs,
                generation=self._generation,
            )
            self._segments = self._segments + (segment,)
            self._buffer = IngestBuffer(
                config=self.config,
                hash_function_name=self.hash_function_name,
                builder=old.builder,
            )
            # The buffer is drained: every operation up to the current
            # sequence is now represented by segments + tombstones, so the
            # checkpoint advances and the WAL can be truncated.
            self._checkpoint_seq = self._seq
            if self.directory is not None:
                # Durability order matters: segment, then sketches, then
                # manifest, then WAL truncation — the log may only shrink
                # once its records (including their sketches, which replay
                # would otherwise rebuild from the log) are fully
                # represented on disk elsewhere.
                path = self.directory / _segment_file(segment.generation)
                write_segment(segment.index, path, fsync=self._fsync)
                self._persist_sketches_locked()
                self._write_manifest_locked()
                assert self._wal is not None
                self._wal.truncate()
            return segment

    def merge(self, start: int = 0, end: int | None = None) -> Segment | None:
        """Merge the contiguous segment slice ``[start:end]`` into one.

        Tombstoned tables are physically purged; tombstones masking nothing
        afterwards are dropped.  Returns the merged segment, or ``None``
        when the slice holds fewer than two segments or the stack changed
        under a concurrent merge (the caller simply retries).
        """
        with self._lock:
            self._ensure_open("merge")
            slice_ = self._segments[start:end]
            tombstones = dict(self._tombstones)
        if len(slice_) < 2:
            return None
        # Build outside the lock: merging is the expensive part and sealed
        # segments are immutable, so concurrent reads and writes proceed.
        merged = merge_segments(slice_, tombstones, generation=0)
        with self._lock:
            self._ensure_open("merge")
            current = self._segments[start : start + len(slice_)]
            if tuple(current) != tuple(slice_):
                return None  # stack changed underneath; caller retries
            self._generation += 1
            merged.generation = self._generation
            self._segments = (
                self._segments[:start]
                + (merged,)
                + self._segments[start + len(slice_) :]
            )
            self._purge_tombstones_locked()
            if self.directory is not None:
                # Merged segment durable first, then the manifest that
                # references it; only then may the superseded files go.
                path = self.directory / _segment_file(merged.generation)
                write_segment(merged.index, path, fsync=self._fsync)
                self._persist_sketches_locked()
                self._write_manifest_locked()
                for segment in slice_:
                    # The superseded file may predate the binary format;
                    # unlinking a still-mapped .seg is safe (POSIX keeps
                    # the pages alive for snapshots that pin the segment).
                    base = f"segment-{segment.generation:06d}"
                    for suffix in (SEGMENT_SUFFIX, ".json"):
                        (self.directory / f"{base}{suffix}").unlink(
                            missing_ok=True
                        )
            return merged

    def compact(self) -> int:
        """Seal the buffer and merge the whole stack into one segment.

        Returns the resulting segment count (0 for an empty index).
        """
        self.seal()
        while self.num_segments > 1:
            if self.merge(0, None) is None:
                break
        return self.num_segments

    def _purge_tombstones_locked(self) -> None:
        components = [s.table_seqs for s in self._segments]
        components.append(self._buffer.table_seqs)
        self._tombstones = {
            table_id: tombstone
            for table_id, tombstone in self._tombstones.items()
            if any(
                table_seqs.get(table_id, tombstone + 1) <= tombstone
                for table_seqs in components
            )
        }

    # ------------------------------------------------------------------
    # Snapshots and the read surface
    # ------------------------------------------------------------------
    def snapshot(self) -> LiveSnapshot:
        """Pin the current generation (segment stack + tombstones)."""
        with self._lock:
            components = tuple(
                (
                    segment.index,
                    segment.table_seqs,
                    frozenset(segment.masked_tables(self._tombstones)),
                )
                for segment in self._segments
            ) + ((self._buffer.index, self._buffer.table_seqs, frozenset()),)
            return LiveSnapshot(
                generation=self._generation,
                components=components,
                hash_function_name=self.hash_function_name,
                hash_size=self.hash_size,
            )

    def fetch_batch(self, values: Iterable[str]) -> list[FetchBlock]:
        """Snapshot-consistent :meth:`LiveSnapshot.fetch_batch`."""
        return self.snapshot().fetch_batch(values)

    def fetch(self, values: Iterable[str]) -> list[FetchedItem]:
        """Snapshot-consistent :meth:`LiveSnapshot.fetch`."""
        return self.snapshot().fetch(values)

    def fetch_grouped_by_table(
        self, values: Iterable[str]
    ) -> dict[int, list[FetchedItem]]:
        """Snapshot-consistent grouped fetch."""
        return self.snapshot().fetch_grouped_by_table(values)

    def posting_list_length(self, value: str) -> int:
        """Visible PL items for ``value``."""
        return self.snapshot().posting_list_length(value)

    def posting_count_for_values(self, values: Sequence[str]) -> int:
        """Visible PL items the given probe values would fetch."""
        return self.snapshot().posting_count_for_values(values)

    def posting_lengths(self, values: Sequence[str]) -> list[int]:
        """Per-value visible PL-item counts, all read off *one* snapshot.

        The batched statistics read behind the query planner's cost model
        (:func:`repro.index.statistics.estimate_posting_volume`): sampling
        posting-list lengths value by value would pin one generation per
        lookup and could straddle a concurrent compaction; this pins one.
        """
        snapshot = self.snapshot()
        return [snapshot.posting_list_length(value) for value in values]

    def super_key(self, table_id: int, row_index: int) -> int:
        """Super key of a visible row."""
        return self.snapshot().super_key(table_id, row_index)

    def has_row(self, table_id: int, row_index: int) -> bool:
        """Whether a visible row owns a super key."""
        return self.snapshot().has_row(table_id, row_index)

    def indexed_tables(self) -> set[int]:
        """Ids of every visible table."""
        return self.snapshot().indexed_tables()

    def values(self) -> Iterator[str]:
        """Distinct visible values."""
        return self.snapshot().values()

    def num_posting_items(self) -> int:
        """Total visible PL items."""
        return self.snapshot().num_posting_items()

    def num_rows(self) -> int:
        """Total visible rows."""
        return self.snapshot().num_rows()

    def __contains__(self, value: str) -> bool:
        return value in self.snapshot()

    def __len__(self) -> int:
        return len(self.snapshot())

    # ------------------------------------------------------------------
    # Persistence (manifest + recovery)
    # ------------------------------------------------------------------
    def _write_manifest_locked(self) -> None:
        assert self.directory is not None
        payload = {
            "format_version": LIVE_FORMAT_VERSION,
            "hash_function": self.hash_function_name,
            "hash_size": self.hash_size,
            # Only the checkpointed sequence is recorded: a merge mid-stream
            # must not make replay skip buffer-only WAL records.
            "seq": self._checkpoint_seq,
            "generation": self._generation,
            "segments": [
                {
                    "file": _segment_file(segment.generation),
                    "generation": segment.generation,
                    "table_seqs": {
                        str(tid): seq for tid, seq in segment.table_seqs.items()
                    },
                }
                for segment in self._segments
            ],
            "tombstones": {
                str(tid): seq for tid, seq in self._tombstones.items()
            },
        }
        path = self.directory / MANIFEST_FILE
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        if self._fsync:
            _fsync_path(tmp)
        tmp.replace(path)
        if self._fsync:
            _fsync_path(self.directory)

    def _persist_sketches_locked(self) -> None:
        """Persist the sketch store next to the segments (skipped if stale).

        A stale store (sealed tables missing after recovering a pre-sketch
        directory) must never be written out: a later reopen would load it
        as complete and silently lose recall.
        """
        assert self.directory is not None
        if not self._sketch_stale:
            self._sketch.save(self.directory)

    def _recover(self) -> None:
        assert self.directory is not None
        manifest_path = self.directory / MANIFEST_FILE
        if manifest_path.exists():
            try:
                payload = json.loads(manifest_path.read_text(encoding="utf-8"))
                version = int(payload.get("format_version", 1))
                if version != LIVE_FORMAT_VERSION:
                    raise StorageError(
                        f"unsupported live-index manifest version {version}"
                    )
                if (
                    payload["hash_function"] != self.hash_function_name
                    or int(payload["hash_size"]) != self.hash_size
                ):
                    raise StorageError(
                        "live index was persisted with "
                        f"{payload['hash_size']}-bit {payload['hash_function']} "
                        f"but opened as {self.hash_size}-bit "
                        f"{self.hash_function_name}"
                    )
                self._seq = int(payload["seq"])
                self._checkpoint_seq = self._seq
                self._generation = int(payload["generation"])
                self._tombstones = {
                    int(tid): int(seq)
                    for tid, seq in payload.get("tombstones", {}).items()
                }
                segments = []
                for entry in payload.get("segments", []):
                    index = _load_segment_index(self.directory / entry["file"])
                    segments.append(
                        Segment(
                            index=index,
                            table_seqs={
                                int(tid): int(seq)
                                for tid, seq in entry["table_seqs"].items()
                            },
                            generation=int(entry["generation"]),
                        )
                    )
                self._segments = tuple(segments)
            except (KeyError, TypeError, ValueError) as exc:
                raise StorageError(
                    f"malformed live-index manifest {manifest_path}: {exc}"
                ) from exc
            # Sealed-table sketches come from the persisted sketch file; a
            # directory written before sketch persistence (or with a corrupt
            # sketch file) leaves the store stale — flagged, never guessed,
            # because column sketches cannot be rebuilt from postings.
            if self._segments:
                try:
                    self._sketch = SketchIndex.load(self.directory)
                except StorageError:
                    self._sketch = SketchIndex()
                    self._sketch_stale = True
        # Replay the WAL over the manifest state: every record newer than
        # the last checkpointed sequence is re-applied to a fresh buffer.
        checkpoint_seq = self._seq
        for record in replay_wal(self.directory / WAL_FILE):
            if record.seq <= checkpoint_seq:
                continue
            if record.op == "add_table":
                assert record.table is not None
                # Same gate as add_table(); replay is lenient, not raising.
                if not self._visible_locked(record.table.table_id):
                    self._buffer.add_table(record.table, record.seq)
                    self._sketch.add_table(record.table)
                    self._recovered.append(record.table)
            else:
                assert record.table_id is not None
                self._apply_remove_locked(record.table_id, record.seq)
                self._recovered = [
                    table
                    for table in self._recovered
                    if table.table_id != record.table_id
                ]
            self._seq = max(self._seq, record.seq)
        if not manifest_path.exists():
            # Pin the hash configuration of a brand-new directory eagerly so
            # a later reopen with a different config fails loudly.
            self._write_manifest_locked()
