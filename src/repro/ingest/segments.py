"""Immutable read-optimized segments of the ingestion subsystem.

A :class:`Segment` is a sealed :class:`~repro.ingest.buffer.IngestBuffer`:
one immutable columnar :class:`~repro.index.inverted.InvertedIndex` (packed
struct-of-arrays postings, see :mod:`repro.index.columnar`) plus the add
sequence number of every table it holds.  Segments are never mutated after
sealing — removals are expressed as *tombstones* (table id → remove sequence
number) kept by the owning :class:`~repro.ingest.live.LiveIndex`, and a
segment-resident copy of a table is visible exactly when no tombstone with a
later sequence number masks it:

``visible(table) := tombstone_seq(table) < add_seq(table in this segment)``

Re-adding a removed table therefore works without touching old segments: the
new copy's add sequence exceeds the tombstone, the old copies stay masked
until :func:`merge_segments` physically purges them.

:func:`merge_segments` implements compaction's merge step: adjacent (in
generation order) segments collapse into one, masked tables are dropped, and
per-value posting order is preserved — oldest segment first, insertion order
within a segment — which is what keeps a compacted
:class:`~repro.ingest.live.LiveIndex` byte-identical to a bulk-built index
over the same surviving tables.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..exceptions import IndexError_
from ..index import ColumnarPostingList, InvertedIndex


class Segment:
    """One immutable, read-optimized chunk of the live index."""

    __slots__ = ("index", "table_seqs", "generation")

    def __init__(
        self,
        index: InvertedIndex,
        table_seqs: Mapping[int, int],
        generation: int,
    ):
        #: The sealed columnar inverted index (never mutated again).
        self.index = index
        #: table id -> add sequence number, for tombstone visibility checks.
        self.table_seqs = dict(table_seqs)
        #: Monotonically increasing id assigned at seal/merge time.
        self.generation = generation

    def __len__(self) -> int:
        """Number of PL items stored in the segment."""
        return self.index.num_posting_items()

    def __contains__(self, table_id: int) -> bool:
        return table_id in self.table_seqs

    def num_tables(self) -> int:
        """Number of table copies (visible or masked) in the segment."""
        return len(self.table_seqs)

    def masked_tables(self, tombstones: Mapping[int, int]) -> set[int]:
        """Table ids of this segment hidden by the given tombstones."""
        return {
            table_id
            for table_id, add_seq in self.table_seqs.items()
            if tombstones.get(table_id, -1) >= add_seq
        }


def merge_segments(
    segments: Sequence[Segment],
    tombstones: Mapping[int, int],
    generation: int,
) -> Segment:
    """Collapse adjacent segments into one, purging tombstoned tables.

    ``segments`` must be in ascending generation order (the caller hands a
    contiguous slice of the live index's segment stack); per-value posting
    order of the merged segment is then exactly the concatenation order —
    the same order a bulk rebuild over the surviving tables produces.
    """
    if not segments:
        raise IndexError_("cannot merge an empty segment list")
    first = segments[0].index
    merged_index = InvertedIndex(
        hash_function_name=first.hash_function_name,
        hash_size=first.hash_size,
        layout="columnar",
    )
    table_seqs: dict[int, int] = {}
    combined: dict[str, ColumnarPostingList] = {}
    for segment in segments:
        masked = segment.masked_tables(tombstones)
        for table_id, add_seq in segment.table_seqs.items():
            if table_id not in masked:
                table_seqs[table_id] = add_seq
        for value in segment.index.values():
            columns = segment.index.posting_columns(value)
            if columns is None or not len(columns):
                continue
            if masked:
                columns, _ = columns.filtered(
                    lambda table_id, _column, _row: table_id not in masked
                )
                if not len(columns):
                    continue
            target = combined.get(value)
            if target is None:
                # Copy so the (still-readable, possibly pinned) source
                # segment never shares mutable arrays with the merge result.
                combined[value] = columns.copy()
            else:
                target.table_ids.extend(columns.table_ids)
                target.column_indexes.extend(columns.column_indexes)
                target.row_indexes.extend(columns.row_indexes)
        for table_id, row_index, super_key in segment.index.iter_super_keys():
            if table_id not in masked:
                merged_index.set_super_key(table_id, row_index, super_key)
    for value, columns in combined.items():
        merged_index.set_posting_columns(value, columns)
    return Segment(
        index=merged_index, table_seqs=table_seqs, generation=generation
    )
