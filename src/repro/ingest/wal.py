"""Write-ahead log of the online ingestion subsystem.

Every mutation accepted by a :class:`~repro.ingest.live.LiveIndex` is made
durable *before* it is applied to the in-memory delta buffer: the operation is
appended to an append-only JSON-lines file (one self-contained record per
line, flushed — and optionally ``fsync``-ed — per append).  A process that
crashes mid-ingest therefore recovers its exact buffer state by replaying the
log over the last sealed manifest.

The record encoding deliberately mirrors the corpus payload of
:mod:`repro.storage.serialization` (``table_id`` / ``name`` / ``columns`` /
``rows`` per table), so a WAL is readable with the same mental model as every
other persisted artifact of the repository.

Two record kinds exist:

* ``add_table`` — carries the full table payload (the replayer must be able
  to recompute postings *and* XASH super keys from the log alone);
* ``remove_table`` — carries the removed table id.

Replay is crash-tolerant: a torn final line (the record that was being
written when the process died) is detected and skipped, matching the
behaviour of log-structured storage engines.  Anything torn *before* the
final record is corruption and raises :class:`~repro.exceptions.StorageError`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterator

from ..datamodel import Row, Table
from ..exceptions import StorageError

#: Operation names a WAL record may carry.
WAL_OPS: tuple[str, ...] = ("add_table", "remove_table")


@dataclass(frozen=True)
class WalRecord:
    """One replayed log record."""

    #: Operation: ``"add_table"`` or ``"remove_table"``.
    op: str
    #: The operation's sequence number (monotonically increasing per index).
    seq: int
    #: The ingested table (``add_table`` records only).
    table: Table | None = None
    #: The removed table id (``remove_table`` records only).
    table_id: int | None = None


def table_to_record(table: Table) -> dict:
    """Encode a table as the WAL's JSON payload (serialization.py schema)."""
    return {
        "table_id": table.table_id,
        "name": table.name,
        "columns": list(table.columns),
        "rows": [list(row) for row in table.rows],
    }


def table_from_record(payload: dict) -> Table:
    """Decode a table from :func:`table_to_record` output."""
    return Table(
        table_id=payload["table_id"],
        name=payload["name"],
        columns=list(payload["columns"]),
        rows=[Row(row) for row in payload["rows"]],
    )


class WriteAheadLog:
    """Append-only, line-oriented durability log.

    Parameters
    ----------
    path:
        The log file (created, with parents, on first append).
    fsync:
        Whether every append is ``os.fsync``-ed.  ``True`` (the default)
        gives crash durability per acknowledged operation; ``False`` trades
        that for throughput (data survives a process crash via the OS page
        cache but not a machine crash).
    """

    def __init__(self, path: str | Path, fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync
        self._handle: IO[str] | None = None

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _file(self) -> IO[str]:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        return self._handle

    def _append(self, record: dict) -> None:
        handle = self._file()
        handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())

    def append_add_table(self, seq: int, table: Table) -> None:
        """Log an ``add_table`` operation (full table payload)."""
        self._append(
            {"op": "add_table", "seq": seq, "table": table_to_record(table)}
        )

    def append_remove_table(self, seq: int, table_id: int) -> None:
        """Log a ``remove_table`` operation."""
        self._append({"op": "remove_table", "seq": seq, "table_id": table_id})

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def truncate(self) -> None:
        """Drop every logged record (called after a seal makes them durable
        elsewhere — the sealed segment plus the manifest supersede the log)."""
        self.close()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("w", encoding="utf-8") as handle:
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    def close(self) -> None:
        """Close the underlying file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _is_complete_record(line: bytes) -> bool:
    """Whether one log line parses as a complete, well-formed record."""
    try:
        payload = json.loads(line)
        return (
            payload.get("op") in WAL_OPS
            and isinstance(payload.get("seq"), int)
            and ("table" in payload or "table_id" in payload)
        )
    except (json.JSONDecodeError, UnicodeDecodeError, AttributeError):
        return False


def repair_torn_tail(path: str | Path) -> bool:
    """Physically drop a torn final record; returns whether one was cut.

    Replay merely *skips* a torn tail, but a recovered process reopens the
    log for append — a later record written onto the torn fragment's line
    would merge with it and be lost (or poison the log) at the next replay.
    Recovery therefore truncates the file back to the last complete record
    before any new append happens.
    """
    path = Path(path)
    if not path.exists():
        return False
    with path.open("rb") as handle:
        data = handle.read()
    if not data:
        return False
    newline = data.rfind(b"\n")
    if newline == -1:
        keep = 0  # a single torn record and nothing else
    elif newline != len(data) - 1:
        keep = newline + 1  # bytes after the final newline are in-flight
    else:
        # Newline-terminated: torn only if the last full line is malformed
        # (replay tolerates that solely in final position).
        previous = data.rfind(b"\n", 0, newline)
        if _is_complete_record(data[previous + 1 : newline]):
            return False
        keep = previous + 1
    with path.open("r+b") as handle:
        handle.truncate(keep)
        handle.flush()
        os.fsync(handle.fileno())
    return True


def replay_wal(path: str | Path) -> Iterator[WalRecord]:
    """Yield the records of a WAL file in append order.

    A torn *final* line — the in-flight record of a crashed writer — is
    skipped silently; a torn or malformed record anywhere else raises
    :class:`~repro.exceptions.StorageError` (the log is corrupt, replaying a
    prefix would silently lose acknowledged operations).  A missing file
    replays as empty (a fresh index simply has no log yet).
    """
    path = Path(path)
    if not path.exists():
        return
    with path.open("r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for position, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
            op = payload["op"]
            if op not in WAL_OPS:
                raise StorageError(f"unknown WAL operation {op!r}")
            seq = int(payload["seq"])
            if op == "add_table":
                record = WalRecord(
                    op=op, seq=seq, table=table_from_record(payload["table"])
                )
            else:
                record = WalRecord(
                    op=op, seq=seq, table_id=int(payload["table_id"])
                )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            if position == len(lines) - 1:
                # The in-flight record of a crashed writer: not yet
                # acknowledged, safe (and required) to drop.
                return
            raise StorageError(
                f"corrupt WAL record at line {position + 1} of {path}: {exc}"
            ) from exc
        yield record
