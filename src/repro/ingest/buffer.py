"""The mutable in-memory delta index of the ingestion subsystem.

An :class:`IngestBuffer` is the write head of a
:class:`~repro.ingest.live.LiveIndex`: newly ingested tables land here first,
as a small mutable :class:`~repro.index.inverted.InvertedIndex` (columnar
packed layout) plus the per-table *add sequence numbers* the snapshot and
tombstone machinery reasons about.  Per-row XASH super keys are computed on
the way in by the exact same :class:`~repro.index.builder.IndexBuilder` code
path the offline bulk build uses — ingestion can therefore never disagree
with a bulk rebuild about a hash.

Buffers are cheap to churn: a removed table that still lives in the buffer is
physically dropped (the buffer is small, so the rewrite is bounded), which
keeps the delta free of masked data — only immutable segments need
tombstones.  Sealing (:meth:`IngestBuffer.seal`) freezes the buffer: its
index becomes the payload of a new immutable segment, and every further
mutation raises :class:`~repro.exceptions.IndexClosedError`.
"""

from __future__ import annotations

from ..config import MateConfig
from ..datamodel import Table
from ..exceptions import IndexClosedError
from ..index import IndexBuilder, InvertedIndex


class IngestBuffer:
    """Mutable delta inverted index accepting online ``add`` / ``remove``."""

    def __init__(
        self,
        config: MateConfig | None = None,
        hash_function_name: str = "xash",
        builder: IndexBuilder | None = None,
    ):
        self.config = config or MateConfig()
        self.hash_function_name = hash_function_name
        # The builder carries the memoised per-value hash cache; sharing one
        # across buffer generations keeps re-hashing of recurring values out
        # of the ingest hot path (exactly like the offline bulk build).
        self._builder = builder or IndexBuilder(
            config=self.config, hash_function_name=hash_function_name
        )
        #: The delta index (columnar packed layout, like every sealed segment).
        self.index = InvertedIndex(
            hash_function_name=hash_function_name,
            hash_size=self.config.hash_size,
            layout="columnar",
        )
        #: table id -> sequence number of the add operation.
        self.table_seqs: dict[int, int] = {}
        self._sealed = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def sealed(self) -> bool:
        """Whether :meth:`seal` froze this buffer."""
        return self._sealed

    @property
    def builder(self) -> IndexBuilder:
        """The (hash-memoising) builder; shared with successor buffers."""
        return self._builder

    def __len__(self) -> int:
        """Number of tables currently buffered."""
        return len(self.table_seqs)

    def __contains__(self, table_id: int) -> bool:
        return table_id in self.table_seqs

    def num_rows(self) -> int:
        """Number of buffered rows (rows owning a super key)."""
        return self.index.num_rows()

    def num_posting_items(self) -> int:
        """Number of buffered PL items."""
        return self.index.num_posting_items()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _ensure_writable(self, operation: str) -> None:
        if self._sealed:
            raise IndexClosedError(
                f"{operation} on a sealed ingest buffer; the buffer was "
                "compacted into an immutable segment and accepts no writes"
            )

    def add_table(self, table: Table, seq: int) -> int:
        """Index ``table`` into the delta under sequence number ``seq``.

        Returns the number of indexed rows.  Super keys are computed row by
        row through the shared :class:`~repro.index.builder.IndexBuilder`.
        """
        self._ensure_writable("add_table")
        rows = self._builder.add_table(self.index, table)
        self.table_seqs[table.table_id] = seq
        return rows

    def drop_table(self, table_id: int) -> int:
        """Physically remove a buffered table; returns dropped PL items.

        No-op (returning 0) when the table is not buffered — the caller's
        tombstones handle segment-resident copies.
        """
        self._ensure_writable("drop_table")
        if table_id not in self.table_seqs:
            return 0
        del self.table_seqs[table_id]
        return self.index.remove_table(table_id)

    def seal(self) -> InvertedIndex:
        """Freeze the buffer and return its index as segment payload.

        After sealing, every mutation raises
        :class:`~repro.exceptions.IndexClosedError`; the returned index stays
        readable (it becomes the immutable segment the read path stacks).
        """
        self._sealed = True
        return self.index
