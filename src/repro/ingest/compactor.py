"""Background compaction for the live index.

The :class:`Compactor` keeps a :class:`~repro.ingest.live.LiveIndex` in
serving shape as writes stream in, following the two classic log-structured
maintenance moves:

* **seal** — once the mutable delta buffer exceeds the configured size, it
  is frozen into a new immutable columnar segment (cheap: the buffer already
  *is* a packed index, sealing is a pointer swap);
* **merge** — once the segment stack grows past ``max_segments``, the
  adjacent pair with the smallest combined PL-item count is merged (and
  tombstoned tables physically purged), keeping per-query fan-out bounded.

Both moves also run synchronously through :meth:`Compactor.run_once` — the
ingestion loops of the CLI and the benchmarks call it after every table so
compaction pressure tracks the write rate deterministically; ``start()`` /
``stop()`` run the same logic on a daemon thread for concurrent serving
(see ``examples/live_ingest.py``).  Thanks to snapshot isolation, queries
running during either move observe a consistent pre- or post-compaction
stack — never a half-swapped one.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..exceptions import ConfigurationError
from .live import LiveIndex


@dataclass(frozen=True)
class CompactionPolicy:
    """When the compactor seals the buffer and merges segments.

    Parameters
    ----------
    max_buffer_rows:
        Seal the delta buffer once it holds at least this many rows.
    max_segments:
        Merge adjacent segments while the stack is deeper than this.
    interval_seconds:
        Poll interval of the background thread (ignored by ``run_once``).
    """

    max_buffer_rows: int = 5_000
    max_segments: int = 4
    interval_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.max_buffer_rows <= 0:
            raise ConfigurationError(
                f"max_buffer_rows must be positive, got {self.max_buffer_rows}"
            )
        if self.max_segments <= 0:
            raise ConfigurationError(
                f"max_segments must be positive, got {self.max_segments}"
            )
        if self.interval_seconds <= 0:
            raise ConfigurationError(
                f"interval_seconds must be positive, got {self.interval_seconds}"
            )


class Compactor:
    """Seals and merges a live index, inline or on a background thread."""

    def __init__(self, live: LiveIndex, policy: CompactionPolicy | None = None):
        self.live = live
        self.policy = policy or CompactionPolicy()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        #: Lifetime counters (seals and merges performed by this compactor).
        self.seals = 0
        self.merges = 0

    # ------------------------------------------------------------------
    # Synchronous driving
    # ------------------------------------------------------------------
    def run_once(self) -> dict[str, int]:
        """Apply the policy once; returns the moves made.

        Seals when the buffer is over its row budget, then merges the
        cheapest adjacent segment pair while the stack is too deep.
        """
        sealed = 0
        merged = 0
        if self.live.buffer_rows >= self.policy.max_buffer_rows:
            if self.live.seal() is not None:
                sealed += 1
        while self.live.num_segments > self.policy.max_segments:
            if self._merge_smallest_pair() is None:
                break
            merged += 1
        self.seals += sealed
        self.merges += merged
        return {"sealed": sealed, "merged": merged}

    def _merge_smallest_pair(self):
        """Merge the adjacent segment pair with the fewest combined postings."""
        sizes = self.live.segment_sizes()
        if len(sizes) < 2:
            return None
        best = min(
            range(len(sizes) - 1), key=lambda i: sizes[i] + sizes[i + 1]
        )
        return self.live.merge(best, best + 2)

    # ------------------------------------------------------------------
    # Background thread
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the background compaction thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="ingest-compactor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop and join the background thread (idempotent)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.policy.interval_seconds):
            self.run_once()

    def __enter__(self) -> "Compactor":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
