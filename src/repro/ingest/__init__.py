"""Online ingestion: WAL-durable writes over a log-structured live index.

Every other engine in the repository assumes a statically indexed lake; this
package accepts writes online, LSM-style, while the read path keeps the
packed columnar layout of :mod:`repro.index.columnar`:

* :class:`~repro.ingest.buffer.IngestBuffer` — the mutable in-memory delta
  index (per-row XASH super keys computed through the shared
  :class:`~repro.index.builder.IndexBuilder`);
* :class:`~repro.ingest.wal.WriteAheadLog` — append-before-apply durability;
  a crashed process replays the log to recover its exact buffer state;
* :class:`~repro.ingest.segments.Segment` / :func:`~repro.ingest.segments.merge_segments`
  — immutable sealed segments with tombstone-masked removals;
* :class:`~repro.ingest.compactor.Compactor` — seals oversized buffers and
  merges small segments, inline or on a background thread;
* :class:`~repro.ingest.live.LiveIndex` — the façade stacking buffer +
  segments behind the standard ``fetch`` / ``fetch_batch`` index surface,
  with generation-pinned :class:`~repro.ingest.live.LiveSnapshot` reads.

The session front door is :meth:`DiscoverySession.ingest
<repro.api.session.DiscoverySession.ingest>` / :meth:`remove
<repro.api.session.DiscoverySession.remove>` with ``engine="live"`` requests;
the CLI ``ingest`` sub-command streams whole directories into a persisted
live index.
"""

from .buffer import IngestBuffer
from .compactor import CompactionPolicy, Compactor
from .live import LiveIndex, LiveSnapshot
from .segments import Segment, merge_segments
from .wal import WalRecord, WriteAheadLog, replay_wal

__all__ = [
    "CompactionPolicy",
    "Compactor",
    "IngestBuffer",
    "LiveIndex",
    "LiveSnapshot",
    "Segment",
    "WalRecord",
    "WriteAheadLog",
    "merge_segments",
    "replay_wal",
]
