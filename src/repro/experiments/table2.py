"""Table 2: MATE's runtime under different hash functions and hash sizes.

Every competing hash function benefits from all of MATE's optimisations and
only the row-filter hash changes — exactly as in the paper.  The SCR column
(no super key at all) is included as the leftmost baseline.
"""

from __future__ import annotations

from ..baselines import ScrDiscovery
from .runner import (
    ExperimentResult,
    ExperimentSettings,
    WorkloadContext,
    build_context,
    run_mate,
    run_system,
)

#: Hash functions evaluated in Table 2 (plus SCR handled separately).
TABLE2_HASHES: tuple[str, ...] = (
    "md5",
    "murmur",
    "cityhash",
    "simhash",
    "hashtable",
    "bloom",
    "lhbf",
    "xash",
)

#: Query sets used by default (all eight sets of the paper, scaled down).
DEFAULT_TABLE2_WORKLOADS: tuple[str, ...] = (
    "WT_10", "WT_100", "WT_1000", "OD_100", "OD_1000", "OD_10000", "Kaggle", "School",
)


def run_table2(
    settings: ExperimentSettings | None = None,
    workload_names: tuple[str, ...] = DEFAULT_TABLE2_WORKLOADS,
    hash_functions: tuple[str, ...] = TABLE2_HASHES,
    hash_sizes: tuple[int, ...] | None = None,
) -> ExperimentResult:
    """Reproduce the Table 2 runtime sweep (seconds, mean per query)."""
    settings = settings or ExperimentSettings()
    hash_sizes = hash_sizes or settings.hash_sizes

    headers = ["query set", "scr (s)"]
    for hash_function in hash_functions:
        for hash_size in hash_sizes:
            headers.append(f"{hash_function}/{hash_size} (s)")

    rows: list[list[object]] = []
    for offset, name in enumerate(workload_names):
        context = build_context(name, settings, seed_offset=offset)
        row: list[object] = [name, round(_scr_runtime(context), 4)]
        for hash_function in hash_functions:
            for hash_size in hash_sizes:
                run = run_mate(context, hash_function, hash_size)
                row.append(round(run.mean_runtime, 4))
        rows.append(row)
    return ExperimentResult(
        name="Table 2: MATE runtime per hash function and hash size",
        headers=headers,
        rows=rows,
        notes=[
            "Expected shape: XASH fastest, bloom-filter family second, "
            "uniform hashes (MD5/Murmur/City/SimHash) slowest of the filtered "
            "variants, SCR slowest overall.",
            "Larger hash sizes usually help; when FP rates are already tiny "
            "the extra bit-operations can make them marginally slower "
            "(the blue cells of the paper's Table 2).",
        ],
    )


def _scr_runtime(context: WorkloadContext) -> float:
    """Mean SCR runtime on a workload (the no-super-key baseline column)."""
    settings = context.settings

    def scr_factory(ctx: WorkloadContext, size: int) -> ScrDiscovery:
        return ScrDiscovery(
            ctx.workload.corpus, ctx.index("xash", size), config=ctx.config(size)
        )

    return run_system(context, scr_factory, "scr", 128).mean_runtime
