"""Section 7.5.1: influence of ``k`` on the row-filter precision.

The paper varies ``k`` from 2 to 20 on the WT(100) query set and reports the
precision of MATE with different hash functions; larger ``k`` forces the
system to evaluate more (and less joinable) candidate tables.
"""

from __future__ import annotations

from .runner import ExperimentResult, ExperimentSettings, build_context, run_mate

#: Hash functions compared in the top-k study.
TOPK_HASHES: tuple[str, ...] = ("xash", "bloom", "hashtable", "simhash")


def run_topk(
    settings: ExperimentSettings | None = None,
    workload_name: str = "WT_100",
    k_values: tuple[int, ...] = (2, 5, 10, 15, 20),
    hash_functions: tuple[str, ...] = TOPK_HASHES,
    hash_size: int = 128,
) -> ExperimentResult:
    """Reproduce the precision-vs-k study of Section 7.5.1."""
    settings = settings or ExperimentSettings()
    context = build_context(workload_name, settings)

    rows: list[list[object]] = []
    for k in k_values:
        row: list[object] = [k]
        for hash_function in hash_functions:
            run = run_mate(context, hash_function, hash_size, k=k)
            row.append(round(run.precision_mean, 3))
        rows.append(row)
    return ExperimentResult(
        name=f"Section 7.5.1: precision vs k on {workload_name}",
        headers=["k"] + [f"{h} precision" for h in hash_functions],
        rows=rows,
        notes=[
            "Expected shape: XASH keeps the highest precision for every k "
            "and does not degrade as k grows.",
        ],
    )
