"""Section 7.5.4: initial-column selection heuristics.

MATE's cardinality heuristic is compared against the column-order and
longest-string (TLS) heuristics plus the hypothetical worst and best
(ground-truth) choices, by the average number of PL items each heuristic's
choice fetches from the index.

The paper runs this on OD(10k) queries and explains why the cardinality
heuristic works: per-value posting-list lengths follow a power law in which
most values have a similar, small number of postings, so fetching fewer
distinct values fetches fewer postings.  The dedicated scenario below
reproduces those conditions: the corpus and the query key columns draw from
one large shared token pool (so per-value PL lengths are identically
distributed across columns), and the query's key columns differ only in their
cardinality.
"""

from __future__ import annotations

import random

from ..core import COLUMN_SELECTORS, fetched_pl_count
from ..datagen import OPEN_DATA_PROFILE, SyntheticCorpusGenerator
from ..datagen.vocab import SHARED_TOKENS, random_number
from ..datamodel import QueryTable, Table, TableCorpus
from ..index import IndexBuilder, InvertedIndex
from .runner import ExperimentResult, ExperimentSettings

#: Order of the heuristics in the report (matches the paper's narrative).
HEURISTIC_ORDER: tuple[str, ...] = (
    "cardinality",
    "column_order",
    "longest_string",
    "worst_case",
    "best_case",
)


def build_init_column_scenario(
    settings: ExperimentSettings,
    num_queries: int | None = None,
    base_cardinality: int = 120,
) -> tuple[TableCorpus, list[QueryTable]]:
    """Build the corpus and query tables for the initial-column study.

    Each query has three key columns drawn from the shared token pool whose
    cardinalities are roughly ``base_cardinality``, a third of it, and a tenth
    of it; the first key column (in table order) is the highest-cardinality
    one so that the column-order heuristic is measurably worse than the
    cardinality heuristic.
    """
    rng = random.Random(settings.seed)
    profile = OPEN_DATA_PROFILE.scaled(settings.corpus_scale)
    corpus = SyntheticCorpusGenerator(profile=profile, seed=settings.seed).generate(
        name="init_column_corpus"
    )

    queries: list[QueryTable] = []
    for query_index in range(num_queries or settings.num_queries):
        cardinalities = (
            base_cardinality,
            max(base_cardinality // 3, 2),
            max(base_cardinality // 10, 2),
        )
        # Token lengths correlate inversely with cardinality (long descriptive
        # values in the high-cardinality column, short codes in the
        # low-cardinality one) so that the longest-string heuristic picks a
        # poor initial column, as observed in the paper.
        long_tokens = [t for t in SHARED_TOKENS if len(t) >= 9]
        medium_tokens = [t for t in SHARED_TOKENS if 6 <= len(t) <= 8]
        short_tokens = [t for t in SHARED_TOKENS if len(t) <= 5]
        pools = [
            rng.sample(long_tokens, min(cardinalities[0], len(long_tokens))),
            rng.sample(medium_tokens, min(cardinalities[1], len(medium_tokens))),
            rng.sample(short_tokens, min(cardinalities[2], len(short_tokens))),
        ]
        num_rows = base_cardinality
        rows = []
        for row_index in range(num_rows):
            rows.append(
                [
                    pools[0][row_index % len(pools[0])],
                    pools[1][row_index % len(pools[1])],
                    pools[2][row_index % len(pools[2])],
                    random_number(rng),
                ]
            )
        table = Table(
            table_id=3_000_000 + query_index,
            name=f"init_column_query_{query_index}",
            columns=["key_a", "key_b", "key_c", "measure"],
            rows=rows,
        )
        queries.append(
            QueryTable(table=table, key_columns=["key_a", "key_b", "key_c"])
        )
    return corpus, queries


def run_init_column(
    settings: ExperimentSettings | None = None,
    hash_size: int = 128,
    base_cardinality: int = 120,
) -> ExperimentResult:
    """Compare the initial-column heuristics by fetched PL-item counts."""
    settings = settings or ExperimentSettings()
    corpus, queries = build_init_column_scenario(
        settings, base_cardinality=base_cardinality
    )
    builder = IndexBuilder(config=settings.config(hash_size), hash_function_name="xash")
    index: InvertedIndex = builder.build(corpus)

    totals = {name: 0 for name in HEURISTIC_ORDER}
    for query in queries:
        for name in HEURISTIC_ORDER:
            totals[name] += fetched_pl_count(query, index, COLUMN_SELECTORS[name])

    num_queries = max(len(queries), 1)
    rows = [
        [name, round(totals[name] / num_queries, 1)] for name in HEURISTIC_ORDER
    ]
    return ExperimentResult(
        name="Section 7.5.4: fetched PL items per initial-column heuristic",
        headers=["heuristic", "avg fetched PL items"],
        rows=rows,
        notes=[
            "Expected shape: cardinality fetches fewer PL items than "
            "column_order, longest_string and worst_case, and approaches the "
            "ground-truth best_case lower bound.",
        ],
    )
