"""Rare-character frequency source ablation (extension beyond the paper).

XASH selects the *least frequent* characters of a value as its most
discriminative feature (Section 5.3.2); the reference implementation uses a
fixed English letter-frequency table.  Two natural questions follow that the
paper does not evaluate:

* does deriving the frequency table from the indexed corpus itself (the
  obvious generalisation for non-English data lakes) help or hurt?
* how much does the rare-character *choice* matter at all — what happens when
  the table is inverted so that the most common characters are selected?

This experiment answers both by running MATE with three frequency sources on
the same workload: the built-in English table, the corpus-derived table
(:func:`repro.lake.corpus_character_frequencies`), and the inverted
corpus-derived table (worst case).

Expected shape: corpus-derived >= English >= inverted in precision; the gap
between English and inverted shows how much of XASH's filtering power comes
from picking rare rather than common characters.
"""

from __future__ import annotations

from dataclasses import replace

from ..core import MateDiscovery
from ..index import IndexBuilder
from ..lake import corpus_character_frequencies
from ..metrics import summarize_precision
from .runner import ExperimentResult, ExperimentSettings, build_context

#: The frequency sources compared, in report order.
FREQUENCY_SOURCES: tuple[str, ...] = ("english", "corpus", "inverted")


def _frequency_table(source: str, corpus_frequencies: dict[str, float],
                     english: dict[str, float]) -> dict[str, float]:
    """Return the character-frequency table for one source."""
    if source == "english":
        return dict(english)
    if source == "corpus":
        return dict(corpus_frequencies)
    if source == "inverted":
        peak = max(corpus_frequencies.values(), default=1.0)
        return {
            character: peak - frequency
            for character, frequency in corpus_frequencies.items()
        }
    raise ValueError(f"unknown frequency source {source!r}")


def run_frequency_source(
    settings: ExperimentSettings | None = None,
    workload_name: str = "WT_100",
    hash_size: int = 128,
    sources: tuple[str, ...] = FREQUENCY_SOURCES,
) -> ExperimentResult:
    """Compare MATE's precision and runtime across frequency sources."""
    settings = settings or ExperimentSettings()
    context = build_context(workload_name, settings)
    corpus = context.workload.corpus
    base_config = context.config(hash_size)
    corpus_frequencies = corpus_character_frequencies(
        corpus, alphabet=base_config.alphabet
    )
    english = dict(base_config.character_frequencies)

    rows: list[list[object]] = []
    for source in sources:
        config = replace(
            base_config,
            character_frequencies=_frequency_table(
                source, corpus_frequencies, english
            ),
        )
        index = IndexBuilder(config=config, hash_function_name="xash").build(corpus)
        engine = MateDiscovery(corpus, index, config=config)
        results = [engine.discover(query, k=settings.k) for query in context.queries]
        precision = summarize_precision([r.precision for r in results])
        false_positives = sum(r.counters.false_positive_rows for r in results)
        runtime = sum(r.runtime_seconds for r in results) / max(len(results), 1)
        rows.append(
            [
                source,
                round(precision.mean, 3),
                round(precision.std, 3),
                false_positives,
                round(runtime, 4),
            ]
        )
    return ExperimentResult(
        name=f"Frequency-source ablation on {workload_name}",
        headers=["frequency source", "precision", "std", "FP rows", "runtime (s)"],
        rows=rows,
        notes=[
            "Expected shape: rare-character selection driven by corpus-derived "
            "or English frequencies filters at least as well as the inverted "
            "(common-character) table; a large english-vs-inverted gap shows "
            "the rare-character choice is doing real work.",
        ],
    )
