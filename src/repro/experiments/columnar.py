"""Columnar vs. legacy posting-layout study (extension).

Quantifies what the packed struct-of-arrays layout of
:mod:`repro.index.columnar` buys on the discovery hot path: the same corpus
is indexed once per layout, the initialization-step fetch (Algorithm 1 lines
4-5, via :func:`repro.index.fetch_table_blocks`) is timed over repeated
passes, and the full engine runs every query on both layouts.  Correctness is
part of the experiment: the two layouts must produce identical top-k results
for every query, which the benchmark asserts.
"""

from __future__ import annotations

import time

from ..core import MateDiscovery
from ..index import build_index, fetch_table_blocks
from .runner import ExperimentResult, ExperimentSettings, build_context

#: Workload the layout comparison runs on by default.
DEFAULT_COLUMNAR_WORKLOAD = "WT_100"

#: Layouts under comparison (legacy first: it is the baseline).
COLUMNAR_LAYOUTS: tuple[str, ...] = ("legacy", "columnar")


def run_columnar(
    settings: ExperimentSettings,
    workload_name: str = DEFAULT_COLUMNAR_WORKLOAD,
    fetch_repeats: int = 10,
) -> ExperimentResult:
    """Compare the legacy and columnar posting layouts on one workload.

    Per layout: index build time, total time of ``fetch_repeats`` repeated
    initialization-step fetches over every query's probe values (the serving
    pattern — hot values recur, so warm fetches dominate), total discovery
    time across all queries, and whether the top-k results match the legacy
    baseline query for query.
    """
    context = build_context(workload_name, settings)
    corpus = context.workload.corpus
    config = context.config(settings.hash_sizes[0] if settings.hash_sizes else 128)

    rows: list[list[object]] = []
    baseline_topk: list[object] | None = None
    baseline_fetch = 0.0
    baseline_discover = 0.0
    notes: list[str] = []
    for layout in COLUMNAR_LAYOUTS:
        started = time.perf_counter()
        index = build_index(corpus, config=config, layout=layout)
        build_seconds = time.perf_counter() - started

        engine = MateDiscovery(corpus, index, config=config)
        probe_sets = [engine.probe_values(query) for query in context.queries]

        items_fetched = 0
        started = time.perf_counter()
        for _ in range(fetch_repeats):
            items_fetched = 0
            for values in probe_sets:
                blocks = fetch_table_blocks(index, values)
                items_fetched += sum(len(block) for block in blocks.values())
        fetch_seconds = time.perf_counter() - started

        started = time.perf_counter()
        results = [engine.discover(query) for query in context.queries]
        discover_seconds = time.perf_counter() - started

        topk = [result.result_tuples() for result in results]
        if baseline_topk is None:
            baseline_topk = topk
            baseline_fetch = fetch_seconds
            baseline_discover = discover_seconds
        matched = sum(1 for a, b in zip(baseline_topk, topk) if a == b)
        rows.append(
            [
                layout,
                round(build_seconds, 4),
                round(fetch_seconds, 4),
                items_fetched,
                round(discover_seconds, 4),
                f"{matched}/{len(topk)}",
            ]
        )
        if layout != COLUMNAR_LAYOUTS[0]:
            if fetch_seconds > 0:
                notes.append(
                    f"{layout} fetch speedup over legacy: "
                    f"{baseline_fetch / fetch_seconds:.2f}x"
                )
            if discover_seconds > 0:
                notes.append(
                    f"{layout} discovery speedup over legacy: "
                    f"{baseline_discover / discover_seconds:.2f}x"
                )

    notes.append(
        f"fetch column: {fetch_repeats} repeated initialization-step fetches "
        f"over {len(context.queries)} queries of {workload_name}"
    )
    return ExperimentResult(
        name=f"Columnar posting layout — {workload_name}",
        headers=[
            "layout",
            "build s",
            "fetch s",
            "PL items / pass",
            "discover s",
            "top-k identical",
        ],
        rows=rows,
        notes=notes,
    )
