"""Columnar vs. legacy posting-layout study (extension).

Quantifies what the packed struct-of-arrays layout of
:mod:`repro.index.columnar` buys on the discovery hot path: the same corpus
is indexed once per layout, the initialization-step fetch (Algorithm 1 lines
4-5, via :func:`repro.index.fetch_table_blocks`) is timed over repeated
passes, and the full engine runs every query on both layouts.  Correctness is
part of the experiment: the two layouts must produce identical top-k results
for every query, which the benchmark asserts.

The study also isolates the vectorized prefilter kernels
(:mod:`repro.index.kernels`): a third row re-runs discovery on the *same*
columnar index with kernels switched off, so the ``prefilter s`` column
directly compares the batched reject test against the legacy per-row loop on
identical blocks and identical top-k output.  To exercise the regime the
kernels are built for — long per-table posting runs, as produced by popular
values in web-scale corpora — the corpus is augmented with a handful of
*deep-posting* tables whose rows draw from the queries' probe values.
"""

from __future__ import annotations

import random
import time

from ..core import MateDiscovery
from ..datamodel import Table
from ..index import active_kernel, build_index, fetch_table_blocks, use_kernel
from .runner import ExperimentResult, ExperimentSettings, build_context

#: Workload the layout comparison runs on by default.
DEFAULT_COLUMNAR_WORKLOAD = "WT_100"

#: Layouts under comparison (legacy first: it is the baseline).
COLUMNAR_LAYOUTS: tuple[str, ...] = ("legacy", "columnar")

#: Deep-posting augmentation: tables whose rows repeat query probe values,
#: giving per-table posting runs of a few hundred rows (the regime where the
#: paper's corpora live and where vectorized filtering pays off).
DEEP_POSTING_TABLES = 24
DEEP_POSTING_ROWS = 1000


def _add_deep_posting_tables(corpus, queries, seed: int) -> None:
    """Plant tables with long per-table posting runs of the query values."""
    pool = sorted(
        {
            value
            for query in queries
            for key_tuple in query.key_tuples()
            for value in key_tuple
        }
    )
    if not pool:
        return
    rng = random.Random(seed * 7919 + 13)
    for i in range(DEEP_POSTING_TABLES):
        # A few values per table, so each (table, value) posting run is
        # hundreds of rows long — the shape popular values produce.
        subset = rng.sample(pool, min(4, len(pool)))
        rows = [
            [rng.choice(subset), rng.choice(subset), f"deep_{i}_{r}"]
            for r in range(DEEP_POSTING_ROWS)
        ]
        corpus.add_table(
            Table(
                corpus.next_table_id(),
                f"deep_posting_{i}",
                ["k1", "k2", "payload"],
                rows,
            )
        )


def _timed_discovery(engine, queries):
    """Run every query; total wall clock, prefilter stage seconds, top-k."""
    prefilter_seconds = 0.0
    started = time.perf_counter()
    results = [engine.discover(query) for query in queries]
    discover_seconds = time.perf_counter() - started
    for result in results:
        stage = result.counters.stages.get("superkey_prefilter")
        if stage is not None:
            prefilter_seconds += stage.seconds
    topk = [result.result_tuples() for result in results]
    return discover_seconds, prefilter_seconds, topk


def run_columnar(
    settings: ExperimentSettings,
    workload_name: str = DEFAULT_COLUMNAR_WORKLOAD,
    fetch_repeats: int = 10,
) -> ExperimentResult:
    """Compare the legacy and columnar posting layouts on one workload.

    Per layout: index build time, total time of ``fetch_repeats`` repeated
    initialization-step fetches over every query's probe values (the serving
    pattern — hot values recur, so warm fetches dominate), total discovery
    time across all queries, the prefilter stage's share of it, and whether
    the top-k results match the legacy baseline query for query.  The extra
    ``columnar/loop`` row re-runs the columnar index with the vectorized
    kernels disabled — the prefilter-stage ratio between the two columnar
    rows is the kernel speedup on byte-identical output.
    """
    context = build_context(workload_name, settings)
    corpus = context.workload.corpus
    _add_deep_posting_tables(corpus, context.queries, settings.seed)
    config = context.config(settings.hash_sizes[0] if settings.hash_sizes else 128)

    rows: list[list[object]] = []
    baseline_topk: list[object] | None = None
    baseline_fetch = 0.0
    baseline_discover = 0.0
    notes: list[str] = []
    for layout in COLUMNAR_LAYOUTS:
        started = time.perf_counter()
        index = build_index(corpus, config=config, layout=layout)
        build_seconds = time.perf_counter() - started

        engine = MateDiscovery(corpus, index, config=config)
        probe_sets = [engine.probe_values(query) for query in context.queries]

        items_fetched = 0
        started = time.perf_counter()
        for _ in range(fetch_repeats):
            items_fetched = 0
            for values in probe_sets:
                blocks = fetch_table_blocks(index, values)
                items_fetched += sum(len(block) for block in blocks.values())
        fetch_seconds = time.perf_counter() - started

        discover_seconds, prefilter_seconds, topk = _timed_discovery(
            engine, context.queries
        )

        if baseline_topk is None:
            baseline_topk = topk
            baseline_fetch = fetch_seconds
            baseline_discover = discover_seconds
        matched = sum(1 for a, b in zip(baseline_topk, topk) if a == b)
        rows.append(
            [
                layout,
                round(build_seconds, 4),
                round(fetch_seconds, 4),
                items_fetched,
                round(discover_seconds, 4),
                round(prefilter_seconds, 4),
                f"{matched}/{len(topk)}",
            ]
        )
        if layout != COLUMNAR_LAYOUTS[0]:
            if fetch_seconds > 0:
                notes.append(
                    f"{layout} fetch speedup over legacy: "
                    f"{baseline_fetch / fetch_seconds:.2f}x"
                )
            if discover_seconds > 0:
                notes.append(
                    f"{layout} discovery speedup over legacy: "
                    f"{baseline_discover / discover_seconds:.2f}x"
                )

            # Same index, same queries, kernels off: the per-row loop
            # baseline for the prefilter stage.
            with use_kernel("off"):
                discover_loop, prefilter_loop, topk_loop = _timed_discovery(
                    engine, context.queries
                )
            matched_loop = sum(
                1 for a, b in zip(baseline_topk, topk_loop) if a == b
            )
            rows.append(
                [
                    f"{layout}/loop",
                    round(build_seconds, 4),
                    round(fetch_seconds, 4),
                    items_fetched,
                    round(discover_loop, 4),
                    round(prefilter_loop, 4),
                    f"{matched_loop}/{len(topk_loop)}",
                ]
            )
            if prefilter_seconds > 0:
                notes.append(
                    f"prefilter kernel ({active_kernel() or 'off'}) speedup "
                    f"over per-row loop: "
                    f"{prefilter_loop / prefilter_seconds:.2f}x"
                )

    notes.append(
        f"fetch column: {fetch_repeats} repeated initialization-step fetches "
        f"over {len(context.queries)} queries of {workload_name} "
        f"(+{DEEP_POSTING_TABLES} deep-posting tables of "
        f"{DEEP_POSTING_ROWS} rows)"
    )
    return ExperimentResult(
        name=f"Columnar posting layout — {workload_name}",
        headers=[
            "layout",
            "build s",
            "fetch s",
            "PL items / pass",
            "discover s",
            "prefilter s",
            "top-k identical",
        ],
        rows=rows,
        notes=notes,
    )
