"""SQL-pushdown study (extension beyond the paper).

The mate engine fetches posting lists out of the store and filters them in
Python; the ``sql`` engine of :mod:`repro.engine_sql` compiles candidate
generation and the XASH reject into SQLite and only row-verifies survivors.
This experiment runs both engines over the same workload at two corpus
scales and reports, per (scale, engine) row: total discovery runtime,
Python-side posting-list items fetched, rows the database scanned on the
pushdown path, and — the deployability contract, like
:func:`repro.experiments.run_serving` — whether every query's top-k
(ids, scores, *and* column mappings) was identical to the mate engine's.

Expected shape: ``identical`` reads ``yes`` on every row, the sql rows
show ``pl fetched`` = 0 (the store scanned those rows instead), and the
runtime gap stays within the same order of magnitude at both scales.
"""

from __future__ import annotations

import dataclasses
import time

from ..core.discovery import MateDiscovery
from ..engine_sql import SQLPushdownEngine
from .runner import ExperimentResult, ExperimentSettings, build_context

#: The two corpus scales compared, as factors applied on top of the
#: settings' own ``corpus_scale`` (1.0 = the settings' scale unchanged).
PUSHDOWN_SCALE_FACTORS = (1.0, 2.0)


def run_pushdown(
    settings: ExperimentSettings | None = None,
    workload_name: str = "WT_100",
    hash_size: int = 128,
) -> ExperimentResult:
    """Compare the mate and sql engines at two corpus scales."""
    settings = settings or ExperimentSettings()
    rows = []
    for factor in PUSHDOWN_SCALE_FACTORS:
        scaled = dataclasses.replace(
            settings, corpus_scale=settings.corpus_scale * factor
        )
        context = build_context(workload_name, scaled)
        corpus = context.workload.corpus
        config = context.config(hash_size)
        index = context.index("xash", hash_size)
        queries = context.queries
        k = scaled.k

        mate = MateDiscovery(corpus, index, config=config)
        sql = SQLPushdownEngine(corpus, index, config=config)

        def run_engine(engine, reference=None):
            latencies = []
            fetched = scanned = 0
            identical = True
            topks = []
            for query_index, query in enumerate(queries):
                started = time.perf_counter()
                result = engine.discover(query, k=k)
                latencies.append(time.perf_counter() - started)
                counters = result.counters
                fetched += counters.pl_items_fetched
                scanned += int(
                    counters.extra.get("pushdown_rows_scanned", 0.0)
                )
                topk = [
                    (t.table_id, t.joinability, t.column_mapping)
                    for t in result.tables
                ]
                topks.append(topk)
                if reference is not None and topk != reference[query_index]:
                    identical = False
            return topks, [
                round(scaled.corpus_scale, 3),
                engine.system_name,
                len(queries),
                round(sum(latencies), 4),
                fetched,
                scanned,
                "yes" if identical else "NO",
            ]

        try:
            reference, mate_row = run_engine(mate)
            _, sql_row = run_engine(sql, reference)
        finally:
            sql.close()
        rows.append(mate_row)
        rows.append(sql_row)

    return ExperimentResult(
        name=f"SQL pushdown vs mate on {workload_name}",
        headers=[
            "scale",
            "engine",
            "queries",
            "runtime s",
            "pl fetched",
            "rows scanned",
            "identical",
        ],
        rows=rows,
        notes=[
            "Expected shape: every sql row reads identical=yes with "
            "pl fetched = 0 — candidate generation and the super-key "
            "reject ran inside SQLite ('rows scanned'), leaving only "
            "row verification in Python.  The mate rows fetch the same "
            "posting volume into Python instead.",
        ],
    )
