"""Figure 4: runtime of MATE vs the baseline systems.

The paper plots, for the six WT/OD query sets, the mean discovery runtime of
MATE (XASH, 128-bit) against SCR, MCR, SCR-Josie and MCR-Josie (log scale).
This experiment reproduces the same series and additionally reports the
speed-up of MATE over each baseline so the "up to 61x / 13x / 9x / 22x"
claims can be checked for shape.
"""

from __future__ import annotations

from ..baselines import McrDiscovery, McrJosieDiscovery, ScrDiscovery, ScrJosieDiscovery
from ..datagen import FIGURE4_WORKLOADS
from .runner import (
    AggregatedRun,
    ExperimentResult,
    ExperimentSettings,
    WorkloadContext,
    build_context,
    run_mate,
    run_system,
)

#: The baseline systems of Figure 4, keyed by their display name.
FIGURE4_SYSTEMS: tuple[str, ...] = ("mate", "scr", "mcr", "scr_josie", "mcr_josie")


def _run_all_systems(
    context: WorkloadContext, hash_size: int
) -> dict[str, AggregatedRun]:
    """Run MATE and all four baselines on one workload."""
    settings = context.settings

    def scr_factory(ctx: WorkloadContext, size: int) -> ScrDiscovery:
        return ScrDiscovery(
            ctx.workload.corpus, ctx.index("xash", size), config=ctx.config(size)
        )

    def mcr_factory(ctx: WorkloadContext, size: int) -> McrDiscovery:
        return McrDiscovery(
            ctx.workload.corpus, ctx.index("xash", size), config=ctx.config(size)
        )

    def scr_josie_factory(ctx: WorkloadContext, size: int) -> ScrJosieDiscovery:
        return ScrJosieDiscovery(
            ctx.workload.corpus, ctx.josie_index(), config=ctx.config(size)
        )

    def mcr_josie_factory(ctx: WorkloadContext, size: int) -> McrJosieDiscovery:
        return McrJosieDiscovery(
            ctx.workload.corpus, ctx.josie_index(), config=ctx.config(size)
        )

    return {
        "mate": run_mate(context, "xash", hash_size, label="mate"),
        "scr": run_system(context, scr_factory, "scr", hash_size),
        "mcr": run_system(context, mcr_factory, "mcr", hash_size),
        "scr_josie": run_system(context, scr_josie_factory, "scr_josie", hash_size),
        "mcr_josie": run_system(context, mcr_josie_factory, "mcr_josie", hash_size),
    }


def run_figure4(
    settings: ExperimentSettings | None = None,
    workload_names: tuple[str, ...] = FIGURE4_WORKLOADS,
    hash_size: int = 128,
) -> ExperimentResult:
    """Reproduce the Figure 4 runtime comparison."""
    settings = settings or ExperimentSettings()
    rows: list[list[object]] = []
    for offset, name in enumerate(workload_names):
        context = build_context(name, settings, seed_offset=offset)
        runs = _run_all_systems(context, hash_size)
        mate_runtime = runs["mate"].mean_runtime
        row: list[object] = [name]
        for system in FIGURE4_SYSTEMS:
            row.append(round(runs[system].mean_runtime, 4))
        for system in FIGURE4_SYSTEMS[1:]:
            baseline_runtime = runs[system].mean_runtime
            speedup = baseline_runtime / mate_runtime if mate_runtime > 0 else 0.0
            row.append(round(speedup, 1))
        rows.append(row)
    headers = ["query set"]
    headers += [f"{system} runtime (s)" for system in FIGURE4_SYSTEMS]
    headers += [f"speedup vs {system}" for system in FIGURE4_SYSTEMS[1:]]
    return ExperimentResult(
        name="Figure 4: mean discovery runtime per query (MATE vs baselines)",
        headers=headers,
        rows=rows,
        notes=[
            "Expected shape: MATE (XASH, 128 bit) is fastest on every query "
            "set; MCR-style systems degrade most on web-table-like corpora.",
        ],
    )
