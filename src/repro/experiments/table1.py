"""Table 1: statistics of the input query-table sets.

The paper's Table 1 lists, per query set, the number of query tables, the
corpus they run against, the average cardinality, and the average
joinability.  We regenerate the same rows for the laptop-scale synthetic
workloads and print the paper's numbers next to ours so the scale-down is
explicit (EXPERIMENTS.md reproduces this side-by-side view).
"""

from __future__ import annotations

from ..datagen import TABLE1_SPECS
from .runner import ExperimentResult, ExperimentSettings, build_context


def run_table1(
    settings: ExperimentSettings | None = None,
    workload_names: tuple[str, ...] | None = None,
) -> ExperimentResult:
    """Regenerate Table 1 for the synthetic workloads."""
    settings = settings or ExperimentSettings()
    names = workload_names or tuple(TABLE1_SPECS)

    rows: list[list[object]] = []
    for offset, name in enumerate(names):
        spec = TABLE1_SPECS[name]
        context = build_context(name, settings, seed_offset=offset)
        workload = context.workload
        rows.append(
            [
                name,
                len(workload.queries),
                spec.corpus_profile.name,
                round(workload.average_cardinality(), 1),
                spec.paper_cardinality,
                round(workload.average_planted_joinability(), 1),
                spec.paper_joinability,
                len(workload.corpus),
            ]
        )
    return ExperimentResult(
        name="Table 1: input query tables (built vs paper)",
        headers=[
            "query set",
            "# queries",
            "corpus",
            "cardinality (built)",
            "cardinality (paper)",
            "joinability (built)",
            "joinability (paper)",
            "corpus tables",
        ],
        rows=rows,
        notes=[
            "Paper columns are the values reported in Table 1 of the paper; "
            "built columns describe the scaled-down synthetic workloads "
            "(see DESIGN.md for the substitution rationale).",
        ],
    )
