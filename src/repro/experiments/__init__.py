"""Experiment harness: one module per table/figure of the paper's Section 7.

| Paper artefact        | Function                                   |
|-----------------------|--------------------------------------------|
| Table 1               | :func:`repro.experiments.run_table1`       |
| Index generation §7.1 | :func:`repro.experiments.run_index_generation` |
| Figure 4              | :func:`repro.experiments.run_figure4`      |
| Table 2               | :func:`repro.experiments.run_table2`       |
| Table 3               | :func:`repro.experiments.run_table3`       |
| Figure 5              | :func:`repro.experiments.run_figure5`      |
| Figure 6              | :func:`repro.experiments.run_figure6`      |
| Section 7.5.1 (top-k) | :func:`repro.experiments.run_topk`         |
| Section 7.5.4         | :func:`repro.experiments.run_init_column`  |

Every function takes an :class:`ExperimentSettings` controlling the scale
(queries per set, corpus scale, hash sizes, k) and returns an
:class:`ExperimentResult` whose ``to_text()`` renders the same rows/series the
paper reports.

Beyond the paper's own artefacts, nine extension studies use the same
harness: corpus-size scaling (:func:`run_scaling`), the simulated disk
fetch cost (:func:`run_fetch_cost`), the rare-character frequency source
(:func:`run_frequency_source`), sharded scale-out discovery
(:func:`run_sharding`), the prefix-tree related-work comparison
(:func:`run_related_work`), the short-key-value study
(:func:`run_short_values`), the batch-discovery serving layer
(:func:`run_batch_service`), the process-pool serving comparison
(:func:`run_serving`), the columnar posting-layout comparison
(:func:`run_columnar`), and the online-ingestion study
(:func:`run_ingest`), the query-planner study
(:func:`run_planner`), the approximate sketch-tier study
(:func:`run_sketch`), the telemetry overhead study
(:func:`run_telemetry`), and the SQL-pushdown engine comparison
(:func:`run_pushdown`).
"""

from .batch_service import DEFAULT_SERVICE_SHARD_COUNTS, run_batch_service
from .columnar import (
    COLUMNAR_LAYOUTS,
    DEFAULT_COLUMNAR_WORKLOAD,
    run_columnar,
)
from .fetch_cost import DEFAULT_FETCH_WORKLOADS, run_fetch_cost
from .figure4 import FIGURE4_SYSTEMS, run_figure4
from .figure5 import FIGURE5_BARS, run_figure5
from .figure6 import FIGURE6_SYSTEMS, build_keysize_scenario, run_figure6
from .frequency_source import FREQUENCY_SOURCES, run_frequency_source
from .index_stats import run_index_generation
from .ingest import DEFAULT_INGEST_WORKLOAD, INGEST_STATES, run_ingest
from .init_column import HEURISTIC_ORDER, run_init_column
from .planner import PLANNER_MODES_UNDER_TEST, run_planner
from .pushdown import PUSHDOWN_SCALE_FACTORS, run_pushdown
from .related_work import DEFAULT_RELATED_WORK_WORKLOADS, run_related_work
from .reporting import (
    format_ratio,
    format_table,
    result_to_csv,
    result_to_json,
    save_result,
)
from .scaling import DEFAULT_SCALE_FACTORS, run_scaling
from .serving import DEFAULT_SERVING_SHARDS, run_serving
from .sharding import DEFAULT_SHARD_COUNTS, run_sharding
from .sketch import (
    DEFAULT_SKETCH_THRESHOLD,
    SKETCH_MODES_UNDER_TEST,
    build_sketch_scenario,
    run_sketch,
)
from .short_values import (
    SHORT_VALUE_HASHES,
    build_short_value_scenario,
    run_short_values,
)
from .runner import (
    AggregatedRun,
    ExperimentResult,
    ExperimentSettings,
    WorkloadContext,
    aggregate_results,
    build_context,
    run_mate,
    run_system,
)
from .table1 import run_table1
from .telemetry import IDLE_OVERHEAD_LIMIT, TELEMETRY_MODES, run_telemetry
from .table2 import DEFAULT_TABLE2_WORKLOADS, TABLE2_HASHES, run_table2
from .table3 import DEFAULT_TABLE3_WORKLOADS, TABLE3_HASHES, run_table3
from .topk import TOPK_HASHES, run_topk

__all__ = [
    "AggregatedRun",
    "COLUMNAR_LAYOUTS",
    "DEFAULT_COLUMNAR_WORKLOAD",
    "DEFAULT_FETCH_WORKLOADS",
    "DEFAULT_INGEST_WORKLOAD",
    "DEFAULT_RELATED_WORK_WORKLOADS",
    "DEFAULT_SCALE_FACTORS",
    "DEFAULT_SERVICE_SHARD_COUNTS",
    "DEFAULT_SHARD_COUNTS",
    "DEFAULT_SKETCH_THRESHOLD",
    "DEFAULT_TABLE2_WORKLOADS",
    "DEFAULT_TABLE3_WORKLOADS",
    "ExperimentResult",
    "ExperimentSettings",
    "FIGURE4_SYSTEMS",
    "FIGURE5_BARS",
    "FIGURE6_SYSTEMS",
    "FREQUENCY_SOURCES",
    "HEURISTIC_ORDER",
    "IDLE_OVERHEAD_LIMIT",
    "INGEST_STATES",
    "PUSHDOWN_SCALE_FACTORS",
    "SHORT_VALUE_HASHES",
    "SKETCH_MODES_UNDER_TEST",
    "TABLE2_HASHES",
    "TABLE3_HASHES",
    "TELEMETRY_MODES",
    "TOPK_HASHES",
    "WorkloadContext",
    "aggregate_results",
    "build_context",
    "build_keysize_scenario",
    "build_short_value_scenario",
    "build_sketch_scenario",
    "format_ratio",
    "format_table",
    "run_batch_service",
    "run_columnar",
    "run_fetch_cost",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_frequency_source",
    "run_index_generation",
    "run_ingest",
    "run_init_column",
    "run_mate",
    "run_planner",
    "run_pushdown",
    "run_related_work",
    "run_scaling",
    "run_serving",
    "run_sharding",
    "run_short_values",
    "run_sketch",
    "run_system",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_telemetry",
    "run_topk",
    "result_to_csv",
    "result_to_json",
    "save_result",
]
