"""Related-work comparison: MATE vs the prefix-tree index of Li et al. [24].

The paper's related-work section argues that the prefix-tree approach "is not
scalable to data lakes" because it "assumes that the one-to-one mapping
between the composite key columns and the columns in the candidate tables is
apriori known".  This experiment measures both halves of that argument on the
same workloads:

* with the mapping *unknown* (the data-lake situation), the prefix-tree
  baseline must enumerate every ordered column mapping per candidate table —
  the ``P(|T'|, |Q|)`` factor of Eq. 3 — and its runtime reflects that;
* MATE answers the same query from the single-attribute index plus the
  super-key filter, without enumerating mappings.

Both engines return the same top-k (the prefix tree is exhaustive), so the
result agreement doubles as a correctness cross-check.
"""

from __future__ import annotations

from ..baselines import PrefixTreeDiscovery
from .runner import ExperimentResult, ExperimentSettings, build_context, run_mate, run_system

#: Query sets used by default: small web-table workloads where the factorial
#: enumeration is still tractable enough to measure.
DEFAULT_RELATED_WORK_WORKLOADS: tuple[str, ...] = ("WT_10", "WT_100")


def run_related_work(
    settings: ExperimentSettings | None = None,
    workload_names: tuple[str, ...] = DEFAULT_RELATED_WORK_WORKLOADS,
    hash_size: int = 128,
    max_candidate_columns: int = 16,
) -> ExperimentResult:
    """Compare MATE and the prefix-tree baseline per query set.

    ``max_candidate_columns`` defaults to 16 so that every planted joinable
    table (whose width stays below that) is evaluated by the prefix tree;
    only the random wide-table tail of the corpus is skipped.
    """
    settings = settings or ExperimentSettings()

    rows: list[list[object]] = []
    for offset, workload_name in enumerate(workload_names):
        context = build_context(workload_name, settings, seed_offset=offset)
        mate = run_mate(context, "xash", hash_size, label="mate")

        prefix_engine = PrefixTreeDiscovery(
            context.workload.corpus,
            config=context.config(hash_size),
            max_candidate_columns=max_candidate_columns,
        )
        prefix = run_system(
            context,
            lambda _context, _hash_size: prefix_engine,
            label="prefix-tree",
            hash_size=hash_size,
        )

        # Agreement is measured on the best joinability among the tables the
        # prefix tree could afford to evaluate: anything wider than
        # ``max_candidate_columns`` is out of its reach by construction (that
        # inability is the related-work critique being measured), so MATE's
        # hits on those tables are excluded from the comparison.
        corpus = context.workload.corpus
        matches = 0
        for mate_result, prefix_result in zip(mate.results, prefix.results):
            mate_best = max(
                (
                    joinability
                    for table_id, joinability in mate_result.result_tuples()
                    if corpus.get_table(table_id).num_columns
                    <= max_candidate_columns
                ),
                default=0,
            )
            prefix_best = max(
                (j for _, j in prefix_result.result_tuples()), default=0
            )
            if mate_best == prefix_best:
                matches += 1
        num_queries = max(len(context.queries), 1)
        mappings = prefix.counters.extra.get("mappings_evaluated", 0.0)
        skipped = prefix.counters.extra.get("tables_skipped_too_wide", 0.0)
        slowdown = (
            prefix.mean_runtime / mate.mean_runtime if mate.mean_runtime > 0 else 0.0
        )
        rows.append(
            [
                workload_name,
                round(mate.mean_runtime, 4),
                round(prefix.mean_runtime, 4),
                round(slowdown, 1),
                int(mappings / num_queries),
                int(skipped),
                f"{matches}/{num_queries}",
            ]
        )
    return ExperimentResult(
        name="Related work: MATE vs prefix-tree (Li et al.) n-ary joinability",
        headers=[
            "query set",
            "mate runtime (s)",
            "prefix-tree runtime (s)",
            "slowdown",
            "avg mappings enumerated",
            "tables skipped (too wide)",
            "best-score agreement (evaluable tables)",
        ],
        rows=rows,
        notes=[
            "Expected shape: without a known column mapping the prefix-tree "
            "baseline enumerates P(|T'|, |Q|) mappings per candidate table "
            "and is substantially slower than MATE, while (being exhaustive "
            "over the mappings it can afford) it finds the same best "
            "joinability as MATE on the tables narrow enough for it to "
            "evaluate; wide joinable tables are simply out of its reach, "
            "which is the §8 critique in measurable form.",
        ],
    )
