"""Fetch-cost study: what the excluded disk-fetch time would look like.

Section 7.2 excludes index fetch time from the runtime comparison but notes
it "can vary between 1 and 40 seconds when the data and the index has to be
retrieved from disk".  Two of MATE's design decisions directly control that
cost, and this experiment quantifies both on the simulated paged store
(:class:`repro.storage.PagedPostingStore`):

* the **initial-column heuristic** (Section 6.1) determines how many posting
  lists — hence pages — the single index probe touches;
* the **super-key layout** (Section 7.1, per-cell vs per-row) determines how
  wide each posting list is on disk.

Reported per query set: estimated cold-cache fetch seconds and pages touched
for the cardinality heuristic vs the worst-case column choice, under both
layouts.
"""

from __future__ import annotations

from ..core import COLUMN_SELECTORS
from ..datamodel import MISSING
from ..storage import FetchCostModel, PagedPostingStore
from .runner import ExperimentResult, ExperimentSettings, build_context

#: Query sets covered by default: one web-table-like, one open-data-like.
DEFAULT_FETCH_WORKLOADS: tuple[str, ...] = ("WT_100", "OD_1000")


def run_fetch_cost(
    settings: ExperimentSettings | None = None,
    workload_names: tuple[str, ...] = DEFAULT_FETCH_WORKLOADS,
    hash_size: int = 128,
    page_size_bytes: int = 8192,
    cost_model: FetchCostModel | None = None,
) -> ExperimentResult:
    """Estimate the disk-fetch cost per query set, heuristic, and layout."""
    settings = settings or ExperimentSettings()
    cost_model = cost_model or FetchCostModel()

    rows: list[list[object]] = []
    for offset, workload_name in enumerate(workload_names):
        context = build_context(workload_name, settings, seed_offset=offset)
        index = context.index("xash", hash_size)
        per_cell_store = PagedPostingStore(
            index,
            page_size_bytes=page_size_bytes,
            include_super_keys=True,
            cost_model=cost_model,
        )
        per_row_store = PagedPostingStore(
            index,
            page_size_bytes=page_size_bytes,
            include_super_keys=False,
            cost_model=cost_model,
        )

        for selector_name in ("cardinality", "worst_case"):
            selector = COLUMN_SELECTORS[selector_name]
            pages = 0
            pl_items = 0
            per_cell_seconds = 0.0
            per_row_seconds = 0.0
            for query in context.queries:
                column = selector(query, index)
                values = sorted(
                    v
                    for v in query.table.distinct_column_values(column)
                    if v != MISSING
                )
                pl_items += index.posting_count_for_values(values)
                per_cell_seconds += per_cell_store.estimated_fetch_seconds(values)
                per_row_seconds += per_row_store.estimated_fetch_seconds(values)
                touched: set[int] = set()
                for value in values:
                    touched.update(per_cell_store.pages_for_value(value))
                pages += len(touched)
            num_queries = max(len(context.queries), 1)
            rows.append(
                [
                    workload_name,
                    selector_name,
                    round(pl_items / num_queries, 1),
                    round(pages / num_queries, 1),
                    round(per_cell_seconds / num_queries, 5),
                    round(per_row_seconds / num_queries, 5),
                ]
            )
    return ExperimentResult(
        name="Fetch-cost study: pages and estimated seconds per initial probe",
        headers=[
            "query set",
            "initial column",
            "avg PL items fetched",
            "avg pages touched (per-cell layout)",
            "est. fetch s (per-cell)",
            "est. fetch s (per-row)",
        ],
        rows=rows,
        notes=[
            "Expected shape: the cardinality heuristic fetches no more PL "
            "items than the worst-case column choice (by construction), and "
            "the per-row super-key layout is never more expensive to fetch "
            "than the per-cell layout (posting lists are narrower).  Pages "
            "touched usually follow the PL-item ordering but can deviate on "
            "tiny corpora where popular values share pages.",
            "Absolute seconds depend on the synthetic cost model; the paper "
            "only states the 1-40 s range for its 250 GB corpus.",
        ],
    )
