"""Rendering and export of experiment results.

Every experiment module returns an
:class:`~repro.experiments.runner.ExperimentResult`; the helpers below turn
its rows into aligned text tables (mirroring the tables and figures of the
paper), and export them as CSV or JSON for downstream analysis (plotting,
regression tracking across runs).
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .runner import ExperimentResult


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None
) -> str:
    """Render rows as a fixed-width text table."""
    materialised = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in materialised)
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_ratio(numerator: float, denominator: float) -> str:
    """Render a speed-up / ratio (e.g. ``"12.3x"``), guarding against zero."""
    if denominator <= 0:
        return "n/a"
    return f"{numerator / denominator:.1f}x"


def result_to_csv(result: "ExperimentResult") -> str:
    """Render an experiment result as CSV text (header row + data rows)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(result.headers)
    for row in result.rows:
        writer.writerow([_format_cell(cell) for cell in row])
    return buffer.getvalue()


def result_to_json(result: "ExperimentResult") -> str:
    """Render an experiment result as a JSON document.

    The document carries the experiment name, the header-keyed rows, and the
    shape notes, so a plotting script has everything it needs in one file.
    """
    payload = {
        "name": result.name,
        "headers": list(result.headers),
        "rows": result.row_dicts(),
        "notes": list(result.notes),
    }
    return json.dumps(payload, indent=2, default=str)


def save_result(
    result: "ExperimentResult", path: str | Path, format: str | None = None
) -> Path:
    """Write an experiment result to ``path`` as text, CSV, or JSON.

    The format is taken from the file suffix (``.csv`` / ``.json``, anything
    else is plain text) unless ``format`` overrides it.
    """
    path = Path(path)
    chosen = (format or path.suffix.lstrip(".")).lower()
    if chosen == "csv":
        content = result_to_csv(result)
    elif chosen == "json":
        content = result_to_json(result)
    else:
        content = result.to_text() + "\n"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content, encoding="utf-8")
    return path
