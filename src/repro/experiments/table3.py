"""Table 3: row-filter precision under different hash functions.

Precision is TP / (TP + FP) over the rows that survive the row filter
(Section 7.4), reported as mean ± std across the queries of each set, for the
128- and 512-bit hash sizes.
"""

from __future__ import annotations

from .runner import ExperimentResult, ExperimentSettings, build_context, run_mate

#: Hash functions evaluated in Table 3.
TABLE3_HASHES: tuple[str, ...] = (
    "md5",
    "cityhash",
    "simhash",
    "hashtable",
    "bloom",
    "lhbf",
    "xash",
)

DEFAULT_TABLE3_WORKLOADS: tuple[str, ...] = (
    "WT_10", "WT_100", "WT_1000", "OD_100", "OD_1000", "OD_10000", "School", "Kaggle",
)


def run_table3(
    settings: ExperimentSettings | None = None,
    workload_names: tuple[str, ...] = DEFAULT_TABLE3_WORKLOADS,
    hash_functions: tuple[str, ...] = TABLE3_HASHES,
    hash_sizes: tuple[int, ...] = (128, 512),
) -> ExperimentResult:
    """Reproduce the Table 3 precision sweep (mean ± std per query set)."""
    settings = settings or ExperimentSettings()

    headers = ["query set"]
    for hash_function in hash_functions:
        for hash_size in hash_sizes:
            headers.append(f"{hash_function}/{hash_size}")

    rows: list[list[object]] = []
    per_cell_means: dict[str, list[float]] = {}
    for offset, name in enumerate(workload_names):
        context = build_context(name, settings, seed_offset=offset)
        row: list[object] = [name]
        for hash_function in hash_functions:
            for hash_size in hash_sizes:
                run = run_mate(context, hash_function, hash_size)
                cell = f"{run.precision_mean:.2f}±{run.precision_std:.2f}"
                row.append(cell)
                per_cell_means.setdefault(f"{hash_function}/{hash_size}", []).append(
                    run.precision_mean
                )
        rows.append(row)

    average_row: list[object] = ["Average"]
    for hash_function in hash_functions:
        for hash_size in hash_sizes:
            means = per_cell_means.get(f"{hash_function}/{hash_size}", [])
            mean = sum(means) / len(means) if means else 0.0
            average_row.append(f"{mean:.2f}")
    rows.append(average_row)

    return ExperimentResult(
        name="Table 3: row-filter precision (mean±std per query set)",
        headers=headers,
        rows=rows,
        notes=[
            "Expected shape: XASH has the highest average precision at both "
            "hash sizes; precision grows with hash size; uniform hashes "
            "(MD5/CityHash/SimHash) are lowest.",
        ],
    )
