"""Batch-discovery service study (extension beyond the paper).

Measures what the serving layer (a :class:`~repro.api.session.DiscoverySession`
over a sharded, cached index) buys on top of the single-query engine: per
shard count, a batch of queries is answered twice — once with a cold
posting-list cache and once warm — and both passes are checked for exact
agreement with cold sequential
:class:`~repro.core.discovery.MateDiscovery` runs.

Expected shape: results identical to the sequential reference for every
shard count and both passes (the cache is read-through and the shard fan-out
is order-preserving); the warm pass reaches a 100% cache hit rate and a
higher throughput, and batching itself deduplicates any probe values shared
between the batch's queries.
"""

from __future__ import annotations

from ..api import DiscoveryRequest, DiscoverySession
from ..config import ServiceConfig
from ..core import MateDiscovery
from ..index import build_sharded_index
from .runner import ExperimentResult, ExperimentSettings, build_context

#: Shard counts swept by default.
DEFAULT_SERVICE_SHARD_COUNTS: tuple[int, ...] = (1, 2, 4)


def run_batch_service(
    settings: ExperimentSettings | None = None,
    workload_name: str = "WT_100",
    shard_counts: tuple[int, ...] = DEFAULT_SERVICE_SHARD_COUNTS,
    hash_size: int = 128,
    cache_capacity: int = 4096,
    max_workers: int = 1,
) -> ExperimentResult:
    """Compare batched/cached serving against cold sequential discovery."""
    settings = settings or ExperimentSettings()
    context = build_context(workload_name, settings)
    corpus = context.workload.corpus
    config = context.config(hash_size)
    queries = list(context.queries)

    reference_engine = MateDiscovery(
        corpus, context.index("xash", hash_size), config=config
    )
    reference = [
        reference_engine.discover(query, k=settings.k).result_tuples()
        for query in queries
    ]

    rows: list[list[object]] = []
    for num_shards in shard_counts:
        index = build_sharded_index(
            corpus, num_shards=num_shards, config=config, hash_function_name="xash"
        )
        session = DiscoverySession(
            corpus,
            index,
            config=config,
            service_config=ServiceConfig(
                num_shards=num_shards,
                cache_capacity=cache_capacity,
                max_workers=max_workers,
            ),
        )
        requests = [
            DiscoveryRequest(query=query, k=settings.k) for query in queries
        ]
        cold = session.discover_batch(requests)
        warm = session.discover_batch(requests)
        matches = sum(
            1
            for passes in (cold, warm)
            for served, expected in zip(passes, reference)
            if served.result_tuples() == expected
        )
        rows.append(
            [
                num_shards,
                f"{matches}/{2 * len(queries)}",
                round(cold.stats.queries_per_second, 1),
                round(warm.stats.queries_per_second, 1),
                round(cold.stats.cache.hit_rate, 2),
                round(warm.stats.cache.hit_rate, 2),
                cold.stats.duplicate_probe_values,
            ]
        )
    return ExperimentResult(
        name=f"Batch discovery service on {workload_name}",
        headers=[
            "shards",
            "top-k identical",
            "cold batch q/s",
            "warm batch q/s",
            "cold hit rate",
            "warm hit rate",
            "deduplicated values",
        ],
        rows=rows,
        notes=[
            "Expected shape: every served result equals the cold sequential "
            "MateDiscovery reference (both passes, every shard count); the "
            "warm pass serves all probe values from the LRU cache (hit rate "
            "1.0) and improves throughput accordingly.",
        ],
    )
