"""Shared infrastructure for the experiment harness.

Each experiment module (one per table/figure of the paper) follows the same
recipe: build one or more Table 1 workloads, build the index once per hash
function and hash size, run the systems under test on every query, and
aggregate runtimes / precision.  This module centralises that plumbing:

* :class:`ExperimentSettings` — the scale knobs (number of queries per set,
  corpus scale, seed, hash sizes, k) shared by every experiment; benchmarks
  use the small defaults, users can crank them up.
* :class:`WorkloadContext` — a workload plus lazily built, cached indexes
  (per hash function and hash size) and JOSIE index.
* :func:`run_mate` / :func:`run_system` — run a discovery engine over every
  query of a workload and aggregate the counters.
* :class:`ExperimentResult` — a uniform "headers + rows + notes" result that
  renders to text via :mod:`repro.experiments.reporting`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..api import DiscoveryRequest, DiscoverySession
from ..baselines import JosieIndex
from ..config import MateConfig, ServiceConfig
from ..core import DiscoveryResult
from ..datagen import QueryWorkload, build_workload
from ..datamodel import QueryTable
from ..index import IndexBuilder, InvertedIndex
from ..metrics import DiscoveryCounters, summarize_precision

#: A factory building a discovery engine for a given workload context and
#: hash size; used by run_system to treat MATE and baselines uniformly.
SystemFactory = Callable[["WorkloadContext", int], object]


@dataclass(frozen=True)
class ExperimentSettings:
    """Scale and reproducibility knobs shared by all experiments."""

    seed: int = 7
    #: Queries per query set (the paper uses 150; default is laptop scale).
    num_queries: int = 3
    #: Scale factor for the corpus profiles (1.0 = the DESIGN.md defaults).
    corpus_scale: float = 0.5
    #: Number of requested joinable tables.
    k: int = 10
    #: Hash sizes to sweep where the experiment calls for it.
    hash_sizes: tuple[int, ...] = (128, 256, 512)
    #: Corpus-size estimate used for the Eq. 5 one-bit budget.  The default is
    #: the paper's DWTC figure (700M unique values, giving alpha = 6 at 128
    #: bits): XASH's bit budget is a property of the targeted corpus scale,
    #: not of the scaled-down synthetic stand-in.
    expected_unique_values: int = 700_000_000

    def config(self, hash_size: int = 128, **overrides: object) -> MateConfig:
        """Build a :class:`MateConfig` for the given hash size."""
        parameters: dict[str, object] = {
            "hash_size": hash_size,
            "k": self.k,
            "expected_unique_values": self.expected_unique_values,
        }
        parameters.update(overrides)
        return MateConfig(**parameters)  # type: ignore[arg-type]


@dataclass
class WorkloadContext:
    """A workload plus cached indexes for the hash functions under test."""

    workload: QueryWorkload
    settings: ExperimentSettings
    _indexes: dict[tuple[str, int], InvertedIndex] = field(default_factory=dict)
    _josie_index: JosieIndex | None = None
    _avg_columns: float | None = None

    @property
    def name(self) -> str:
        """Name of the underlying query set (e.g. ``"WT_100"``)."""
        return self.workload.name

    @property
    def queries(self) -> list[QueryTable]:
        """The workload's query tables."""
        return self.workload.queries

    def average_columns(self) -> float:
        """Average columns per corpus table (the bloom-filter ``V``, §7.1.2)."""
        if self._avg_columns is None:
            self._avg_columns = self.workload.corpus.average_columns_per_table()
        return self._avg_columns

    def config(self, hash_size: int = 128) -> MateConfig:
        """The configuration used for this workload's indexes and engines.

        Mirrors the paper's setup: the bloom-filter baselines receive the
        corpus' average column count as their ``V`` parameter.
        """
        return self.settings.config(
            hash_size, bloom_values_per_row=self.average_columns()
        )

    def index(self, hash_function: str = "xash", hash_size: int = 128) -> InvertedIndex:
        """Return (building and caching on first use) the requested index."""
        key = (hash_function, hash_size)
        if key not in self._indexes:
            builder = IndexBuilder(
                config=self.config(hash_size), hash_function_name=hash_function
            )
            self._indexes[key] = builder.build(self.workload.corpus)
        return self._indexes[key]

    def session(
        self, hash_function: str = "xash", hash_size: int = 128
    ) -> DiscoverySession:
        """Return a *fresh* discovery session over the cached index.

        A new session (and therefore a cold engine with empty memoised hash
        caches) is built per call, so repeated runs stay comparable cold
        measurements — exactly like constructing a fresh engine by hand.
        Only the index is reused (cached per hash layout); the posting-list
        cache is disabled for the same reason.
        """
        return DiscoverySession(
            self.workload.corpus,
            self.index(hash_function, hash_size),
            config=self.config(hash_size),
            service_config=ServiceConfig(cache_capacity=0),
        )

    def josie_index(self) -> JosieIndex:
        """Return (building and caching on first use) the JOSIE set index."""
        if self._josie_index is None:
            self._josie_index = JosieIndex.build(self.workload.corpus)
        return self._josie_index


def build_context(
    workload_name: str, settings: ExperimentSettings, seed_offset: int = 0
) -> WorkloadContext:
    """Build a workload (scaled per the settings) and wrap it in a context."""
    workload = build_workload(
        workload_name,
        seed=settings.seed + seed_offset,
        num_queries=settings.num_queries,
        corpus_scale=settings.corpus_scale,
    )
    return WorkloadContext(workload=workload, settings=settings)


@dataclass
class AggregatedRun:
    """Aggregate of one system over every query of one workload."""

    system: str
    workload: str
    total_runtime: float
    mean_runtime: float
    precision_mean: float
    precision_std: float
    counters: DiscoveryCounters
    results: list[DiscoveryResult] = field(default_factory=list)

    @property
    def false_positive_rows(self) -> int:
        """Total number of false-positive rows across all queries."""
        return self.counters.false_positive_rows


def aggregate_results(
    system: str, workload: str, results: Sequence[DiscoveryResult]
) -> AggregatedRun:
    """Aggregate per-query results into a single :class:`AggregatedRun`."""
    total = DiscoveryCounters()
    precisions = []
    for result in results:
        total.merge(result.counters)
        precisions.append(result.precision)
    summary = summarize_precision(precisions)
    runtimes = [result.runtime_seconds for result in results]
    total_runtime = sum(runtimes)
    mean_runtime = total_runtime / len(runtimes) if runtimes else 0.0
    return AggregatedRun(
        system=system,
        workload=workload,
        total_runtime=total_runtime,
        mean_runtime=mean_runtime,
        precision_mean=summary.mean,
        precision_std=summary.std,
        counters=total,
        results=list(results),
    )


def run_mate(
    context: WorkloadContext,
    hash_function: str = "xash",
    hash_size: int = 128,
    k: int | None = None,
    row_filter_mode: str = "superkey",
    label: str | None = None,
) -> AggregatedRun:
    """Run MATE (with the given hash function) over every query of a workload.

    Queries go through the unified discovery API: one
    :class:`~repro.api.request.DiscoveryRequest` per query, dispatched by the
    context's cached :class:`~repro.api.session.DiscoverySession` — the same
    code path the CLI and the serving layer use.
    """
    settings = context.settings
    session = context.session(hash_function, hash_size)
    results = [
        session.discover(
            DiscoveryRequest(
                query=query,
                k=k or settings.k,
                engine="mate",
                hash_function=hash_function,
                row_filter_mode=row_filter_mode,
            )
        ).response
        for query in context.queries
    ]
    system = label or f"mate[{hash_function}/{hash_size}]"
    return aggregate_results(system, context.name, results)


def run_system(
    context: WorkloadContext,
    factory: SystemFactory,
    label: str,
    hash_size: int = 128,
    k: int | None = None,
) -> AggregatedRun:
    """Run an arbitrary discovery engine built by ``factory`` over a workload."""
    engine = factory(context, hash_size)
    results = [
        engine.discover(query, k=k or context.settings.k)  # type: ignore[attr-defined]
        for query in context.queries
    ]
    return aggregate_results(label, context.name, results)


@dataclass
class ExperimentResult:
    """Uniform result shape for every experiment: a titled table of rows."""

    name: str
    headers: list[str]
    rows: list[list[object]]
    notes: list[str] = field(default_factory=list)

    def to_text(self) -> str:
        """Render the result as an aligned text table (plus notes)."""
        from .reporting import format_table

        text = format_table(self.headers, self.rows, title=self.name)
        if self.notes:
            text += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return text

    def row_dicts(self) -> list[dict[str, object]]:
        """Return rows as header-keyed dictionaries."""
        return [dict(zip(self.headers, row)) for row in self.rows]
