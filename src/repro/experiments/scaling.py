"""Corpus-size scaling study (extension beyond the paper's figures).

The paper argues that MATE's advantage over the unfiltered SCR adaptation
grows with the number of false-positive rows, which in turn grows with the
corpus (Section 7.2: "Performance gain of Mate over SCR-based approaches
depends on the number of FP rows").  The evaluation varies the *query*
cardinality (Figure 4) but keeps each corpus fixed; this experiment varies
the corpus size directly and reports, per scale factor, the FP pressure and
the runtime of MATE and SCR.

Expected shape: FP rows grow roughly linearly with the corpus scale, SCR's
runtime grows with them, and MATE's relative advantage widens.
"""

from __future__ import annotations

from dataclasses import replace

from .runner import ExperimentResult, ExperimentSettings, build_context, run_mate

#: Corpus scale factors swept by default (multiples of the settings' scale).
DEFAULT_SCALE_FACTORS: tuple[float, ...] = (0.5, 1.0, 2.0)


def run_scaling(
    settings: ExperimentSettings | None = None,
    workload_name: str = "WT_100",
    scale_factors: tuple[float, ...] = DEFAULT_SCALE_FACTORS,
    hash_size: int = 128,
) -> ExperimentResult:
    """Measure MATE vs SCR as the corpus grows.

    ``scale_factors`` multiply the corpus scale configured in ``settings``;
    the query set itself is held fixed so only the corpus-side FP pressure
    changes.
    """
    settings = settings or ExperimentSettings()

    rows: list[list[object]] = []
    for factor in scale_factors:
        scaled_settings = replace(
            settings, corpus_scale=settings.corpus_scale * factor
        )
        context = build_context(workload_name, scaled_settings)
        corpus_tables = len(context.workload.corpus)
        mate = run_mate(context, "xash", hash_size, label="mate")
        scr = run_mate(
            context, "xash", hash_size, row_filter_mode="none", label="scr"
        )
        speedup = (
            scr.mean_runtime / mate.mean_runtime if mate.mean_runtime > 0 else 0.0
        )
        rows.append(
            [
                factor,
                corpus_tables,
                round(mate.mean_runtime, 4),
                round(scr.mean_runtime, 4),
                round(speedup, 2),
                mate.counters.false_positive_rows,
                scr.counters.rows_passed_filter,
            ]
        )
    return ExperimentResult(
        name=f"Scaling study: corpus size sweep on {workload_name}",
        headers=[
            "scale factor",
            "corpus tables",
            "mate runtime (s)",
            "scr runtime (s)",
            "scr/mate",
            "mate FP rows",
            "scr unfiltered rows",
        ],
        rows=rows,
        notes=[
            "Expected shape: the number of candidate rows SCR must verify "
            "grows with the corpus, and MATE's speed-up over SCR widens (or "
            "at least does not shrink) as the corpus grows.",
        ],
    )
