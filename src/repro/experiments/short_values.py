"""Short-key-value study: plain XASH vs the bigram-extended variant (§9).

The paper's conclusion identifies short key values as the case where XASH
"cannot use its optimal potential": a two-character country code sets at most
two character bits, so many unrelated short values collide under
OR-aggregation.  This experiment builds a workload whose composite keys are
made of short codes and measures the row-filter precision and runtime of

* plain ``xash`` (the paper's hash),
* ``xash_short`` (the bigram-extended variant of
  :mod:`repro.hashing.short_values`), and
* the bloom-filter baseline for reference.

Expected shape: on short-key workloads ``xash_short`` filters at least as
well as plain XASH (strictly better when the key values leave budget unused);
on ordinary workloads the two behave identically because the bigram path
never triggers.
"""

from __future__ import annotations

import random

from ..core import MateDiscovery
from ..datagen import OPEN_DATA_PROFILE, SyntheticCorpusGenerator
from ..datagen.planting import plant_distractor_table, plant_joinable_table
from ..datamodel import QueryTable, Table, TableCorpus
from ..index import IndexBuilder
from ..metrics import summarize_precision
from .runner import ExperimentResult, ExperimentSettings

#: Hash functions compared, in report order.
SHORT_VALUE_HASHES: tuple[str, ...] = ("xash", "xash_short", "bloom")

#: Alphabet used for the short codes (letters only, like ISO country codes).
_CODE_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def _random_code(rng: random.Random, min_length: int, max_length: int) -> str:
    length = rng.randint(min_length, max_length)
    return "".join(rng.choice(_CODE_ALPHABET) for _ in range(length))


def build_short_value_scenario(
    settings: ExperimentSettings,
    cardinality: int = 60,
    code_length: tuple[int, int] = (2, 3),
    key_size: int = 2,
) -> tuple[TableCorpus, list[QueryTable]]:
    """Build a corpus and queries whose composite keys are short codes.

    The corpus is an open-data-profile corpus (wide tables, so super keys
    aggregate many values) into which joinable and distractor tables are
    planted for every query; the query key columns hold 2-3 character codes,
    the regime the paper flags as hard for XASH.
    """
    rng = random.Random(settings.seed)
    profile = OPEN_DATA_PROFILE.scaled(settings.corpus_scale)
    corpus = SyntheticCorpusGenerator(profile=profile, seed=settings.seed).generate(
        name="short_value_corpus"
    )

    queries: list[QueryTable] = []
    for query_index in range(settings.num_queries):
        code_pool = list({
            _random_code(rng, *code_length) for _ in range(cardinality * 3)
        })
        rng.shuffle(code_pool)
        rows = []
        for row_index in range(cardinality):
            rows.append(
                [
                    code_pool[row_index % len(code_pool)],
                    code_pool[(row_index * 7 + 1) % len(code_pool)],
                    str(rng.randint(0, 10_000)),
                ]
            )
        table = Table(
            table_id=4_000_000 + query_index,
            name=f"short_value_query_{query_index}",
            columns=["code_a", "code_b", "measure"],
            rows=rows,
        )
        query = QueryTable(table=table, key_columns=["code_a", "code_b"][:key_size])
        queries.append(query)
        for plant_index in range(3):
            plant_joinable_table(
                corpus,
                query,
                rng,
                joinability=max(2, cardinality // (plant_index + 2)),
                noise_rows=rng.randint(5, 15),
                partial_rows=cardinality,
            )
        for _ in range(3):
            plant_distractor_table(
                corpus,
                query,
                rng,
                matching_rows=2 * cardinality,
                noise_rows=rng.randint(5, 15),
            )
    return corpus, queries


def run_short_values(
    settings: ExperimentSettings | None = None,
    hash_size: int = 128,
    hashes: tuple[str, ...] = SHORT_VALUE_HASHES,
    cardinality: int = 60,
) -> ExperimentResult:
    """Compare hash functions on a short-key-value workload."""
    settings = settings or ExperimentSettings()
    corpus, queries = build_short_value_scenario(settings, cardinality=cardinality)

    rows: list[list[object]] = []
    for hash_name in hashes:
        config = settings.config(
            hash_size, bloom_values_per_row=corpus.average_columns_per_table()
        )
        index = IndexBuilder(config=config, hash_function_name=hash_name).build(corpus)
        engine = MateDiscovery(
            corpus, index, config=config, hash_function_name=hash_name
        )
        results = [engine.discover(query, k=settings.k) for query in queries]
        precision = summarize_precision([r.precision for r in results])
        false_positives = sum(r.counters.false_positive_rows for r in results)
        runtime = sum(r.runtime_seconds for r in results) / max(len(results), 1)
        rows.append(
            [
                hash_name,
                round(precision.mean, 3),
                round(precision.std, 3),
                false_positives,
                round(runtime, 4),
            ]
        )
    return ExperimentResult(
        name="Short key values: XASH vs bigram-extended XASH vs BF",
        headers=["hash", "precision", "std", "FP rows", "runtime (s)"],
        rows=rows,
        notes=[
            "Expected shape: on composite keys made of 2-3 character codes, "
            "plain xash under-uses its bit budget — this is exactly the §9 "
            "weakness, and it can even fall behind the bloom filter here — "
            "while xash_short recovers most of the lost precision by "
            "spending the unused budget on bigrams.",
        ],
    )
