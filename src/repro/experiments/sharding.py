"""Sharded (scale-out) discovery study (extension beyond the paper).

The paper ran MATE single-node on a 128-core server; at DWTC scale the index
would be sharded across workers.  This experiment validates the scale-out
construction of :class:`repro.core.ShardedMateDiscovery`:

* per shard count, the merged top-k must equal the single-engine top-k (the
  merge-correctness argument of the module docstring);
* the per-shard work balance and the critical-path runtime (the slowest
  shard) indicate what a real deployment would gain.

Expected shape: results identical for every shard count; the critical-path
runtime shrinks as shards are added (with diminishing returns once shards
hold only a handful of candidate tables each).
"""

from __future__ import annotations

from ..core import MateDiscovery, ShardedMateDiscovery
from .runner import ExperimentResult, ExperimentSettings, build_context

#: Shard counts swept by default.
DEFAULT_SHARD_COUNTS: tuple[int, ...] = (1, 2, 4, 8)


def run_sharding(
    settings: ExperimentSettings | None = None,
    workload_name: str = "WT_100",
    shard_counts: tuple[int, ...] = DEFAULT_SHARD_COUNTS,
    hash_size: int = 128,
) -> ExperimentResult:
    """Compare sharded discovery against the single-engine reference."""
    settings = settings or ExperimentSettings()
    context = build_context(workload_name, settings)
    corpus = context.workload.corpus
    config = context.config(hash_size)

    reference_engine = MateDiscovery(corpus, context.index("xash", hash_size), config=config)
    # The comparison uses the sorted joinability scores of the top-k: those
    # are guaranteed identical under sharding, whereas the table *identities*
    # at tie boundaries may legitimately differ (several tables sharing the
    # k-th best score).
    reference = {
        query_index: sorted(
            (j for _, j in reference_engine.discover(query, k=settings.k).result_tuples()),
            reverse=True,
        )
        for query_index, query in enumerate(context.queries)
    }

    rows: list[list[object]] = []
    for num_shards in shard_counts:
        sharded = ShardedMateDiscovery(
            corpus, num_shards=num_shards, config=config, hash_function_name="xash"
        )
        matches = 0
        critical_path = 0.0
        total_work = 0.0
        imbalance = 0.0
        for query_index, query in enumerate(context.queries):
            result = sharded.discover(query, k=settings.k)
            scores = sorted(
                (j for _, j in result.result_tuples()), reverse=True
            )
            if scores == reference[query_index]:
                matches += 1
            critical_path += result.counters.runtime_seconds
            total_work += result.counters.extra.get("total_shard_seconds", 0.0)
            imbalance += sharded.work_imbalance()
        num_queries = max(len(context.queries), 1)
        rows.append(
            [
                num_shards,
                f"{matches}/{num_queries}",
                round(critical_path / num_queries, 4),
                round(total_work / num_queries, 4),
                round(imbalance / num_queries, 2),
            ]
        )
    return ExperimentResult(
        name=f"Sharded discovery on {workload_name}",
        headers=[
            "shards",
            "top-k scores identical",
            "critical-path runtime (s)",
            "total shard work (s)",
            "work imbalance",
        ],
        rows=rows,
        notes=[
            "Expected shape: the merged top-k joinability scores equal the "
            "single-engine scores for every shard count (table identities may "
            "differ only at tie boundaries); the critical-path runtime "
            "(slowest shard) drops as shards are added while the summed work "
            "stays roughly constant.",
        ],
    )
