"""Index-generation experiment (the "Index generation" paragraph of §7.1).

Reports, per corpus, the build time of the MATE index and its additional
storage under the per-cell and per-row super-key layouts, next to the build
time/size of a JOSIE-style set index — the same comparison the paper makes in
prose (123.6 GB vs 21.6 GB vs 293 GB for web tables, 35 h vs 336 h build
time, etc.), at synthetic-corpus scale.
"""

from __future__ import annotations

from ..baselines import JosieIndex
from ..index import IndexBuilder, JOSIE_BYTES_PER_ENTRY, storage_report
from .runner import ExperimentResult, ExperimentSettings, build_context


def run_index_generation(
    settings: ExperimentSettings | None = None,
    workload_names: tuple[str, ...] = ("WT_100", "OD_1000"),
    hash_size: int = 128,
) -> ExperimentResult:
    """Measure index build time and storage for MATE and JOSIE-style indexes."""
    settings = settings or ExperimentSettings()
    rows: list[list[object]] = []
    for offset, name in enumerate(workload_names):
        context = build_context(name, settings, seed_offset=offset)
        corpus = context.workload.corpus

        builder = IndexBuilder(
            config=settings.config(hash_size), hash_function_name="xash"
        )
        index = builder.build(corpus)
        build_report = builder.last_report
        storage = storage_report(index)

        josie_index = JosieIndex.build(corpus)
        josie_bytes = josie_index.num_posting_items() * JOSIE_BYTES_PER_ENTRY

        rows.append(
            [
                name,
                len(corpus),
                round(build_report.build_seconds, 4) if build_report else 0.0,
                round(josie_index.build_seconds, 4),
                storage.super_key_bytes_per_cell,
                storage.super_key_bytes_per_row,
                josie_bytes,
                storage.posting_bytes,
            ]
        )
    return ExperimentResult(
        name="Index generation: build time and extra storage (bytes)",
        headers=[
            "corpus",
            "tables",
            "mate build (s)",
            "josie build (s)",
            "super keys / cell (B)",
            "super keys / row (B)",
            "josie extra (B)",
            "postings (B)",
        ],
        rows=rows,
        notes=[
            "Expected shape (paper §7.1): the per-row super-key layout is far "
            "smaller than the per-cell layout, and the JOSIE set index needs "
            "more extra storage than MATE's super keys.",
        ],
    )
