"""Telemetry overhead study: what observability costs on the request path.

The telemetry subsystem (:mod:`repro.telemetry`) promises that a session
with telemetry *off* — the default — stays within 2% of running the engine
directly, because every instrumented branch gates on a module-level "any
enabled tracer?" integer before touching contextvars or clocks.  This
experiment measures that promise so CI can enforce it
(``scripts/check_bench_stage_stats.py`` over ``BENCH_telemetry.json``):

* ``engine_direct`` — :class:`~repro.core.discovery.MateDiscovery` called
  directly, no session, no telemetry anywhere: the floor.
* ``session_idle`` — the same queries through a
  :class:`~repro.api.session.DiscoverySession` with its default telemetry
  (metrics registry live, tracing off, cache disabled so the comparison is
  engine work, not cache hits).  This is the guarded configuration.
* ``session_tracing`` — tracing *on* (spans collected in memory), to report
  what full tracing costs when explicitly requested (not guarded).

Timing is the **minimum over interleaved repeats** (``MATE_BENCH_REPEATS``,
default 3): interleaving cancels slow drift (thermal, page cache), and the
minimum is the standard noise-robust estimator for "how fast can this go".
"""

from __future__ import annotations

import os
import time

from ..api import DiscoveryRequest, DiscoverySession
from ..config import ServiceConfig
from ..core.discovery import MateDiscovery
from ..datagen import build_workload
from ..index import build_index
from ..telemetry import InMemoryExporter, Telemetry, Tracer
from .runner import ExperimentResult, ExperimentSettings

#: Modes under comparison, in reporting order.
TELEMETRY_MODES: tuple[str, ...] = (
    "engine_direct",
    "session_idle",
    "session_tracing",
)

#: The CI guard: ``session_idle`` must stay within this factor of
#: ``engine_direct`` (checked by ``scripts/check_bench_stage_stats.py``).
IDLE_OVERHEAD_LIMIT = 1.02


def _bench_repeats() -> int:
    return max(1, int(os.environ.get("MATE_BENCH_REPEATS", "3")))


def run_telemetry(
    settings: ExperimentSettings, repeats: int | None = None
) -> ExperimentResult:
    """Measure session/telemetry overhead against the bare engine."""
    repeats = repeats if repeats is not None else _bench_repeats()
    workload = build_workload(
        "WT_100",
        seed=settings.seed,
        num_queries=settings.num_queries,
        corpus_scale=settings.corpus_scale,
    )
    corpus, queries = workload.corpus, workload.queries
    config = settings.config(128)
    index = build_index(corpus, config=config)
    service_config = ServiceConfig(cache_capacity=0)

    engine = MateDiscovery(corpus, index, config=config)
    idle_session = DiscoverySession(
        corpus, index, config=config, service_config=service_config
    )
    exporter = InMemoryExporter()
    tracing_session = DiscoverySession(
        corpus,
        index,
        config=config,
        service_config=service_config,
        telemetry=Telemetry(tracer=Tracer(exporter)),
    )

    requests = [DiscoveryRequest(query=query, k=settings.k) for query in queries]

    def _run_direct() -> None:
        for query in queries:
            engine.discover(query, k=settings.k)

    def _run_session(session: DiscoverySession) -> None:
        for request in requests:
            session.discover(request)

    runners = {
        "engine_direct": _run_direct,
        "session_idle": lambda: _run_session(idle_session),
        "session_tracing": lambda: _run_session(tracing_session),
    }

    best: dict[str, float] = {mode: float("inf") for mode in TELEMETRY_MODES}
    span_count = 0
    try:
        # One untimed warm-up pass per mode (imports, allocator, branch
        # predictors), then interleaved timed repeats.
        for runner in runners.values():
            runner()
        exporter.drain()
        for _ in range(repeats):
            for mode in TELEMETRY_MODES:
                started = time.perf_counter()
                runners[mode]()
                best[mode] = min(best[mode], time.perf_counter() - started)
        span_count = len(exporter.drain())
    finally:
        idle_session.close()
        tracing_session.close()

    direct = best["engine_direct"]
    headers = ["mode", "queries", "total s", "per-query ms", "vs direct", "spans"]
    rows: list[list[object]] = []
    for mode in TELEMETRY_MODES:
        total = best[mode]
        rows.append(
            [
                mode,
                len(queries),
                f"{total:.6f}",
                f"{total * 1000 / max(1, len(queries)):.3f}",
                f"{total / direct:.4f}" if direct > 0 else "n/a",
                span_count if mode == "session_tracing" else 0,
            ]
        )

    notes = [
        f"min over {repeats} interleaved repeats (MATE_BENCH_REPEATS), "
        "one untimed warm-up pass per mode; cache_capacity=0",
        "session_idle is the guarded configuration: CI enforces "
        f"total <= {IDLE_OVERHEAD_LIMIT:.2f} x engine_direct "
        "(scripts/check_bench_stage_stats.py)",
        "session_tracing collects spans in memory (InMemoryExporter); "
        "spans column counts the last timed repeat's exported spans",
    ]
    return ExperimentResult(
        name="Telemetry overhead: bare engine vs idle session vs tracing",
        headers=headers,
        rows=rows,
        notes=notes,
    )
