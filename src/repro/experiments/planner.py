"""Planner study (extension): fixed-seed vs cost-based vs adaptive plans.

The query planner (:mod:`repro.plan`) picks the run's initiator column from
index statistics instead of corpus-side heuristics.  This experiment builds
two deterministic, deliberately skewed corpora where that choice matters:

* **skew** — the query's first (and lowest-cardinality) key column is *hot*
  in the corpus: its four distinct values fetch long posting lists, while
  the second key column's values are rare.  The fixed first-column seed (and
  the classic cardinality heuristic) both walk into the hot column; the
  cost model sees the posting volumes and seeds from the cold column.
* **drift** — the cheap-looking column lies to the sampled estimate: the
  probe values at the sampled positions have tiny posting lists while every
  other value is hot.  Pure cost-based planning commits to the trap column;
  the adaptive executor notices the blown estimate after the first fetch
  chunk and re-plans onto the honest alternative mid-run.

Per scenario and per plan mode the experiment reports the executed seed
column, the PL items fetched (including fetches discarded by re-plans),
re-plan count, and whether the top-k matches the fixed-seed baseline —
MATE's verification is exact, so every mode must agree on the scores.
"""

from __future__ import annotations

from ..api import DiscoveryRequest, DiscoverySession
from ..config import ServiceConfig
from ..datamodel import QueryTable, Table, TableCorpus
from ..index import sample_positions
from ..plan import PlannerOptions
from .runner import ExperimentResult, ExperimentSettings

#: Plan modes under comparison ("fixed" = first-column seed, no planner).
PLANNER_MODES_UNDER_TEST: tuple[str, ...] = ("fixed", "cost", "adaptive")

#: Sampling/re-planning knobs shared by the cost and adaptive rows, chosen
#: so the drift scenario's trap column fits the sample budget's blind spots.
PLANNER_SAMPLE_SIZE = 16
PLANNER_CHECK_EVERY = 32
PLANNER_REPLAN_FACTOR = 2.0

#: Query-table id (outside every corpus id range, mirroring the CLI).
_QUERY_TABLE_ID = 10_000_000


def _hot_run_length(settings: ExperimentSettings) -> int:
    """Posting-list length of one hot value (scaled, floor keeps skew real)."""
    return max(10, int(80 * settings.corpus_scale))


def _build_skew_scenario(
    settings: ExperimentSettings,
) -> tuple[TableCorpus, QueryTable]:
    """Hot first key column vs cold second key column."""
    hot_length = _hot_run_length(settings)
    num_pairs = 48
    hot_values = [f"h{i}" for i in range(4)]
    pairs = [(hot_values[i % 4], f"c{i:03d}") for i in range(num_pairs)]

    corpus = TableCorpus(name="planner_skew")
    # Noise tables: every hot value repeated, partnered with junk — long
    # posting lists for the hot column, zero joinability.
    for j in range(6):
        rows = [
            [hot, f"junk{j}_{hot}_{r}"]
            for hot in hot_values
            for r in range(hot_length // 6 + 1)
        ]
        corpus.add_table(Table(100 + j, f"noise_{j}", ["n1", "n2"], rows))
    # Match tables: genuine joinable rows with distinct joinability scores.
    for j in range(6):
        matched = pairs[: 8 + 4 * j]
        rows = [[hot, cold, f"pay{j}"] for hot, cold in matched]
        corpus.add_table(Table(200 + j, f"match_{j}", ["k1", "k2", "pay"], rows))

    query = QueryTable(
        table=Table(
            _QUERY_TABLE_ID,
            "planner_query_skew",
            ["hot", "cold", "payload"],
            [[hot, cold, f"p{i}"] for i, (hot, cold) in enumerate(pairs)],
        ),
        key_columns=["hot", "cold"],
    )
    return corpus, query


def _build_drift_scenario(
    settings: ExperimentSettings,
) -> tuple[TableCorpus, QueryTable]:
    """A trap column whose sampled probe values hide the hot majority."""
    hot_length = _hot_run_length(settings) // 2
    num_pairs = 192
    pairs = [(f"t{i:03d}", f"a{i:03d}") for i in range(num_pairs)]
    # The probe order of the trap column is its first-seen order over the
    # sorted key tuples — with unique zero-padded values that is simply the
    # index order, so the planner's deterministic sample lands exactly on
    # these positions.  Those values stay cold; every other one gets hot.
    sampled = set(sample_positions(num_pairs, PLANNER_SAMPLE_SIZE))

    corpus = TableCorpus(name="planner_drift")
    for j in range(4):
        rows = [
            [trap, f"junk{j}_{i}_{r}"]
            for i, (trap, _alt) in enumerate(pairs)
            if i not in sampled
            for r in range(hot_length // 4 + 1)
        ]
        corpus.add_table(Table(100 + j, f"noise_{j}", ["n1", "n2"], rows))
    # The honest alternative: every alt value appears uniformly often, so
    # its sampled estimate is accurate (and *higher* than the trap's lie).
    for j in range(2):
        rows = [[f"alt{j}_{i}", alt] for i, (_trap, alt) in enumerate(pairs)]
        corpus.add_table(Table(150 + j, f"alt_noise_{j}", ["m1", "m2"], rows))
    # Match rows are spread evenly over the pair range so no fetch chunk is
    # front-loaded relative to the prorated estimate.
    for j in range(6):
        matched = pairs[j::6][: 12 + 6 * j]
        rows = [[trap, alt, f"pay{j}"] for trap, alt in matched]
        corpus.add_table(Table(200 + j, f"match_{j}", ["k1", "k2", "pay"], rows))

    query = QueryTable(
        table=Table(
            _QUERY_TABLE_ID,
            "planner_query_drift",
            ["trap", "alt", "payload"],
            [[trap, alt, f"p{i}"] for i, (trap, alt) in enumerate(pairs)],
        ),
        key_columns=["trap", "alt"],
    )
    return corpus, query


def _request_for(mode: str, query: QueryTable, k: int) -> DiscoveryRequest:
    if mode == "fixed":
        return DiscoveryRequest(query=query, k=k, column_selector="column_order")
    return DiscoveryRequest(
        query=query,
        k=k,
        planner=PlannerOptions(
            mode=mode,
            sample_size=PLANNER_SAMPLE_SIZE,
            replan_check_every=PLANNER_CHECK_EVERY,
            replan_factor=PLANNER_REPLAN_FACTOR,
        ),
    )


def run_planner(settings: ExperimentSettings) -> ExperimentResult:
    """Compare fixed-seed, cost-based, and adaptive plans on skewed corpora."""
    scenarios = {
        "skew": _build_skew_scenario(settings),
        "drift": _build_drift_scenario(settings),
    }
    headers = [
        "scenario",
        "mode",
        "seed",
        "pl fetched",
        "discarded",
        "replans",
        "tables",
        "topk",
        "prefilter s",
        "runtime s",
    ]
    rows: list[list[object]] = []
    notes: list[str] = []

    for scenario, (corpus, query) in scenarios.items():
        baseline_scores: list[int] | None = None
        baseline_tuples: list[tuple[int, int]] | None = None
        with DiscoverySession(
            corpus,
            config=settings.config(128),
            service_config=ServiceConfig(cache_capacity=0),
        ) as session:
            for mode in PLANNER_MODES_UNDER_TEST:
                result = session.discover(_request_for(mode, query, settings.k))
                explanation = result.plan_explain()
                scores = [j for _, j in result.result_tuples()]
                if baseline_scores is None:
                    baseline_scores = scores
                    baseline_tuples = result.result_tuples()
                    topk = "="
                elif result.result_tuples() == baseline_tuples:
                    topk = "="
                elif scores == baseline_scores:
                    topk = "scores"
                else:
                    topk = "DIFF"
                prefilter = result.counters.stages.get("superkey_prefilter")
                rows.append(
                    [
                        scenario,
                        mode,
                        explanation["executed_seed_column"],
                        result.counters.pl_items_fetched,
                        explanation["discarded_postings"],
                        len(explanation["replans"]),
                        result.counters.candidate_tables,
                        topk,
                        f"{prefilter.seconds if prefilter else 0.0:.4f}",
                        f"{result.counters.runtime_seconds:.4f}",
                    ]
                )

    notes.append(
        "fixed = first-column seed (column_order selector); cost/adaptive = "
        f"planner modes with sample_size={PLANNER_SAMPLE_SIZE}, "
        f"check_every={PLANNER_CHECK_EVERY}, "
        f"replan_factor={PLANNER_REPLAN_FACTOR}"
    )
    notes.append(
        "pl fetched includes fetches discarded by re-plans; topk '=' matches "
        "the fixed baseline exactly, 'scores' up to tie order"
    )
    return ExperimentResult(
        name="Planner study: fixed vs cost-based vs adaptive seed selection",
        headers=headers,
        rows=rows,
        notes=notes,
    )
