"""Figure 5: influence of the individual XASH components on precision.

The bars of Figure 5 are, from left to right: the unfiltered SCR baseline,
length-only, rare-characters-only, characters + location, characters +
length + location (i.e. full XASH without rotation), full XASH at 128 bits,
full XASH at 512 bits, and the ideal (zero-FP) system.  All bars are measured
on the WT(100) query set.
"""

from __future__ import annotations

from .runner import ExperimentResult, ExperimentSettings, build_context, run_mate

#: The Figure 5 bars: (label, hash function registry name, hash size, filter mode).
FIGURE5_BARS: tuple[tuple[str, str, int, str], ...] = (
    ("SCR (no filter)", "xash", 128, "none"),
    ("Length", "xash_length", 128, "superkey"),
    ("Rare characters", "xash_rare", 128, "superkey"),
    ("Char. + loc.", "xash_char_loc", 128, "superkey"),
    ("Char. + len. + loc.", "xash_char_len_loc", 128, "superkey"),
    ("Xash (128 bit)", "xash", 128, "superkey"),
    ("Xash (512 bit)", "xash", 512, "superkey"),
    ("Ideal system", "xash", 128, "oracle"),
)


def run_figure5(
    settings: ExperimentSettings | None = None,
    workload_name: str = "WT_100",
) -> ExperimentResult:
    """Reproduce the Figure 5 component ablation on one query set."""
    settings = settings or ExperimentSettings()
    context = build_context(workload_name, settings)

    rows: list[list[object]] = []
    for label, hash_function, hash_size, mode in FIGURE5_BARS:
        run = run_mate(
            context, hash_function, hash_size, row_filter_mode=mode, label=label
        )
        rows.append(
            [
                label,
                round(run.precision_mean, 3),
                round(run.precision_std, 3),
                run.counters.false_positive_rows,
                round(run.mean_runtime, 4),
            ]
        )
    return ExperimentResult(
        name=f"Figure 5: XASH component ablation on {workload_name}",
        headers=["variant", "precision", "std", "FP rows", "runtime (s)"],
        rows=rows,
        notes=[
            "Expected shape: precision increases monotonically from the "
            "unfiltered baseline through length-only, rare characters, "
            "char+loc, char+len+loc, full XASH, to the ideal system; "
            "rotation (the difference between char+len+loc and XASH) removes "
            "a further share of the remaining false positives.",
        ],
    )
