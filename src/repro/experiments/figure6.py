"""Figure 6: scalability with the size of the composite join key.

The paper takes a wide Open-Data table whose columns can form composite keys
of up to 10 attributes and measures (a) the discovery runtime and (b) the
row-filter precision as the key size |Q| grows, for XASH, BF, HT and SCR.

The synthetic equivalent: one wide query table with ``max_key_size`` keyable
columns, an Open-Data-profile corpus into which tables joinable on the *full*
key are planted (their projections are therefore joinable on every smaller
prefix of the key as well, mimicking how a real wide table behaves), plus
distractor tables with partial matches.  For every evaluated |Q| the same
corpus and index are reused and only the query's key-column prefix changes.
"""

from __future__ import annotations

import random

from ..baselines import ScrDiscovery
from ..datagen import (
    OPEN_DATA_PROFILE,
    SyntheticCorpusGenerator,
    generate_entity_query,
    plant_distractor_table,
    plant_joinable_table,
)
from ..datamodel import QueryTable, TableCorpus
from ..index import IndexBuilder, InvertedIndex
from .runner import AggregatedRun, ExperimentResult, ExperimentSettings, aggregate_results
from ..core import MateDiscovery

#: The hash functions compared in Figure 6.
FIGURE6_SYSTEMS: tuple[str, ...] = ("xash", "bloom", "hashtable", "scr")


def build_keysize_scenario(
    settings: ExperimentSettings,
    max_key_size: int = 10,
    cardinality: int = 60,
    joinable_tables: int = 4,
    distractor_tables: int = 4,
) -> tuple[TableCorpus, QueryTable]:
    """Build the wide-key corpus and query table used by the experiment."""
    rng = random.Random(settings.seed)
    profile = OPEN_DATA_PROFILE.scaled(settings.corpus_scale)
    corpus = SyntheticCorpusGenerator(profile=profile, seed=settings.seed).generate(
        name="keysize_corpus"
    )
    query = generate_entity_query(
        table_id=2_000_000,
        rng=rng,
        cardinality=cardinality,
        key_size=max_key_size,
        extra_columns=3,
        name="keysize_query",
    )
    for index in range(joinable_tables):
        fraction = 0.25 + 0.75 * (index + 1) / joinable_tables
        plant_joinable_table(
            corpus,
            query,
            rng,
            joinability=max(1, int(cardinality * fraction)),
            noise_rows=15,
            partial_rows=25,
        )
    for _ in range(distractor_tables):
        plant_distractor_table(corpus, query, rng, matching_rows=30, noise_rows=15)
    return corpus, query


def _query_prefix(query: QueryTable, key_size: int) -> QueryTable:
    """Restrict a query table to the first ``key_size`` key columns."""
    return QueryTable(table=query.table, key_columns=query.key_columns[:key_size])


def _run(
    system: str,
    corpus: TableCorpus,
    index: InvertedIndex,
    query: QueryTable,
    settings: ExperimentSettings,
    hash_size: int,
) -> AggregatedRun:
    config = settings.config(hash_size)
    if system == "scr":
        engine: object = ScrDiscovery(corpus, index, config=config)
    else:
        engine = MateDiscovery(
            corpus, index, config=config, hash_function_name=system
        )
    result = engine.discover(query, k=settings.k)  # type: ignore[attr-defined]
    return aggregate_results(system, f"|Q|={query.key_size}", [result])


def run_figure6(
    settings: ExperimentSettings | None = None,
    key_sizes: tuple[int, ...] = (2, 5, 10),
    hash_size: int = 128,
    systems: tuple[str, ...] = FIGURE6_SYSTEMS,
) -> ExperimentResult:
    """Reproduce Figure 6 (a) runtime and (b) precision vs join-key size."""
    settings = settings or ExperimentSettings()
    max_key_size = max(key_sizes)
    corpus, query = build_keysize_scenario(settings, max_key_size=max_key_size)

    indexes: dict[str, InvertedIndex] = {}
    for system in systems:
        hash_function = "xash" if system == "scr" else system
        if hash_function not in indexes:
            builder = IndexBuilder(
                config=settings.config(hash_size), hash_function_name=hash_function
            )
            indexes[hash_function] = builder.build(corpus)

    rows: list[list[object]] = []
    for key_size in key_sizes:
        prefix_query = _query_prefix(query, key_size)
        row: list[object] = [key_size]
        for system in systems:
            hash_function = "xash" if system == "scr" else system
            run = _run(
                system, corpus, indexes[hash_function], prefix_query, settings, hash_size
            )
            row.append(round(run.mean_runtime, 4))
            row.append(round(run.precision_mean, 3))
        rows.append(row)

    headers = ["|Q|"]
    for system in systems:
        headers.append(f"{system} runtime (s)")
        headers.append(f"{system} precision")
    return ExperimentResult(
        name="Figure 6: runtime and precision vs composite-key size",
        headers=headers,
        rows=rows,
        notes=[
            "Expected shape: MATE's runtime decreases as |Q| grows (more "
            "1-bits in the query super key and fewer joinable rows let the "
            "filters prune more); precision can dip at intermediate key sizes "
            "before recovering (Section 7.5.3).",
        ],
    )
