"""Online ingestion study (extension): throughput and latency per compaction state.

The static engines of this repository index the corpus once and serve
forever; the ingestion subsystem (:mod:`repro.ingest`) accepts the same
corpus as a *stream* of tables.  This experiment quantifies the cost of that
flexibility on one Table 1 workload:

* **bulk** — the offline :func:`~repro.index.builder.build_index` baseline
  (one pass, no WAL, no segments);
* **buffer** — streaming ingestion into the delta buffer only (never
  sealed): the write-optimised extreme of the LSM trade-off;
* **segmented** — streaming with a tight compaction policy, leaving a stack
  of several columnar segments: the steady state of a serving deployment;
* **compacted** — the segmented index after full compaction (single
  segment): the read-optimised extreme, structurally equivalent to bulk.

Per state the experiment reports ingest time and row throughput, the segment
count, total discovery time of every workload query, and whether the top-k
results are identical to the bulk baseline — the correctness property the
subsystem guarantees by construction (same XASH code path, same per-value
posting order, tombstone-free here since nothing is removed).
"""

from __future__ import annotations

import time

from ..api import DiscoveryRequest, DiscoverySession
from ..config import ServiceConfig
from ..datamodel import TableCorpus
from ..index import build_index
from ..ingest import CompactionPolicy, Compactor, LiveIndex
from .runner import ExperimentResult, ExperimentSettings, build_context

#: Workload the ingestion study runs on by default.
DEFAULT_INGEST_WORKLOAD = "WT_100"

#: Ingestion states under comparison (bulk first: it is the baseline).
INGEST_STATES: tuple[str, ...] = ("bulk", "buffer", "segmented", "compacted")


def run_ingest(
    settings: ExperimentSettings,
    workload_name: str = DEFAULT_INGEST_WORKLOAD,
    seal_every_tables: int = 10,
) -> ExperimentResult:
    """Compare bulk indexing against streaming ingestion states.

    ``seal_every_tables`` controls the segmented state's compaction
    pressure: the buffer is sealed after every that-many ingested tables
    (row thresholds would make the segment count depend on the corpus
    scale, which is exactly the knob benchmarks vary).
    """
    context = build_context(workload_name, settings)
    corpus = context.workload.corpus
    config = context.config(settings.hash_sizes[0] if settings.hash_sizes else 128)
    tables = list(corpus)
    total_rows = sum(table.num_rows for table in tables)

    rows: list[list[object]] = []
    baseline_topk: list[object] | None = None
    notes: list[str] = []

    def discover_all(session: DiscoverySession, engine: str):
        started = time.perf_counter()
        results = [
            session.discover(
                DiscoveryRequest(query=query, k=settings.k, engine=engine)
            )
            for query in context.queries
        ]
        return time.perf_counter() - started, [
            result.result_tuples() for result in results
        ]

    for state in INGEST_STATES:
        if state == "bulk":
            started = time.perf_counter()
            index = build_index(corpus, config=config)
            ingest_seconds = time.perf_counter() - started
            session = DiscoverySession(
                corpus, index, config=config,
                service_config=ServiceConfig(cache_capacity=0),
            )
            engine = "mate"
            segments = 0
        else:
            live = LiveIndex(config=config)  # in-memory: isolate CPU cost
            session = DiscoverySession(
                TableCorpus(name=f"{corpus.name}-{state}"),
                live,
                config=config,
                service_config=ServiceConfig(cache_capacity=0),
            )
            compactor = Compactor(
                live, CompactionPolicy(max_buffer_rows=1, max_segments=4)
            )
            started = time.perf_counter()
            for position, table in enumerate(tables):
                session.ingest(table)
                if state != "buffer" and (position + 1) % seal_every_tables == 0:
                    live.seal()
                    if live.num_segments > 4:
                        compactor.run_once()
            if state == "compacted":
                live.compact()
            ingest_seconds = time.perf_counter() - started
            engine = "live"
            segments = live.num_segments

        discover_seconds, topk = discover_all(session, engine)
        session.close()

        if baseline_topk is None:
            baseline_topk = topk
        matched = sum(1 for a, b in zip(baseline_topk, topk) if a == b)
        throughput = total_rows / ingest_seconds if ingest_seconds > 0 else 0.0
        rows.append(
            [
                state,
                segments,
                round(ingest_seconds, 4),
                round(throughput, 1),
                round(discover_seconds, 4),
                f"{matched}/{len(topk)}",
            ]
        )

    notes.append(
        f"{len(tables)} tables / {total_rows} rows streamed; segmented state "
        f"seals every {seal_every_tables} tables and merges past 4 segments"
    )
    notes.append(
        "top-k column compares each state's results to the bulk baseline "
        "query for query (the live engine guarantees equality)"
    )
    return ExperimentResult(
        name=f"Online ingestion — {workload_name}",
        headers=[
            "state",
            "segments",
            "ingest s",
            "rows/s",
            "discover s",
            "top-k identical",
        ],
        rows=rows,
        notes=notes,
    )
