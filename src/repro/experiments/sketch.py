"""Sketch-tier study (extension): the approximate candidate tier vs exact MATE.

The MinHash-LSH sketch tier (:mod:`repro.sketch`) prunes the candidate
table universe *before* the exact pipeline fetches a single posting list.
This experiment builds a deliberately skewed corpus where that prune pays:

* a handful of **match tables** genuinely joinable with the query key at
  distinct joinability scores, and
* a large majority of **noise tables** that share exactly one hot key value
  (so the exact engine must fetch and reject their posting lists) but whose
  columns have near-zero containment of the query's value sets — precisely
  the tables a containment-threshold LSH probe discards up front.

Three modes run against the same session (and therefore the same cached
engine — the sketch knobs deliberately stay out of the engine cache key):

* ``exact`` — the classic pipeline, no sketch involvement;
* ``sketch0`` — planner mode ``"sketch"`` with ``threshold=0``: the tier is
  exhaustive and the result must be byte-identical to ``exact``;
* ``sketch`` — a real threshold: the candidate universe shrinks by an order
  of magnitude while the top-k survives (recall 1.0 on this corpus).

Reported per mode: candidate tables entering the exact stages, the LSH
estimated recall, the *measured* recall against the exact top-k, posting
items fetched, rows checked, and runtime.
"""

from __future__ import annotations

from ..api import DiscoveryRequest, DiscoverySession
from ..config import ServiceConfig
from ..datamodel import QueryTable, Table, TableCorpus
from ..plan import PlannerOptions
from ..sketch import SketchOptions
from .runner import ExperimentResult, ExperimentSettings

#: Modes under comparison ("sketch0" = exhaustive tier, byte-identical).
SKETCH_MODES_UNDER_TEST: tuple[str, ...] = ("exact", "sketch0", "sketch")

#: Containment threshold of the pruning row (noise columns score ~0.025
#: against the query's 40-value columns, matches score >= 0.3).
DEFAULT_SKETCH_THRESHOLD = 0.2

#: Query-table id (outside every corpus id range, mirroring the CLI).
_QUERY_TABLE_ID = 10_000_000


def build_sketch_scenario(
    settings: ExperimentSettings,
) -> tuple[TableCorpus, QueryTable]:
    """Skewed corpus where LSH pruning pays: few matches, many hot-value lurkers.

    Every noise table repeats the query's hottest key value ``k00`` (long
    posting lists the exact engine must fetch) next to 20 unique junk rows
    (driving its column containment of the query towards zero); the four
    match tables contain genuine key pairs at joinabilities 12/18/24/30.
    """
    num_pairs = 40
    pairs = [(f"k{i:02d}", f"v{i:02d}") for i in range(num_pairs)]
    num_noise = max(15, int(120 * settings.corpus_scale))

    corpus = TableCorpus(name="sketch_skew")
    for j in range(num_noise):
        rows = [["k00", f"noise{j}_{r}"] for r in range(3)]
        rows += [[f"x{j}_{r:03d}", f"y{j}_{r:03d}"] for r in range(20)]
        corpus.add_table(Table(1000 + j, f"noise_{j}", ["n1", "n2"], rows))
    for j in range(4):
        matched = pairs[: 12 + 6 * j]
        rows = [[key, value, f"pay{j}"] for key, value in matched]
        corpus.add_table(Table(200 + j, f"match_{j}", ["k1", "k2", "pay"], rows))

    query = QueryTable(
        table=Table(
            _QUERY_TABLE_ID,
            "sketch_query",
            ["a", "b", "payload"],
            [[key, value, f"p{i}"] for i, (key, value) in enumerate(pairs)],
        ),
        key_columns=["a", "b"],
    )
    return corpus, query


def _request_for(mode: str, query: QueryTable, k: int) -> DiscoveryRequest:
    if mode == "exact":
        return DiscoveryRequest(query=query, k=k)
    threshold = 0.0 if mode == "sketch0" else DEFAULT_SKETCH_THRESHOLD
    return DiscoveryRequest(
        query=query,
        k=k,
        planner=PlannerOptions(mode="sketch"),
        sketch=SketchOptions(threshold=threshold),
    )


def run_sketch(settings: ExperimentSettings) -> ExperimentResult:
    """Compare exact MATE against the exhaustive and pruning sketch tiers."""
    corpus, query = build_sketch_scenario(settings)
    config = settings.config(128, expected_unique_values=10_000)

    headers = [
        "mode",
        "threshold",
        "candidates",
        "est recall",
        "recall",
        "pl fetched",
        "rows checked",
        "topk",
        "runtime s",
    ]
    rows: list[list[object]] = []
    notes: list[str] = []

    with DiscoverySession(
        corpus, config=config, service_config=ServiceConfig(cache_capacity=0)
    ) as session:
        exact_ids: set[int] | None = None
        baseline_tuples: list[tuple[int, int]] | None = None
        for mode in SKETCH_MODES_UNDER_TEST:
            result = session.discover(_request_for(mode, query, settings.k))
            ids = {entry.table_id for entry in result.tables}
            if exact_ids is None:
                exact_ids = ids
                baseline_tuples = result.result_tuples()
                topk = "="
            else:
                topk = "=" if result.result_tuples() == baseline_tuples else "DIFF"
            recall = (
                len(ids & exact_ids) / len(exact_ids) if exact_ids else 1.0
            )
            extra = result.counters.extra
            candidates = int(extra.get("sketch_candidates", len(corpus)))
            estimated = extra.get("sketch_estimated_recall")
            threshold = (
                "-"
                if mode == "exact"
                else f"{0.0 if mode == 'sketch0' else DEFAULT_SKETCH_THRESHOLD:.2f}"
            )
            rows.append(
                [
                    mode,
                    threshold,
                    candidates,
                    f"{estimated:.4f}" if estimated is not None else "-",
                    f"{recall:.2f}",
                    result.counters.pl_items_fetched,
                    result.counters.rows_checked,
                    topk,
                    f"{result.counters.runtime_seconds:.4f}",
                ]
            )

    notes.append(
        "sketch0 runs planner mode 'sketch' with threshold=0: the tier is "
        "exhaustive and byte-identical to exact (topk '=' is asserted by CI)"
    )
    notes.append(
        f"the pruning row uses threshold={DEFAULT_SKETCH_THRESHOLD}: noise "
        "tables sharing one hot key value are dropped before any posting "
        "fetch; candidates counts tables entering the exact stages"
    )
    return ExperimentResult(
        name="Sketch tier: MinHash-LSH candidate pruning vs exact MATE",
        headers=headers,
        rows=rows,
        notes=notes,
    )
