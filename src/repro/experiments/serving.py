"""Process-pool serving study (extension beyond the paper).

The paper's single-node runs never face the GIL: each query is one Python
process.  A serving deployment does — concurrent requests on a thread pool
serialise the CPU-bound phases of Algorithm 1.  This experiment measures
what the process-per-shard pool of :mod:`repro.serve.pool` buys over the
in-process thread engine on the same corpus and shard count, and verifies
the contract that makes the pool deployable at all: its top-k is
byte-identical to the thread engine's.

Three execution modes per workload:

* ``threads`` — :class:`~repro.core.parallel.ShardedMateDiscovery`, the
  in-process reference;
* ``process`` — :class:`~repro.serve.pool.ProcessShardPool`, worker
  processes over mmap'd ``.seg`` segments;
* ``process+hedge`` — the same pool with mirror workers and an aggressive
  hedge delay, measuring the overhead (extra sends) hedging costs when the
  shards are healthy.

Reported per mode: p50/p99 request latency, scatter and gather stage
seconds, and whether every query's top-k matched the thread engine
(``identical`` must read ``yes`` everywhere).
"""

from __future__ import annotations

import time

from ..core.parallel import ShardedMateDiscovery
from ..serve.pool import ProcessShardPool, ServeConfig
from .runner import ExperimentResult, ExperimentSettings, build_context

#: Shard count used for every mode (threads vs processes is the variable).
DEFAULT_SERVING_SHARDS = 4

#: Hedge delay of the ``process+hedge`` mode, in seconds — deliberately
#: aggressive so the mode actually exercises mirror sends at experiment scale.
DEFAULT_HEDGE_AFTER = 0.05


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    position = min(
        len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1) + 0.5)
    )
    return sorted_values[position]


def run_serving(
    settings: ExperimentSettings | None = None,
    workload_name: str = "WT_100",
    num_shards: int = DEFAULT_SERVING_SHARDS,
    hash_size: int = 128,
    hedge_after_seconds: float = DEFAULT_HEDGE_AFTER,
) -> ExperimentResult:
    """Compare thread-pool, process-pool, and hedged process-pool serving."""
    settings = settings or ExperimentSettings()
    context = build_context(workload_name, settings)
    corpus = context.workload.corpus
    config = context.config(hash_size)
    queries = context.queries
    k = settings.k

    thread_engine = ShardedMateDiscovery(
        corpus, num_shards=num_shards, config=config, hash_function_name="xash"
    )
    reference = [
        [
            (t.table_id, t.joinability, t.column_mapping)
            for t in thread_engine.discover(query, k=k).tables
        ]
        for query in queries
    ]

    def run_mode(mode: str, discover) -> list[object]:
        latencies: list[float] = []
        scatter = gather = 0.0
        identical = True
        for query_index, query in enumerate(queries):
            started = time.perf_counter()
            result = discover(query, k=k)
            latencies.append(time.perf_counter() - started)
            stages = result.counters.stages
            if "scatter" in stages:
                scatter += stages["scatter"].seconds
                gather += stages["gather"].seconds
            topk = [
                (t.table_id, t.joinability, t.column_mapping)
                for t in result.tables
            ]
            if topk != reference[query_index]:
                identical = False
        latencies.sort()
        return [
            mode,
            num_shards,
            len(queries),
            round(_percentile(latencies, 0.50) * 1000, 2),
            round(_percentile(latencies, 0.99) * 1000, 2),
            round(scatter, 4),
            round(gather, 4),
            "yes" if identical else "NO",
        ]

    rows = [run_mode("threads", thread_engine.discover)]
    pool = ProcessShardPool(
        corpus,
        config=config,
        hash_function_name="xash",
        serve_config=ServeConfig(num_shards=num_shards),
    )
    try:
        rows.append(run_mode("process", pool.discover))
    finally:
        pool.close()
    hedged = ProcessShardPool(
        corpus,
        config=config,
        hash_function_name="xash",
        serve_config=ServeConfig(
            num_shards=num_shards, hedge_after_seconds=hedge_after_seconds
        ),
    )
    try:
        rows.append(run_mode("process+hedge", hedged.discover))
        hedge_stats = hedged.metrics
        notes_hedge = (
            f"hedged mode sent {hedge_stats.hedges_sent} duplicate shard "
            f"probes, {hedge_stats.hedge_wins} won"
        )
    finally:
        hedged.close()

    return ExperimentResult(
        name=f"Process-pool serving on {workload_name}",
        headers=[
            "mode",
            "shards",
            "queries",
            "p50 ms",
            "p99 ms",
            "scatter s",
            "gather s",
            "identical",
        ],
        rows=rows,
        notes=[
            "Expected shape: every mode's top-k is byte-identical to the "
            "thread engine ('identical' reads yes); the process pool "
            "trades scatter/gather IPC overhead for GIL-free shard "
            "execution, and hedging adds duplicate probes without changing "
            "any result.",
            notes_hedge,
        ],
    )
