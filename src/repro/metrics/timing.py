"""Small timing helpers used by the discovery engines and experiments."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Stopwatch:
    """Accumulates wall-clock time across multiple start/stop cycles."""

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> None:
        """Start (or restart) the stopwatch."""
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """Stop the stopwatch and return the total elapsed time."""
        if self._started_at is not None:
            self.elapsed += time.perf_counter() - self._started_at
            self._started_at = None
        return self.elapsed

    @contextmanager
    def measure(self) -> Iterator["Stopwatch"]:
        """Context manager that times the enclosed block."""
        self.start()
        try:
            yield self
        finally:
            self.stop()


@contextmanager
def timed() -> Iterator[Stopwatch]:
    """Time a block of code: ``with timed() as t: ...; t.elapsed``."""
    stopwatch = Stopwatch()
    stopwatch.start()
    try:
        yield stopwatch
    finally:
        stopwatch.stop()
