"""Small timing helpers used by the discovery engines and experiments.

.. deprecated:: the ad-hoc primitives
    :class:`Stopwatch` and :func:`timed` are kept as public shims for
    existing callers, but plan/serve code must not time request work with
    them anymore: request-path timing goes through tracer spans
    (:meth:`repro.telemetry.trace.Tracer.span` /
    :meth:`~repro.telemetry.trace.Tracer.emit`), which capture the same
    duration *and* the trace identity, so the measurement lands in the
    span tree, the metrics histograms, and the slow-query log instead of
    a local variable.  :class:`StageStats` stays first-class: the executor
    converts each stage's accumulated stats into synthetic spans at the
    end of a run.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Stopwatch:
    """Accumulates wall-clock time across multiple start/stop cycles.

    .. deprecated:: kept as a compatibility shim; request-path code uses
        tracer spans instead (see the module docstring).
    """

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> None:
        """Start (or restart) the stopwatch."""
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """Stop the stopwatch and return the total elapsed time."""
        if self._started_at is not None:
            self.elapsed += time.perf_counter() - self._started_at
            self._started_at = None
        return self.elapsed

    @contextmanager
    def measure(self) -> Iterator["Stopwatch"]:
        """Context manager that times the enclosed block."""
        self.start()
        try:
            yield self
        finally:
            self.stop()


@contextmanager
def timed() -> Iterator[Stopwatch]:
    """Time a block of code: ``with timed() as t: ...; t.elapsed``.

    .. deprecated:: kept as a compatibility shim; request-path code uses
        tracer spans instead (see the module docstring).
    """
    stopwatch = Stopwatch()
    stopwatch.start()
    try:
        yield stopwatch
    finally:
        stopwatch.stop()


@dataclass
class StageStats:
    """Wall-clock and volume accounting for one pipeline stage.

    The planner/executor pipeline (:mod:`repro.plan`) runs discovery as a
    sequence of named operators; each operator accumulates one
    :class:`StageStats` across its (possibly many, e.g. per candidate table)
    invocations.  The stats travel on
    :attr:`DiscoveryCounters.stages <repro.metrics.counters.DiscoveryCounters.stages>`
    so every front door (CLI ``--json``, the session results, the experiment
    harness) sees the same per-stage breakdown.
    """

    #: Number of times the stage ran (1 for run-once stages, one per
    #: candidate table for the per-table stages).
    calls: int = 0
    #: Total wall-clock seconds spent inside the stage.
    seconds: float = 0.0
    #: Work items the stage received (stage-specific unit, e.g. probe
    #: values for candidate generation, candidate rows for the prefilter).
    items_in: int = 0
    #: Work items the stage let through.
    items_out: int = 0

    @contextmanager
    def measure(self) -> Iterator["StageStats"]:
        """Time one invocation of the stage (increments :attr:`calls`)."""
        self.calls += 1
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.seconds += time.perf_counter() - started

    def add_items(self, items_in: int, items_out: int) -> None:
        """Record one invocation's in/out volume."""
        self.items_in += items_in
        self.items_out += items_out

    def merge(self, other: "StageStats") -> None:
        """Accumulate another stage's stats into this one (in place)."""
        self.calls += other.calls
        self.seconds += other.seconds
        self.items_in += other.items_in
        self.items_out += other.items_out

    def as_dict(self) -> dict[str, float]:
        """Return the stats as a plain dictionary (for reporting)."""
        return {
            "calls": self.calls,
            "seconds": self.seconds,
            "items_in": self.items_in,
            "items_out": self.items_out,
        }
