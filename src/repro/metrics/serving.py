"""Serving-side metrics: pool-lifetime scatter/gather and hedging counters.

The per-request numbers live in ``DiscoveryCounters.stages`` (the
``"scatter"`` / ``"gather"`` entries the process pool attaches to every
merged result); :class:`ServeMetrics` is the *lifetime* aggregate a
long-running pool keeps for its ``/v1/stats`` endpoint — total requests,
cumulative stage stats, straggler accounting, and how often tail-latency
hedging fired and won.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .timing import StageStats


@dataclass
class ServeMetrics:
    """Lifetime serving counters of one :class:`~repro.serve.pool.ProcessShardPool`."""

    #: Scatter/gather requests served since the pool started.
    requests: int = 0
    #: Cumulative scatter-side stage stats (fan-out bookkeeping + sends).
    scatter: StageStats = field(default_factory=StageStats)
    #: Cumulative gather-side stage stats (waiting on shard replies + merge).
    gather: StageStats = field(default_factory=StageStats)
    #: Total worker-side engine seconds across all shards and requests.
    shard_seconds: float = 0.0
    #: Worker-side seconds of the slowest shard, per request, summed — the
    #: gap to ``shard_seconds / num_shards`` measures load imbalance.
    straggler_seconds: float = 0.0
    #: Duplicate shard probes sent because the primary missed the hedge delay.
    hedges_sent: int = 0
    #: Hedged probes where the mirror's reply arrived first.
    hedge_wins: int = 0
    #: Late or duplicate replies dropped after a winner was accepted.
    replies_discarded: int = 0

    def record(
        self,
        scatter: StageStats,
        gather: StageStats,
        shard_seconds: list[float],
    ) -> None:
        """Fold one request's scatter/gather stats into the lifetime totals."""
        self.requests += 1
        self.scatter.merge(scatter)
        self.gather.merge(gather)
        if shard_seconds:
            self.shard_seconds += sum(shard_seconds)
            self.straggler_seconds += max(shard_seconds)

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view, used by the HTTP ``/v1/stats`` endpoint."""
        return {
            "requests": self.requests,
            "scatter": self.scatter.as_dict(),
            "gather": self.gather.as_dict(),
            "shard_seconds": self.shard_seconds,
            "straggler_seconds": self.straggler_seconds,
            "hedges_sent": self.hedges_sent,
            "hedge_wins": self.hedge_wins,
            "replies_discarded": self.replies_discarded,
        }


__all__ = ["ServeMetrics"]
