"""Precision aggregation across query sets (Table 3 / Figure 5 / Figure 6b).

The paper reports, per query set and hash function, the *mean and standard
deviation* of the per-query precision (TP / (TP + FP) of the row filter).
This module provides the small statistics containers used for that
aggregation so that every experiment reports the same ``mean ± std`` shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class PrecisionSummary:
    """Mean/standard deviation of a collection of per-query precision values."""

    mean: float
    std: float
    count: int

    def __str__(self) -> str:
        return f"{self.mean:.2f}±{self.std:.2f}"

    def as_dict(self) -> dict[str, float]:
        """Return the summary as a plain dictionary."""
        return {"mean": self.mean, "std": self.std, "count": self.count}


def summarize_precision(values: Sequence[float] | Iterable[float]) -> PrecisionSummary:
    """Summarise per-query precision values into mean ± population std."""
    collected = list(values)
    if not collected:
        return PrecisionSummary(mean=0.0, std=0.0, count=0)
    mean = sum(collected) / len(collected)
    variance = sum((v - mean) ** 2 for v in collected) / len(collected)
    return PrecisionSummary(mean=mean, std=math.sqrt(variance), count=len(collected))


def precision(true_positives: int, false_positives: int) -> float:
    """Precision TP / (TP + FP); defined as 1.0 when nothing was retrieved."""
    total = true_positives + false_positives
    if total == 0:
        return 1.0
    return true_positives / total
