"""Instrumentation: counters, timing, and precision aggregation."""

from .counters import CacheCounters, DiscoveryCounters
from .precision import PrecisionSummary, precision, summarize_precision
from .timing import StageStats, Stopwatch, timed

__all__ = [
    "CacheCounters",
    "DiscoveryCounters",
    "PrecisionSummary",
    "StageStats",
    "Stopwatch",
    "precision",
    "summarize_precision",
    "timed",
]
