"""Instrumentation: counters, timing, precision, and serving aggregates."""

from .counters import CacheCounters, DiscoveryCounters
from .precision import PrecisionSummary, precision, summarize_precision
from .serving import ServeMetrics
from .timing import StageStats, Stopwatch, timed

__all__ = [
    "CacheCounters",
    "DiscoveryCounters",
    "PrecisionSummary",
    "ServeMetrics",
    "StageStats",
    "Stopwatch",
    "precision",
    "summarize_precision",
    "timed",
]
