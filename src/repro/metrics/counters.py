"""Instrumentation counters for the discovery phase.

The paper's evaluation reasons about the number of false-positive rows, the
number of value comparisons, the number of pruned tables, and the achieved
precision — not only about wall-clock time.  Every discovery run (MATE or any
baseline) therefore carries a :class:`DiscoveryCounters` object that the
filters and the verification step update as they go.  The experiment harness
reads these counters to produce Table 3, Figure 5, Figure 6(b) and the
initial-column study.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .timing import StageStats


@dataclass
class CacheCounters:
    """Hit/miss accounting for the service layer's posting-list cache.

    The batch-discovery service (:mod:`repro.service`) puts an LRU cache in
    front of the index; its effectiveness is an accuracy-free, pure-runtime
    metric, so it gets its own counter object rather than extending
    :class:`DiscoveryCounters` (cache behaviour is a property of the serving
    deployment, not of one discovery run).
    """

    #: Probe values answered from the cache.
    hits: int = 0
    #: Probe values that had to be fetched from the underlying index.
    misses: int = 0
    #: Cached posting lists dropped to respect the capacity bound.
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of cache lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def merge(self, other: "CacheCounters") -> None:
        """Accumulate another cache's counters into this one (in place)."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions

    def snapshot(self) -> "CacheCounters":
        """Return an independent copy of the current counts."""
        return CacheCounters(
            hits=self.hits, misses=self.misses, evictions=self.evictions
        )

    def delta_since(self, earlier: "CacheCounters") -> "CacheCounters":
        """Return the counts accumulated since an earlier :meth:`snapshot`."""
        return CacheCounters(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
        )

    def as_dict(self) -> dict[str, float]:
        """Return the counters (plus derived metrics) as a dictionary."""
        return {
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_evictions": self.evictions,
            "cache_hit_rate": self.hit_rate,
        }


@dataclass
class DiscoveryCounters:
    """Mutable counters collected during one discovery run."""

    #: Number of PL items fetched from the index in the initialization step.
    pl_items_fetched: int = 0
    #: Number of candidate tables produced by the initial fetch.
    candidate_tables: int = 0
    #: Tables skipped by table-filtering rule 1 (and everything after it).
    tables_pruned_by_rule1: int = 0
    #: Tables skipped mid-way by table-filtering rule 2.
    tables_pruned_by_rule2: int = 0
    #: Tables whose joinability was fully evaluated.
    tables_evaluated: int = 0
    #: PL items (candidate rows) inspected by the row filter.
    rows_checked: int = 0
    #: Super-key subsumption checks performed.
    superkey_checks: int = 0
    #: Row-filter checks resolved by the length-segment short circuit.
    short_circuit_hits: int = 0
    #: Candidate rows that survived the row filter (TP + FP).
    rows_passed_filter: int = 0
    #: Candidate rows verified to actually contain the composite key (TP).
    true_positive_rows: int = 0
    #: Candidate rows that survived the filter but failed verification (FP).
    false_positive_rows: int = 0
    #: Individual cell-value comparisons performed during verification.
    value_comparisons: int = 0
    #: Runs (1 for a single run) whose ``max_pl_fetches`` budget ran out and
    #: truncated the initialization fetch (see :mod:`repro.api.request`).
    budget_exhausted: int = 0
    #: Runs (1 for a single run) stopped early by a ``deadline_seconds``.
    deadline_expired: int = 0
    #: Wall-clock duration of the run in seconds (set by the caller).
    runtime_seconds: float = 0.0
    #: Extra, system-specific counters (e.g. per-column PL counts).
    extra: dict[str, float] = field(default_factory=dict)
    #: Per-stage wall-clock and volume accounting, keyed by stage name.
    #: Populated by the planner/executor pipeline (:mod:`repro.plan`);
    #: engines outside that pipeline leave it empty.
    stages: dict[str, "StageStats"] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def precision(self) -> float:
        """Row-filter precision TP / (TP + FP) as defined in Section 7.4.

        Returns 1.0 when no row passed the filter (nothing to be wrong about),
        matching how the paper treats empty candidate sets.
        """
        passed = self.true_positive_rows + self.false_positive_rows
        if passed == 0:
            return 1.0
        return self.true_positive_rows / passed

    @property
    def false_positive_rate(self) -> float:
        """Fraction of filtered rows that were false positives."""
        return 1.0 - self.precision

    @property
    def filter_selectivity(self) -> float:
        """Fraction of checked rows that the filter let through."""
        if self.rows_checked == 0:
            return 0.0
        return self.rows_passed_filter / self.rows_checked

    # ------------------------------------------------------------------
    # Combination helpers (used when aggregating over query sets)
    # ------------------------------------------------------------------
    def merge(self, other: "DiscoveryCounters") -> None:
        """Accumulate another run's counters into this one (in place)."""
        self.pl_items_fetched += other.pl_items_fetched
        self.candidate_tables += other.candidate_tables
        self.tables_pruned_by_rule1 += other.tables_pruned_by_rule1
        self.tables_pruned_by_rule2 += other.tables_pruned_by_rule2
        self.tables_evaluated += other.tables_evaluated
        self.rows_checked += other.rows_checked
        self.superkey_checks += other.superkey_checks
        self.short_circuit_hits += other.short_circuit_hits
        self.rows_passed_filter += other.rows_passed_filter
        self.true_positive_rows += other.true_positive_rows
        self.false_positive_rows += other.false_positive_rows
        self.value_comparisons += other.value_comparisons
        self.budget_exhausted += other.budget_exhausted
        self.deadline_expired += other.deadline_expired
        self.runtime_seconds += other.runtime_seconds
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0.0) + value
        for name, stats in other.stages.items():
            mine = self.stages.get(name)
            if mine is None:
                self.stages[name] = StageStats(
                    calls=stats.calls,
                    seconds=stats.seconds,
                    items_in=stats.items_in,
                    items_out=stats.items_out,
                )
            else:
                mine.merge(stats)

    def stage_stats(self, name: str) -> "StageStats":
        """Return (creating on first use) the stats bucket for one stage."""
        stats = self.stages.get(name)
        if stats is None:
            stats = self.stages[name] = StageStats()
        return stats

    def stages_dict(self) -> dict[str, dict[str, float]]:
        """Return the per-stage stats as nested plain dictionaries."""
        return {name: stats.as_dict() for name, stats in self.stages.items()}

    def as_dict(self) -> dict[str, float]:
        """Return all counters (plus derived metrics) as a dictionary."""
        result = {
            "pl_items_fetched": self.pl_items_fetched,
            "candidate_tables": self.candidate_tables,
            "tables_pruned_by_rule1": self.tables_pruned_by_rule1,
            "tables_pruned_by_rule2": self.tables_pruned_by_rule2,
            "tables_evaluated": self.tables_evaluated,
            "rows_checked": self.rows_checked,
            "superkey_checks": self.superkey_checks,
            "short_circuit_hits": self.short_circuit_hits,
            "rows_passed_filter": self.rows_passed_filter,
            "true_positive_rows": self.true_positive_rows,
            "false_positive_rows": self.false_positive_rows,
            "value_comparisons": self.value_comparisons,
            "budget_exhausted": self.budget_exhausted,
            "deadline_expired": self.deadline_expired,
            "runtime_seconds": self.runtime_seconds,
            "precision": self.precision,
            "false_positive_rate": self.false_positive_rate,
        }
        result.update(self.extra)
        return result
