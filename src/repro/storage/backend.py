"""Storage-backend interface.

The reference MATE implementation keeps its inverted index in a Vertica
column store; this reproduction abstracts persistence behind a tiny backend
interface so that the rest of the system never cares where corpora and
indexes live.  Two implementations ship with the library:

* :class:`~repro.storage.memory.InMemoryBackend` — no persistence, useful for
  tests and as a cache layer,
* :class:`~repro.storage.sqlite.SQLiteBackend` — a relational store with the
  same logical schema the paper uses (tables / cells / postings / super keys).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..datamodel import TableCorpus
from ..index import InvertedIndex


class StorageBackend(ABC):
    """Persists corpora and inverted indexes."""

    @abstractmethod
    def save_corpus(self, corpus: TableCorpus) -> None:
        """Persist a corpus (replacing any corpus stored under the same name)."""

    @abstractmethod
    def load_corpus(self, name: str) -> TableCorpus:
        """Load the corpus stored under ``name``."""

    @abstractmethod
    def list_corpora(self) -> list[str]:
        """Return the names of all stored corpora."""

    @abstractmethod
    def save_index(self, name: str, index: InvertedIndex) -> None:
        """Persist an inverted index under ``name``."""

    @abstractmethod
    def load_index(self, name: str) -> InvertedIndex:
        """Load the inverted index stored under ``name``."""

    @abstractmethod
    def list_indexes(self) -> list[str]:
        """Return the names of all stored indexes (sorted)."""

    @abstractmethod
    def delete_index(self, name: str) -> None:
        """Remove the index stored under ``name`` (no-op when absent)."""

    @abstractmethod
    def close(self) -> None:
        """Release any resources held by the backend."""

    def __enter__(self) -> "StorageBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
