"""Persistence backends and plain-file (de)serialisation."""

from .backend import StorageBackend
from .memory import InMemoryBackend
from .paged import (
    FetchAccounting,
    FetchCostModel,
    PagedPostingStore,
)
from .sharded import (
    list_sharded_indexes,
    load_sharded_index,
    save_sharded_index,
    shard_index_name,
)
from .serialization import (
    corpus_from_json,
    corpus_to_json,
    load_corpus_from_csv_directory,
    load_corpus_json,
    save_corpus_json,
    table_from_csv,
    table_to_csv,
)
from .sqlite import SQLiteBackend

__all__ = [
    "FetchAccounting",
    "FetchCostModel",
    "InMemoryBackend",
    "PagedPostingStore",
    "SQLiteBackend",
    "StorageBackend",
    "corpus_from_json",
    "corpus_to_json",
    "list_sharded_indexes",
    "load_corpus_from_csv_directory",
    "load_corpus_json",
    "load_sharded_index",
    "save_corpus_json",
    "save_sharded_index",
    "shard_index_name",
    "table_from_csv",
    "table_to_csv",
]
