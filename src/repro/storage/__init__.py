"""Persistence backends and plain-file (de)serialisation."""

from .backend import StorageBackend
from .memory import InMemoryBackend
from .paged import (
    SEGMENT_FORMAT_VERSION,
    SEGMENT_MAGIC,
    SEGMENT_SUFFIX,
    FetchAccounting,
    FetchCostModel,
    MappedSegmentIndex,
    MappedSuperKeys,
    PagedPostingStore,
    load_segment,
    reopen_segment,
    write_segment,
)
from .sharded import (
    list_sharded_indexes,
    load_sharded_index,
    save_sharded_index,
    shard_index_name,
)
from .serialization import (
    INDEX_FORMAT_VERSION,
    SUPPORTED_INDEX_FORMAT_VERSIONS,
    corpus_from_json,
    corpus_to_json,
    index_from_payload,
    index_to_payload,
    load_corpus_from_csv_directory,
    load_corpus_json,
    load_index_json,
    save_corpus_json,
    save_index_json,
    table_from_csv,
    table_to_csv,
)
from .sqlite import SQLiteBackend

__all__ = [
    "FetchAccounting",
    "FetchCostModel",
    "INDEX_FORMAT_VERSION",
    "InMemoryBackend",
    "MappedSegmentIndex",
    "MappedSuperKeys",
    "PagedPostingStore",
    "SEGMENT_FORMAT_VERSION",
    "SEGMENT_MAGIC",
    "SEGMENT_SUFFIX",
    "SQLiteBackend",
    "StorageBackend",
    "SUPPORTED_INDEX_FORMAT_VERSIONS",
    "load_segment",
    "reopen_segment",
    "write_segment",
    "corpus_from_json",
    "corpus_to_json",
    "index_from_payload",
    "index_to_payload",
    "list_sharded_indexes",
    "load_corpus_from_csv_directory",
    "load_corpus_json",
    "load_index_json",
    "load_sharded_index",
    "save_corpus_json",
    "save_index_json",
    "save_sharded_index",
    "shard_index_name",
    "table_from_csv",
    "table_to_csv",
]
