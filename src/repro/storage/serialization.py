"""Plain-file (JSON / CSV) import and export of table corpora and indexes.

Real deployments would ingest web-table dumps; for the reproduction we mostly
move synthetic corpora around, but the functions below give users a simple
way to bring their own tables into the system (one CSV per table, or one JSON
file per corpus) and to inspect generated corpora.

Inverted indexes serialise through a **versioned payload**:

* **format version 1** — the row-wise layout of the original reproduction:
  one ``[table_id, column_index, row_index]`` triple per PL item;
* **format version 2** — the columnar packed layout: one struct-of-arrays
  record per value (three parallel integer columns), mirroring
  :class:`~repro.index.columnar.ColumnarPostingList`.

``index_to_payload`` emits the version matching the index's layout and
``index_from_payload`` accepts either version (restoring the matching
layout), so old persisted payloads keep loading after the columnar switch.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from ..datamodel import Row, Table, TableCorpus
from ..exceptions import StorageError
from ..index import LAYOUTS, ColumnarPostingList, InvertedIndex

#: Payload version written for columnar-layout indexes.
INDEX_FORMAT_VERSION: int = 2

#: Payload versions ``index_from_payload`` understands.
SUPPORTED_INDEX_FORMAT_VERSIONS: tuple[int, ...] = (1, 2)


def corpus_to_json(corpus: TableCorpus) -> dict:
    """Return a JSON-serialisable representation of ``corpus``."""
    return {
        "name": corpus.name,
        "tables": [
            {
                "table_id": table.table_id,
                "name": table.name,
                "columns": table.columns,
                "rows": [list(row) for row in table.rows],
            }
            for table in corpus
        ],
    }


def corpus_from_json(payload: dict) -> TableCorpus:
    """Rebuild a corpus from :func:`corpus_to_json` output."""
    try:
        corpus = TableCorpus(name=payload["name"])
        for entry in payload["tables"]:
            corpus.add_table(
                Table(
                    table_id=entry["table_id"],
                    name=entry["name"],
                    columns=list(entry["columns"]),
                    rows=[Row(row) for row in entry["rows"]],
                )
            )
    except (KeyError, TypeError) as exc:
        raise StorageError(f"malformed corpus payload: {exc}") from exc
    return corpus


def save_corpus_json(corpus: TableCorpus, path: str | Path) -> Path:
    """Write ``corpus`` to a JSON file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(corpus_to_json(corpus), handle)
    return path


def load_corpus_json(path: str | Path) -> TableCorpus:
    """Read a corpus from a JSON file written by :func:`save_corpus_json`."""
    path = Path(path)
    if not path.exists():
        raise StorageError(f"corpus file does not exist: {path}")
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return corpus_from_json(payload)


def index_to_payload(index: InvertedIndex) -> dict:
    """Return a JSON-serialisable, versioned representation of ``index``.

    Columnar-layout indexes emit format version 2 (struct-of-arrays posting
    columns); legacy-layout indexes emit format version 1 (per-item triples).
    Super keys are stored as hex strings because they can exceed 64 bits.
    """
    super_keys = [
        [table_id, row_index, format(super_key, "x")]
        for table_id, row_index, super_key in index.iter_super_keys()
    ]
    if index.layout == "columnar":
        postings: dict[str, object] = {}
        for value in index.values():
            columns = index.posting_columns(value)
            if columns is None:
                continue
            postings[value] = {
                "table_ids": list(columns.table_ids),
                "column_indexes": list(columns.column_indexes),
                "row_indexes": list(columns.row_indexes),
            }
        return {
            "format_version": INDEX_FORMAT_VERSION,
            "layout": index.layout,
            "hash_function": index.hash_function_name,
            "hash_size": index.hash_size,
            "postings": postings,
            "super_keys": super_keys,
        }
    return {
        "format_version": 1,
        "layout": index.layout,
        "hash_function": index.hash_function_name,
        "hash_size": index.hash_size,
        "postings": {
            value: [
                [item.table_id, item.column_index, item.row_index]
                for item in index.posting_list(value)
            ]
            for value in index.values()
        },
        "super_keys": super_keys,
    }


def index_from_payload(payload: dict) -> InvertedIndex:
    """Rebuild an inverted index from :func:`index_to_payload` output.

    Accepts every version in :data:`SUPPORTED_INDEX_FORMAT_VERSIONS`;
    version 1 payloads restore the legacy layout, version 2 the columnar one
    (an explicit ``layout`` key overrides either default).
    """
    try:
        version = int(payload.get("format_version", 1))
        if version not in SUPPORTED_INDEX_FORMAT_VERSIONS:
            raise StorageError(
                f"unsupported index payload format version {version} "
                f"(supported: {SUPPORTED_INDEX_FORMAT_VERSIONS})"
            )
        layout = payload.get("layout") or (
            "columnar" if version >= 2 else "legacy"
        )
        if layout not in LAYOUTS:
            raise StorageError(
                f"unknown index payload layout {layout!r} "
                f"(expected one of {LAYOUTS})"
            )
        index = InvertedIndex(
            hash_function_name=payload["hash_function"],
            hash_size=int(payload["hash_size"]),
            layout=layout,
        )
        if version >= 2:
            for value, columns in payload["postings"].items():
                packed = ColumnarPostingList.from_columns(
                    columns["table_ids"],
                    columns["column_indexes"],
                    columns["row_indexes"],
                )
                if layout == "columnar":
                    index.set_posting_columns(value, packed)
                else:
                    for item in packed.items():
                        index.add_posting(
                            value, item.table_id, item.column_index,
                            item.row_index,
                        )
        else:
            for value, items in payload["postings"].items():
                for table_id, column_index, row_index in items:
                    index.add_posting(value, table_id, column_index, row_index)
        for table_id, row_index, super_key_hex in payload["super_keys"]:
            index.set_super_key(table_id, row_index, int(super_key_hex, 16))
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageError(f"malformed index payload: {exc}") from exc
    return index


def save_index_json(index: InvertedIndex, path: str | Path) -> Path:
    """Write ``index`` to a JSON file (versioned payload) and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(index_to_payload(index), handle)
    return path


def load_index_json(path: str | Path) -> InvertedIndex:
    """Read an index from a JSON file written by :func:`save_index_json`."""
    path = Path(path)
    if not path.exists():
        raise StorageError(f"index file does not exist: {path}")
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return index_from_payload(payload)


def table_to_csv(table: Table, path: str | Path) -> Path:
    """Write a single table to a CSV file (header row + data rows)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.columns)
        for row in table.rows:
            writer.writerow(list(row))
    return path


def table_from_csv(table_id: int, path: str | Path, name: str | None = None) -> Table:
    """Load a single table from a CSV file (first row = column names)."""
    path = Path(path)
    if not path.exists():
        raise StorageError(f"CSV file does not exist: {path}")
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        rows = list(reader)
    if not rows:
        raise StorageError(f"CSV file {path} is empty")
    columns = rows[0]
    data = [Row(row) for row in rows[1:]]
    return Table(
        table_id=table_id, name=name or path.stem, columns=columns, rows=data
    )


def load_corpus_from_csv_directory(directory: str | Path, name: str = "csv-corpus") -> TableCorpus:
    """Build a corpus from every ``*.csv`` file in a directory."""
    directory = Path(directory)
    if not directory.is_dir():
        raise StorageError(f"not a directory: {directory}")
    corpus = TableCorpus(name=name)
    for table_id, csv_path in enumerate(sorted(directory.glob("*.csv"))):
        corpus.add_table(table_from_csv(table_id, csv_path))
    return corpus
