"""Plain-file (JSON / CSV) import and export of table corpora.

Real deployments would ingest web-table dumps; for the reproduction we mostly
move synthetic corpora around, but the functions below give users a simple
way to bring their own tables into the system (one CSV per table, or one JSON
file per corpus) and to inspect generated corpora.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from ..datamodel import Row, Table, TableCorpus
from ..exceptions import StorageError


def corpus_to_json(corpus: TableCorpus) -> dict:
    """Return a JSON-serialisable representation of ``corpus``."""
    return {
        "name": corpus.name,
        "tables": [
            {
                "table_id": table.table_id,
                "name": table.name,
                "columns": table.columns,
                "rows": [list(row) for row in table.rows],
            }
            for table in corpus
        ],
    }


def corpus_from_json(payload: dict) -> TableCorpus:
    """Rebuild a corpus from :func:`corpus_to_json` output."""
    try:
        corpus = TableCorpus(name=payload["name"])
        for entry in payload["tables"]:
            corpus.add_table(
                Table(
                    table_id=entry["table_id"],
                    name=entry["name"],
                    columns=list(entry["columns"]),
                    rows=[Row(row) for row in entry["rows"]],
                )
            )
    except (KeyError, TypeError) as exc:
        raise StorageError(f"malformed corpus payload: {exc}") from exc
    return corpus


def save_corpus_json(corpus: TableCorpus, path: str | Path) -> Path:
    """Write ``corpus`` to a JSON file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(corpus_to_json(corpus), handle)
    return path


def load_corpus_json(path: str | Path) -> TableCorpus:
    """Read a corpus from a JSON file written by :func:`save_corpus_json`."""
    path = Path(path)
    if not path.exists():
        raise StorageError(f"corpus file does not exist: {path}")
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return corpus_from_json(payload)


def table_to_csv(table: Table, path: str | Path) -> Path:
    """Write a single table to a CSV file (header row + data rows)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.columns)
        for row in table.rows:
            writer.writerow(list(row))
    return path


def table_from_csv(table_id: int, path: str | Path, name: str | None = None) -> Table:
    """Load a single table from a CSV file (first row = column names)."""
    path = Path(path)
    if not path.exists():
        raise StorageError(f"CSV file does not exist: {path}")
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        rows = list(reader)
    if not rows:
        raise StorageError(f"CSV file {path} is empty")
    columns = rows[0]
    data = [Row(row) for row in rows[1:]]
    return Table(
        table_id=table_id, name=name or path.stem, columns=columns, rows=data
    )


def load_corpus_from_csv_directory(directory: str | Path, name: str = "csv-corpus") -> TableCorpus:
    """Build a corpus from every ``*.csv`` file in a directory."""
    directory = Path(directory)
    if not directory.is_dir():
        raise StorageError(f"not a directory: {directory}")
    corpus = TableCorpus(name=name)
    for table_id, csv_path in enumerate(sorted(directory.glob("*.csv"))):
        corpus.add_table(table_from_csv(table_id, csv_path))
    return corpus
