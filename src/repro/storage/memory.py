"""In-memory storage backend (no persistence)."""

from __future__ import annotations

import copy

from ..datamodel import TableCorpus
from ..exceptions import StorageError
from ..index import InvertedIndex
from .backend import StorageBackend


class InMemoryBackend(StorageBackend):
    """Keeps deep copies of corpora and indexes in process memory.

    Mainly useful for tests and for decoupling callers from mutation: stored
    objects are copied on save and on load, so later edits to either side do
    not leak through.
    """

    def __init__(self) -> None:
        self._corpora: dict[str, TableCorpus] = {}
        self._indexes: dict[str, InvertedIndex] = {}

    def save_corpus(self, corpus: TableCorpus) -> None:
        self._corpora[corpus.name] = copy.deepcopy(corpus)

    def load_corpus(self, name: str) -> TableCorpus:
        try:
            return copy.deepcopy(self._corpora[name])
        except KeyError as exc:
            raise StorageError(f"no corpus stored under name {name!r}") from exc

    def list_corpora(self) -> list[str]:
        return sorted(self._corpora)

    def save_index(self, name: str, index: InvertedIndex) -> None:
        self._indexes[name] = copy.deepcopy(index)

    def load_index(self, name: str) -> InvertedIndex:
        try:
            return copy.deepcopy(self._indexes[name])
        except KeyError as exc:
            raise StorageError(f"no index stored under name {name!r}") from exc

    def list_indexes(self) -> list[str]:
        return sorted(self._indexes)

    def delete_index(self, name: str) -> None:
        self._indexes.pop(name, None)

    def close(self) -> None:
        self._corpora.clear()
        self._indexes.clear()
