"""SQLite storage backend.

Stands in for the Vertica column store the paper uses (Section 7.1).  The
logical schema mirrors the extended inverted index:

* ``corpora(name)`` and ``tables(corpus, table_id, name, columns)`` hold the
  corpus metadata,
* ``cells(corpus, table_id, row_index, column_index, value)`` holds the table
  contents,
* ``postings(index_name, value, table_id, column_index, row_index)`` holds
  the PL items of *legacy*-layout indexes (format version 1),
* ``posting_columns(index_name, value, item_count, table_ids,
  column_indexes, row_indexes)`` holds the packed struct-of-arrays posting
  columns of *columnar*-layout indexes as little-endian BLOBs (format
  version 2) — one row per value instead of one row per PL item,
* ``super_keys(index_name, table_id, row_index, super_key)`` holds the
  per-row super keys (stored as hex text because they can exceed 64 bits),
* ``indexes(name, hash_function, hash_size, layout, format_version)`` holds
  index metadata,
* ``pushdown_postings(index_name, value, pos, table_id, column_index,
  row_index, super_key, super_key_int)`` and ``pushdown_meta`` hold the
  denormalised accelerator schema the SQL-pushdown engine
  (:mod:`repro.engine_sql`) compiles discovery queries against — one row per
  posting-list item with the row super key packed alongside it as a
  fixed-width big-endian BLOB (plus a plain integer column when the hash
  fits in 63 bits, so the reject can run as pure-SQL bitwise arithmetic).

Databases written before the columnar layout existed lack the ``layout`` /
``format_version`` columns; they are added on open with a ``legacy`` / ``1``
default, so old files keep loading unchanged.  The accelerator tables are
created ``IF NOT EXISTS`` on open, so pre-pushdown databases migrate by
simply being opened (the accelerator itself is rebuilt on demand).

Read connections run under ``journal_mode=WAL`` (file-backed databases),
``synchronous=NORMAL``, and a generous ``mmap_size`` so concurrent readers —
the serve pool, the pushdown engine — do not serialize on the default
rollback journal.
"""

from __future__ import annotations

import json
import sqlite3
import sys
from array import array
from pathlib import Path

from ..datamodel import Row, Table, TableCorpus
from ..exceptions import StorageError
from ..index import ColumnarPostingList, InvertedIndex
from .backend import StorageBackend


def _array_to_blob(values: array) -> bytes:
    """Serialise a packed integer column as little-endian bytes.

    ``array.tobytes`` is native-order; normalising to little-endian keeps the
    format-version-2 BLOBs portable across hosts of different endianness.
    """
    if sys.byteorder == "big":  # pragma: no cover - big-endian hosts only
        values = array(values.typecode, values)
        values.byteswap()
    return values.tobytes()


def _blob_to_array(typecode: str, blob: bytes) -> array:
    """Deserialise a little-endian BLOB back into a packed integer column."""
    values = array(typecode)
    values.frombytes(blob)
    if sys.byteorder == "big":  # pragma: no cover - big-endian hosts only
        values.byteswap()
    return values

_SCHEMA = """
CREATE TABLE IF NOT EXISTS corpora (
    name TEXT PRIMARY KEY
);
CREATE TABLE IF NOT EXISTS tables (
    corpus TEXT NOT NULL,
    table_id INTEGER NOT NULL,
    name TEXT NOT NULL,
    columns TEXT NOT NULL,
    PRIMARY KEY (corpus, table_id)
);
CREATE TABLE IF NOT EXISTS cells (
    corpus TEXT NOT NULL,
    table_id INTEGER NOT NULL,
    row_index INTEGER NOT NULL,
    column_index INTEGER NOT NULL,
    value TEXT NOT NULL,
    PRIMARY KEY (corpus, table_id, row_index, column_index)
);
CREATE TABLE IF NOT EXISTS indexes (
    name TEXT PRIMARY KEY,
    hash_function TEXT NOT NULL,
    hash_size INTEGER NOT NULL,
    layout TEXT NOT NULL DEFAULT 'legacy',
    format_version INTEGER NOT NULL DEFAULT 1
);
CREATE TABLE IF NOT EXISTS postings (
    index_name TEXT NOT NULL,
    value TEXT NOT NULL,
    table_id INTEGER NOT NULL,
    column_index INTEGER NOT NULL,
    row_index INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS postings_by_value ON postings (index_name, value);
CREATE TABLE IF NOT EXISTS posting_columns (
    index_name TEXT NOT NULL,
    value TEXT NOT NULL,
    item_count INTEGER NOT NULL,
    table_ids BLOB NOT NULL,
    column_indexes BLOB NOT NULL,
    row_indexes BLOB NOT NULL,
    PRIMARY KEY (index_name, value)
);
CREATE TABLE IF NOT EXISTS super_keys (
    index_name TEXT NOT NULL,
    table_id INTEGER NOT NULL,
    row_index INTEGER NOT NULL,
    super_key TEXT NOT NULL,
    PRIMARY KEY (index_name, table_id, row_index)
);
CREATE INDEX IF NOT EXISTS postings_value_covering
    ON postings (index_name, value, table_id, column_index, row_index);
CREATE TABLE IF NOT EXISTS pushdown_postings (
    index_name TEXT NOT NULL,
    value TEXT NOT NULL,
    pos INTEGER NOT NULL,
    table_id INTEGER NOT NULL,
    column_index INTEGER NOT NULL,
    row_index INTEGER NOT NULL,
    super_key BLOB NOT NULL,
    super_key_hi INTEGER,
    super_key_lo INTEGER
);
CREATE INDEX IF NOT EXISTS pushdown_by_value
    ON pushdown_postings (index_name, value, pos);
CREATE INDEX IF NOT EXISTS pushdown_by_table
    ON pushdown_postings (index_name, table_id, value);
CREATE TABLE IF NOT EXISTS pushdown_meta (
    index_name TEXT PRIMARY KEY,
    hash_function TEXT NOT NULL,
    hash_size INTEGER NOT NULL,
    key_width INTEGER NOT NULL,
    item_count INTEGER NOT NULL,
    format_version INTEGER NOT NULL
);
"""

#: mmap window for read connections; SQLite clamps it to the file size.
_MMAP_SIZE_BYTES = 256 * 1024 * 1024


def _apply_read_pragmas(connection: sqlite3.Connection, path: str) -> None:
    """Tune a connection for concurrent read-heavy workloads.

    WAL only applies to file-backed databases (an in-memory database has no
    journal to switch); ``synchronous=NORMAL`` is the documented safe level
    under WAL and ``mmap_size`` lets large posting scans page straight from
    the OS cache.
    """
    connection.execute(f"PRAGMA mmap_size = {_MMAP_SIZE_BYTES}")
    connection.execute("PRAGMA synchronous = NORMAL")
    if path != ":memory:":
        connection.execute("PRAGMA journal_mode = WAL")


class SQLiteBackend(StorageBackend):
    """Relational persistence for corpora and inverted indexes."""

    def __init__(self, path: str | Path = ":memory:"):
        self.path = str(path)
        try:
            # check_same_thread=False: sessions run discovery on worker
            # threads (``discover_stream``); access is serialized by the
            # engines that borrow the connection.
            self._connection = sqlite3.connect(
                self.path, check_same_thread=False
            )
        except sqlite3.Error as exc:  # pragma: no cover - environment dependent
            raise StorageError(f"cannot open SQLite database at {self.path}") from exc
        _apply_read_pragmas(self._connection, self.path)
        self._connection.executescript(_SCHEMA)
        self._migrate_index_metadata()
        self._connection.commit()

    def read_connection(self) -> sqlite3.Connection:
        """Return a connection suitable for concurrent reads.

        File-backed databases get a fresh pragma-tuned connection so WAL
        readers genuinely run in parallel; an in-memory database has exactly
        one store, so the shared primary connection is returned instead.
        """
        if self.path == ":memory:":
            return self._connection
        connection = sqlite3.connect(self.path, check_same_thread=False)
        _apply_read_pragmas(connection, self.path)
        return connection

    def _migrate_index_metadata(self) -> None:
        """Add the layout/format_version columns to pre-columnar databases."""
        columns = {
            row[1]
            for row in self._connection.execute("PRAGMA table_info(indexes)")
        }
        if "layout" not in columns:
            self._connection.execute(
                "ALTER TABLE indexes "
                "ADD COLUMN layout TEXT NOT NULL DEFAULT 'legacy'"
            )
        if "format_version" not in columns:
            self._connection.execute(
                "ALTER TABLE indexes "
                "ADD COLUMN format_version INTEGER NOT NULL DEFAULT 1"
            )

    # ------------------------------------------------------------------
    # Corpora
    # ------------------------------------------------------------------
    def save_corpus(self, corpus: TableCorpus) -> None:
        connection = self._connection
        with connection:
            connection.execute("DELETE FROM corpora WHERE name = ?", (corpus.name,))
            connection.execute("DELETE FROM tables WHERE corpus = ?", (corpus.name,))
            connection.execute("DELETE FROM cells WHERE corpus = ?", (corpus.name,))
            connection.execute("INSERT INTO corpora (name) VALUES (?)", (corpus.name,))
            for table in corpus:
                connection.execute(
                    "INSERT INTO tables (corpus, table_id, name, columns) "
                    "VALUES (?, ?, ?, ?)",
                    (corpus.name, table.table_id, table.name, json.dumps(table.columns)),
                )
                connection.executemany(
                    "INSERT INTO cells "
                    "(corpus, table_id, row_index, column_index, value) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (
                        (corpus.name, table.table_id, row_index, column_index, value)
                        for row_index, row in enumerate(table.rows)
                        for column_index, value in enumerate(row)
                    ),
                )

    def load_corpus(self, name: str) -> TableCorpus:
        connection = self._connection
        exists = connection.execute(
            "SELECT 1 FROM corpora WHERE name = ?", (name,)
        ).fetchone()
        if exists is None:
            raise StorageError(f"no corpus stored under name {name!r}")
        corpus = TableCorpus(name=name)
        table_rows = connection.execute(
            "SELECT table_id, name, columns FROM tables WHERE corpus = ? "
            "ORDER BY table_id",
            (name,),
        ).fetchall()
        for table_id, table_name, columns_json in table_rows:
            columns = json.loads(columns_json)
            cells = connection.execute(
                "SELECT row_index, column_index, value FROM cells "
                "WHERE corpus = ? AND table_id = ? ORDER BY row_index, column_index",
                (name, table_id),
            ).fetchall()
            num_rows = max((row_index for row_index, _, _ in cells), default=-1) + 1
            grid = [[""] * len(columns) for _ in range(num_rows)]
            for row_index, column_index, value in cells:
                grid[row_index][column_index] = value
            corpus.add_table(
                Table(
                    table_id=table_id,
                    name=table_name,
                    columns=columns,
                    rows=[Row(row) for row in grid],
                )
            )
        return corpus

    def list_corpora(self) -> list[str]:
        rows = self._connection.execute(
            "SELECT name FROM corpora ORDER BY name"
        ).fetchall()
        return [name for (name,) in rows]

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------
    def save_index(self, name: str, index: InvertedIndex) -> None:
        connection = self._connection
        layout = getattr(index, "layout", "legacy")
        format_version = 2 if layout == "columnar" else 1
        with connection:
            connection.execute("DELETE FROM indexes WHERE name = ?", (name,))
            connection.execute("DELETE FROM postings WHERE index_name = ?", (name,))
            connection.execute(
                "DELETE FROM posting_columns WHERE index_name = ?", (name,)
            )
            connection.execute("DELETE FROM super_keys WHERE index_name = ?", (name,))
            # A re-saved index invalidates any accelerator derived from the
            # previous contents; the pushdown engine rebuilds on demand.
            connection.execute(
                "DELETE FROM pushdown_postings WHERE index_name = ?", (name,)
            )
            connection.execute(
                "DELETE FROM pushdown_meta WHERE index_name = ?", (name,)
            )
            connection.execute(
                "INSERT INTO indexes "
                "(name, hash_function, hash_size, layout, format_version) "
                "VALUES (?, ?, ?, ?, ?)",
                (name, index.hash_function_name, index.hash_size, layout,
                 format_version),
            )
            if layout == "columnar":
                connection.executemany(
                    "INSERT INTO posting_columns "
                    "(index_name, value, item_count, table_ids, column_indexes, "
                    "row_indexes) VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        (
                            name,
                            value,
                            len(columns),
                            _array_to_blob(columns.table_ids),
                            _array_to_blob(columns.column_indexes),
                            _array_to_blob(columns.row_indexes),
                        )
                        for value, columns in (
                            (value, index.posting_columns(value))
                            for value in index.values()
                        )
                        if columns is not None
                    ),
                )
            else:
                connection.executemany(
                    "INSERT INTO postings "
                    "(index_name, value, table_id, column_index, row_index) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (
                        (name, value, item.table_id, item.column_index,
                         item.row_index)
                        for value in index.values()
                        for item in index.posting_list(value)
                    ),
                )
            connection.executemany(
                "INSERT INTO super_keys (index_name, table_id, row_index, super_key) "
                "VALUES (?, ?, ?, ?)",
                (
                    (name, table_id, row_index, format(super_key, "x"))
                    for table_id, row_index, super_key in index.iter_super_keys()
                ),
            )

    def load_index(self, name: str) -> InvertedIndex:
        connection = self._connection
        meta = connection.execute(
            "SELECT hash_function, hash_size, layout FROM indexes WHERE name = ?",
            (name,),
        ).fetchone()
        if meta is None:
            raise StorageError(f"no index stored under name {name!r}")
        hash_function, hash_size, layout = meta
        index = InvertedIndex(
            hash_function_name=hash_function, hash_size=hash_size, layout=layout
        )
        if layout == "columnar":
            packed_rows = connection.execute(
                "SELECT value, table_ids, column_indexes, row_indexes "
                "FROM posting_columns WHERE index_name = ?",
                (name,),
            ).fetchall()
            for value, table_ids, column_indexes, row_indexes in packed_rows:
                columns = ColumnarPostingList()
                columns.table_ids = _blob_to_array("q", table_ids)
                columns.column_indexes = _blob_to_array("i", column_indexes)
                columns.row_indexes = _blob_to_array("q", row_indexes)
                index.set_posting_columns(value, columns)
        else:
            postings = connection.execute(
                "SELECT value, table_id, column_index, row_index FROM postings "
                "WHERE index_name = ?",
                (name,),
            ).fetchall()
            for value, table_id, column_index, row_index in postings:
                index.add_posting(value, table_id, column_index, row_index)
        super_keys = connection.execute(
            "SELECT table_id, row_index, super_key FROM super_keys "
            "WHERE index_name = ?",
            (name,),
        ).fetchall()
        for table_id, row_index, super_key_hex in super_keys:
            index.set_super_key(table_id, row_index, int(super_key_hex, 16))
        return index

    def list_indexes(self) -> list[str]:
        rows = self._connection.execute(
            "SELECT name FROM indexes ORDER BY name"
        ).fetchall()
        return [name for (name,) in rows]

    def delete_index(self, name: str) -> None:
        connection = self._connection
        with connection:
            connection.execute("DELETE FROM indexes WHERE name = ?", (name,))
            connection.execute("DELETE FROM postings WHERE index_name = ?", (name,))
            connection.execute(
                "DELETE FROM posting_columns WHERE index_name = ?", (name,)
            )
            connection.execute("DELETE FROM super_keys WHERE index_name = ?", (name,))
            connection.execute(
                "DELETE FROM pushdown_postings WHERE index_name = ?", (name,)
            )
            connection.execute(
                "DELETE FROM pushdown_meta WHERE index_name = ?", (name,)
            )

    # ------------------------------------------------------------------
    # Pushdown accelerator
    # ------------------------------------------------------------------
    def build_pushdown(self, name: str, index: InvertedIndex) -> int:
        """(Re)build the pushdown accelerator for ``index`` under ``name``.

        Returns the number of posting items materialised.  The heavy lifting
        lives in :mod:`repro.engine_sql.accelerator`; this wrapper exists so
        callers holding only a backend need not import the engine package.
        """
        from ..engine_sql.accelerator import build_accelerator

        return build_accelerator(self._connection, name, index)

    def ensure_pushdown(self, name: str, index: InvertedIndex) -> int:
        """Build the accelerator for ``index`` unless a valid one exists.

        Validates provenance (hash function/size, key width, format version)
        and row count before trusting an existing accelerator, so a stale or
        tampered one is rebuilt rather than silently queried.
        """
        from ..engine_sql.accelerator import ensure_accelerator

        return ensure_accelerator(self._connection, name, index)

    def pushdown_meta(self, name: str) -> dict | None:
        """Return the accelerator metadata row for ``name``, if built."""
        from ..engine_sql.accelerator import accelerator_meta

        return accelerator_meta(self._connection, name)

    def close(self) -> None:
        self._connection.close()
